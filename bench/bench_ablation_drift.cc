// Ablation A2: DREAM's advantage over the full-history baseline is
// contingent on environment non-stationarity. Sweeping the drift intensity
// from zero shows the crossover: in a stationary cloud more history is
// strictly better; under drift fresh windows win — the paper's premise.

#include <iostream>

#include "common/text_table.h"
#include "midas/experiments.h"

int main() {
  using namespace midas;  // NOLINT: bench brevity

  std::cout << "Ablation A2 — drift-intensity sweep (Q12, 100 MiB)\n";
  std::cout << "(time MRE; drift scales the seasonal amplitude and the "
               "AR(1) innovation together)\n";
  TextTable table({"drift scale", "amplitude", "BML_N", "BML (all)", "DREAM",
                   "winner"});
  for (double scale : {0.0, 0.25, 0.5, 1.0, 1.5}) {
    MreExperimentOptions options;
    options.scale_factor = 0.1;
    options.query_ids = {12};
    options.warmup_runs = 30;
    options.eval_runs = 60;
    options.estimators = {
        EstimatorConfig::Bml(WindowPolicy::kLastN),
        EstimatorConfig::Bml(WindowPolicy::kAll),
        EstimatorConfig::DreamDefault(),
    };
    VarianceOptions variance;  // library defaults
    variance.drift_amplitude *= scale;
    variance.ar_sigma *= scale;
    options.variance = variance;
    auto report = RunMreExperiment(options);
    report.status().CheckOK();
    const double bml_n = report->time_mre[0][0];
    const double bml_all = report->time_mre[0][1];
    const double dream = report->time_mre[0][2];
    std::string winner = "DREAM";
    if (bml_n < dream && bml_n <= bml_all) winner = "BML_N";
    if (bml_all < dream && bml_all < bml_n) winner = "BML";
    table.AddRow({FormatDouble(scale, 2),
                  FormatDouble(variance.drift_amplitude, 2),
                  FormatDouble(bml_n, 3), FormatDouble(bml_all, 3),
                  FormatDouble(dream, 3), winner});
  }
  table.Print(std::cout);
  std::cout << "\nReading: with no drift the full history wins (more data, "
               "stationary world) and DREAM matches the fresh-window "
               "baselines; as drift grows, the full-history model degrades "
               "sharply while DREAM stays accurate — the crossover that "
               "motivates dynamic estimation in cloud federations.\n";
  return 0;
}
