// Ablation A1: how the R²_require threshold (and the M_max cap) of
// Algorithm 1 steers DREAM's window size and accuracy on the Table 3
// workload (Q12 at 100 MiB).

#include <iostream>

#include "common/text_table.h"
#include "midas/experiments.h"

int main() {
  using namespace midas;  // NOLINT: bench brevity

  std::cout << "Ablation A1 — R2_require sweep (Q12, 100 MiB, Mmax = 3N)\n";
  TextTable table({"R2_require", "mean window", "time MRE", "money MRE"});
  for (double r2 : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    MreExperimentOptions options;
    options.scale_factor = 0.1;
    options.query_ids = {12};
    options.warmup_runs = 30;
    options.eval_runs = 60;
    options.dream_m_max_windows = 3;
    EstimatorConfig dream = EstimatorConfig::DreamDefault();
    dream.dream.r2_require = r2;
    options.estimators = {dream};
    auto report = RunMreExperiment(options);
    report.status().CheckOK();
    table.AddRow({FormatDouble(r2, 2),
                  FormatDouble(report->mean_dream_window[0], 1),
                  FormatDouble(report->time_mre[0][0], 3),
                  FormatDouble(report->money_mre[0][0], 3)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: low thresholds stop at the minimum window; "
               "raising R2_require grows the window toward the Mmax cap. "
               "Accuracy is flat-to-worse at the extremes — the paper's "
               "0.8 sits in the sweet band.\n\n";

  std::cout << "Mmax sweep at R2_require = 0.8 (Q12, 100 MiB)\n";
  TextTable cap_table({"Mmax (x N)", "mean window", "time MRE"});
  for (size_t cap : {1u, 2u, 3u, 5u, 8u}) {
    MreExperimentOptions options;
    options.scale_factor = 0.1;
    options.query_ids = {12};
    options.warmup_runs = 30;
    options.eval_runs = 60;
    options.dream_m_max_windows = cap;
    options.estimators = {EstimatorConfig::DreamDefault()};
    auto report = RunMreExperiment(options);
    report.status().CheckOK();
    cap_table.AddRow({std::to_string(cap),
                      FormatDouble(report->mean_dream_window[0], 1),
                      FormatDouble(report->time_mre[0][0], 3)});
  }
  cap_table.Print(std::cout);
  std::cout << "\nReading: an uncapped window drifts into expired history "
               "whenever R2 stays under the threshold; a cap of 2-3 base "
               "windows matches the paper's observation that DREAM's "
               "windows stay \"around N\".\n";
  return 0;
}
