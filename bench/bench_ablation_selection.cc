// Ablation A3: how the IReS Modelling module's model-selection rule shapes
// the BML baseline. IReS scores candidate learners on the data they were
// trained on ("the best model with the smallest error is selected"), which
// favours memorising learners on small windows; cross-validation is the
// sounder alternative. DREAM is unaffected — it always fits one MLR.

#include <iostream>

#include "common/text_table.h"
#include "ires/features.h"
#include "ires/scheduler.h"
#include "ml/model_selection.h"
#include "query/enumerator.h"
#include "tpch/workload.h"

namespace midas {
namespace {

struct Setup {
  Federation federation;
  tpch::Workload workload;

  explicit Setup(uint64_t seed)
      : workload([seed] {
          tpch::WorkloadOptions options;
          options.scale_factor = 0.1;
          options.seed = seed;
          options.query_ids = {12};
          return options;
        }()) {
    const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
    SiteConfig a;
    a.name = "cloud-A";
    a.provider = ProviderKind::kAmazon;
    a.engines = {EngineKind::kHive};
    a.node_type = catalog.Find("a1.xlarge").ValueOrDie();
    a.max_nodes = 8;
    federation.AddSite(a).ValueOrDie();
    SiteConfig b;
    b.name = "cloud-B";
    b.provider = ProviderKind::kMicrosoft;
    b.engines = {EngineKind::kPostgres};
    b.node_type = catalog.Find("B2S").ValueOrDie();
    b.max_nodes = 8;
    federation.AddSite(b).ValueOrDie();
    federation.PlaceTable("orders", 1, EngineKind::kPostgres).CheckOK();
    federation.PlaceTable("lineitem", 0, EngineKind::kHive).CheckOK();
  }
};

// Rolling experiment: BML_N predictions with a selector in the given mode.
double BmlMre(SelectionMode mode, uint64_t seed) {
  Setup setup(seed);
  SimulatorOptions sim_opts;
  sim_opts.seed = seed + 5;
  ExecutionSimulator simulator(&setup.federation, &setup.workload.catalog(),
                               sim_opts);
  Modelling modelling(FeatureNames(setup.federation), StandardMetricNames(),
                      seed + 9);
  Scheduler scheduler(&setup.federation, &simulator, &modelling);
  PlanEnumerator enumerator(&setup.federation, &setup.workload.catalog());
  Rng rng(seed + 13);

  // Build a local selector mirroring Modelling's BML path but with the
  // requested mode, so both modes see identical histories.
  ModelSelectorOptions selector_options;
  selector_options.mode = mode;
  ModelSelector selector(selector_options);
  selector.AddDefaultCandidates(seed + 17);

  for (int i = 0; i < 30; ++i) {
    auto item = setup.workload.NextForQuery(12).ValueOrDie();
    auto plans = enumerator.EnumeratePhysical(item.logical).ValueOrDie();
    scheduler.ExecuteAndRecord("q", plans[rng.Index(plans.size())])
        .status()
        .CheckOK();
  }

  double total_rel_err = 0.0;
  int scored = 0;
  for (int i = 0; i < 60; ++i) {
    auto item = setup.workload.NextForQuery(12).ValueOrDie();
    auto plans = enumerator.EnumeratePhysical(item.logical).ValueOrDie();
    const QueryPlan& plan = plans[rng.Index(plans.size())];
    const Vector x = ExtractFeatures(setup.federation, plan).ValueOrDie();

    const TrainingSet* history = modelling.history().Get("q").ValueOrDie();
    const size_t window =
        std::min(modelling.BaseWindow(), history->size());
    auto xs = history->RecentFeatures(window).ValueOrDie();
    auto ys = history->RecentCosts(window, 0).ValueOrDie();
    auto best = selector.SelectBest(xs, ys);

    auto measurement = scheduler.ExecuteAndRecord("q", plan).ValueOrDie();
    if (best.ok()) {
      auto pred = best->learner->Predict(x);
      if (pred.ok()) {
        total_rel_err +=
            std::abs(std::max(0.0, *pred) - measurement.seconds) /
            measurement.seconds;
        ++scored;
      }
    }
  }
  return scored > 0 ? total_rel_err / scored : -1.0;
}

}  // namespace
}  // namespace midas

int main() {
  using namespace midas;  // NOLINT: bench brevity

  std::cout << "Ablation A3 — BML_N model-selection rule "
               "(Q12, 100 MiB, window N)\n";
  TextTable table({"seed", "training-error selection (IReS)",
                   "3-fold cross-validation"});
  double sum_train = 0.0, sum_cv = 0.0;
  const std::vector<uint64_t> seeds = {2019, 4242, 7777};
  for (uint64_t seed : seeds) {
    const double train = BmlMre(SelectionMode::kTrainingError, seed);
    const double cv = BmlMre(SelectionMode::kCrossValidation, seed);
    sum_train += train;
    sum_cv += cv;
    table.AddRow({std::to_string(seed), FormatDouble(train, 3),
                  FormatDouble(cv, 3)});
  }
  table.AddRow({"mean",
                FormatDouble(sum_train / static_cast<double>(seeds.size()), 3),
                FormatDouble(sum_cv / static_cast<double>(seeds.size()), 3)});
  table.Print(std::cout);
  std::cout << "\nReading: scoring learners on their own training window "
               "(IReS behaviour) lets memorising models win selection and "
               "costs accuracy versus cross-validation — part of the gap "
               "the paper's BML columns show against DREAM's plain MLR.\n";
  return 0;
}
