// Machine-readable DREAM window-growth benchmark: times the batch
// (refit-from-scratch, the seed implementation) and incremental (rank-1
// normal-equation updates) engines over identical histories at several
// window caps, and emits BENCH_dream.json so the perf trajectory can be
// tracked across PRs. Run via scripts/bench_dream.sh.
//
// An unreachable R² requirement forces Algorithm 1 to grow the window all
// the way to the cap — the worst case for both engines and the regime
// Example 3.1's thousands-of-QEPs workload cares about.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "regression/dream.h"
#include "bench_env_common.h"

namespace midas {
namespace {

TrainingSet MakeHistory(size_t n) {
  TrainingSet set({"x1", "x2", "x3", "x4"}, {"seconds", "dollars"});
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 100);
    const double b = rng.Uniform(0, 100);
    const double c = 1 + rng.Index(8);
    const double d = 1 + rng.Index(8);
    set.Add({a, b, c, d}, {1 + 0.1 * a + 0.2 * b + c + rng.Gaussian(0, 1),
                           0.01 * a + rng.Gaussian(0, 0.1) + 2})
        .CheckOK();
  }
  return set;
}

// Nanoseconds per estimate, adaptively iterated: keep running until the
// total wall time passes min_total so fast paths get stable statistics,
// but never fewer than one and never more than max_iters iterations (the
// batch engine at cap 2048 takes tens of seconds per estimate).
double TimeEstimate(const Dream& dream, const TrainingSet& history,
                    double min_total_sec, size_t max_iters) {
  using clock = std::chrono::steady_clock;
  size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (iters < max_iters && (iters == 0 || elapsed < min_total_sec)) {
    auto estimate = dream.EstimateCostValue(history);
    estimate.status().CheckOK();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return elapsed * 1e9 / static_cast<double>(iters);
}

int Run(const char* out_path) {
  // Open the sink before benchmarking: a bad path should fail in
  // milliseconds, not after minutes of timing runs.
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path);
      return 1;
    }
  }
  const std::vector<size_t> caps = {32, 128, 512, 2048};
  std::string json = "{\n";
  json += "  \"benchmark\": \"dream_window_growth\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  json += "  \"features\": 4,\n";
  json += "  \"metrics\": 2,\n";
  json +=
      "  \"setup\": \"unreachable r2_require forces Algorithm 1 to grow the "
      "window to the cap; both engines see the same history\",\n";
  json += "  \"unit\": \"ns_per_estimate\",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < caps.size(); ++i) {
    const size_t cap = caps[i];
    const TrainingSet history = MakeHistory(cap);
    DreamOptions options;
    options.r2_require = 2.0;  // unreachable: grow to the cap
    options.m_max = cap;

    options.engine = DreamEngine::kIncremental;
    const double incremental_ns =
        TimeEstimate(Dream(options), history, 0.5, 1u << 20);
    options.engine = DreamEngine::kBatch;
    const double batch_ns = TimeEstimate(Dream(options), history, 0.5, 25);

    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"window_cap\": %zu, \"batch_ns\": %.0f, "
                  "\"incremental_ns\": %.0f, \"speedup\": %.1f}%s\n",
                  cap, batch_ns, incremental_ns, batch_ns / incremental_ns,
                  i + 1 < caps.size() ? "," : "");
    json += row;
    std::fprintf(stderr, "cap %5zu: batch %12.0f ns  incremental %9.0f ns  "
                 "speedup %.1fx\n",
                 cap, batch_ns, incremental_ns, batch_ns / incremental_ns);
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), out);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  return midas::Run(argc > 1 ? argv[1] : nullptr);
}
