// Vectorized-engine benchmark: lowers TPC-H scan/filter/aggregate and
// join pipelines over generator-materialized columns (SF 0.1, the paper's
// 100 MiB dataset) and times the batch-at-a-time vectorized engine against
// the row-at-a-time reference interpreter, reporting plans/sec and
// rows/sec for both. Every workload is a correctness gate first: the
// vectorized output must be bit-identical (same ResultDigest) to the
// oracle at every measured batch size, and the process exits nonzero on
// any mismatch. In full mode the scan/filter/aggregate workload must also
// clear a 5x speedup floor over the oracle. `--quick` shrinks the data to
// a CI-sized correctness gate and skips the speedup floor (it still
// reports the measured ratio). Run via scripts/bench_engine.sh; the
// dispatched SIMD tier and hardware_concurrency are recorded because the
// select kernels dispatch at runtime.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_env_common.h"
#include "common/cpu_features.h"
#include "common/statistics.h"
#include "exec/engine.h"
#include "exec/lower.h"
#include "linalg/simd.h"
#include "tpch/table_provider.h"
#include "tpch/tpch_schema.h"

namespace midas {
namespace {

struct BenchConfig {
  bool quick = false;
  double scale_factor = 0.1;      // 100 MiB TPC-H
  uint64_t max_rows_per_table = 0;
  int min_iters = 3;
  double min_seconds = 0.5;       // per engine per workload
  double speedup_floor = 5.0;     // full mode only, scan/filter/agg
};

Predicate Pred(const std::string& column, double selectivity) {
  Predicate p;
  p.column = column;
  p.op = CompareOp::kLe;
  p.selectivity_override = selectivity;
  return p;
}

struct WorkloadDef {
  std::string name;
  QueryPlan plan;
};

std::vector<WorkloadDef> MakeWorkloads() {
  std::vector<WorkloadDef> workloads;
  // The acceptance workload: full lineitem scan, two-column filter, grouped
  // aggregation — the shape TPC-H Q1 stresses.
  {
    auto filter = MakeFilter(MakeScan("lineitem"),
                             {Pred("l_quantity", 0.45),
                              Pred("l_extendedprice", 0.6)});
    workloads.push_back(
        {"scan_filter_agg", QueryPlan(MakeAggregate(std::move(filter), 7))});
  }
  {
    workloads.push_back(
        {"scan_filter",
         QueryPlan(MakeFilter(MakeScan("lineitem"),
                              {Pred("l_quantity", 0.25)}))});
  }
  // Join shape: lineitem x orders on the order key, then aggregate, the
  // skeleton of Q12.
  {
    auto join = MakeJoin(MakeFilter(MakeScan("lineitem"),
                                    {Pred("l_quantity", 0.5)}),
                         MakeScan("orders"), "l_orderkey", "o_orderkey");
    workloads.push_back(
        {"join_agg", QueryPlan(MakeAggregate(std::move(join), 13))});
  }
  return workloads;
}

struct EngineTiming {
  double plans_per_sec = 0.0;
  double rows_per_sec = 0.0;  // base-table rows consumed per second
  uint64_t digest = 0;
};

struct WorkloadResult {
  std::string name;
  uint64_t input_rows = 0;
  EngineTiming vectorized;
  EngineTiming oracle;
  double speedup = 0.0;
};

uint64_t InputRows(const exec::LoweredPlan& plan) {
  uint64_t rows = 0;
  for (const exec::LoweredOp& op : plan.ops) {
    if (op.kind == OperatorKind::kScan) rows += op.scan_rows;
  }
  return rows;
}

/// Runs `plan` repeatedly under `opts` until the clock budget is spent
/// and returns throughput; every run's digest must match the first.
StatusOr<EngineTiming> TimeEngine(const exec::LoweredPlan& plan,
                                  exec::TableProvider* provider,
                                  const exec::ExecOptions& opts,
                                  const BenchConfig& config,
                                  uint64_t input_rows) {
  EngineTiming timing;
  int iters = 0;
  double elapsed = 0.0;
  while (iters < config.min_iters || elapsed < config.min_seconds) {
    const double start = MonotonicSeconds();
    MIDAS_ASSIGN_OR_RETURN(exec::ExecResult result,
                           exec::ExecutePlan(plan, provider, opts));
    elapsed += MonotonicSeconds() - start;
    if (iters == 0) {
      timing.digest = result.digest;
    } else if (result.digest != timing.digest) {
      return Status::Internal("nondeterministic digest across runs");
    }
    ++iters;
  }
  timing.plans_per_sec = iters / elapsed;
  timing.rows_per_sec = timing.plans_per_sec * input_rows;
  return timing;
}

int Run(const char* out_path, const BenchConfig& config) {
  auto catalog_or = tpch::MakeCatalog(config.scale_factor);
  if (!catalog_or.ok()) {
    std::fprintf(stderr, "catalog: %s\n",
                 catalog_or.status().ToString().c_str());
    return 1;
  }
  const Catalog& catalog = catalog_or.value();
  auto cache = std::make_shared<exec::TableCache>(2ull << 30);
  tpch::CachedTableProvider provider(
      tpch::DbGen(config.scale_factor), cache, config.max_rows_per_table);

  exec::LowerOptions lower_opts;
  lower_opts.max_rows_per_table = config.max_rows_per_table;

  std::vector<WorkloadResult> results;
  bool gate_failed = false;
  for (WorkloadDef& wl : MakeWorkloads()) {
    auto lowered = exec::LowerPlan(catalog, wl.plan, lower_opts);
    if (!lowered.ok()) {
      std::fprintf(stderr, "lowering %s failed: %s\n", wl.name.c_str(),
                   lowered.status().ToString().c_str());
      return 1;
    }
    const exec::LoweredPlan& plan = lowered.value();

    WorkloadResult result;
    result.name = wl.name;
    result.input_rows = InputRows(plan);

    exec::ExecOptions oracle_opts;
    oracle_opts.engine = exec::EngineKindExec::kRowOracle;
    auto oracle =
        TimeEngine(plan, &provider, oracle_opts, config, result.input_rows);
    if (!oracle.ok()) {
      std::fprintf(stderr, "oracle %s failed: %s\n", wl.name.c_str(),
                   oracle.status().ToString().c_str());
      return 1;
    }
    result.oracle = oracle.value();

    // Correctness gate: bit-identical to the oracle at several batch sizes;
    // only the last (default) size is the timed measurement.
    for (size_t batch_rows : {257u, 1024u, 4096u}) {
      exec::ExecOptions opts;
      opts.engine = exec::EngineKindExec::kVectorized;
      opts.batch_rows = batch_rows;
      auto timed =
          TimeEngine(plan, &provider, opts, config, result.input_rows);
      if (!timed.ok()) {
        std::fprintf(stderr, "vectorized %s failed: %s\n", wl.name.c_str(),
                     timed.status().ToString().c_str());
        return 1;
      }
      if (timed.value().digest != result.oracle.digest) {
        std::fprintf(stderr,
                     "DIGEST MISMATCH: %s at batch_rows=%zu "
                     "(vectorized %016llx vs oracle %016llx)\n",
                     wl.name.c_str(), batch_rows,
                     static_cast<unsigned long long>(timed.value().digest),
                     static_cast<unsigned long long>(result.oracle.digest));
        gate_failed = true;
      }
      result.vectorized = timed.value();
    }
    result.speedup = result.oracle.plans_per_sec > 0.0
                         ? result.vectorized.plans_per_sec /
                               result.oracle.plans_per_sec
                         : 0.0;
    std::printf("%-16s %9llu rows   vectorized %10.1f plans/s "
                "(%12.0f rows/s)   oracle %8.2f plans/s   x%.1f\n",
                result.name.c_str(),
                static_cast<unsigned long long>(result.input_rows),
                result.vectorized.plans_per_sec,
                result.vectorized.rows_per_sec, result.oracle.plans_per_sec,
                result.speedup);
    results.push_back(std::move(result));
  }

  if (!config.quick) {
    for (const WorkloadResult& r : results) {
      if (r.name == "scan_filter_agg" && r.speedup < config.speedup_floor) {
        std::fprintf(stderr,
                     "SPEEDUP FLOOR MISSED: %s at x%.2f (floor x%.1f)\n",
                     r.name.c_str(), r.speedup, config.speedup_floor);
        gate_failed = true;
      }
    }
  }

  std::string json = "{\n";
  json += "  \"benchmark\": \"vectorized_engine\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  json += "  \"mode\": \"" + std::string(config.quick ? "quick" : "full") +
          "\",\n";
  json += "  \"scale_factor\": " + std::to_string(config.scale_factor) +
          ",\n";
  json += "  \"simd_tier\": \"" +
          std::string(SimdTierName(simd::ActiveTier())) + "\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workload\": \"%s\", \"input_rows\": %llu, "
        "\"vectorized_plans_per_sec\": %.2f, "
        "\"vectorized_rows_per_sec\": %.0f, "
        "\"oracle_plans_per_sec\": %.2f, \"oracle_rows_per_sec\": %.0f, "
        "\"speedup\": %.2f, \"digest\": \"%016llx\"}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.input_rows),
        r.vectorized.plans_per_sec, r.vectorized.rows_per_sec,
        r.oracle.plans_per_sec, r.oracle.rows_per_sec, r.speedup,
        static_cast<unsigned long long>(r.oracle.digest),
        i + 1 < results.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  midas::BenchConfig config;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.quick = true;
    } else if (out_path == nullptr) {
      out_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <output.json> [--quick]\n", argv[0]);
      return 2;
    }
  }
  if (out_path == nullptr) {
    std::fprintf(stderr, "usage: %s <output.json> [--quick]\n", argv[0]);
    return 2;
  }
  if (config.quick) {
    config.scale_factor = 0.01;
    config.max_rows_per_table = 20000;
    config.min_iters = 2;
    config.min_seconds = 0.05;
  }
  std::printf("dispatched SIMD tier: %s\n",
              midas::SimdTierName(midas::simd::ActiveTier()));
  return midas::Run(out_path, config);
}
