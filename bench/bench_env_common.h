#ifndef MIDAS_BENCH_BENCH_ENV_COMMON_H_
#define MIDAS_BENCH_BENCH_ENV_COMMON_H_

#include <cstdlib>
#include <string>

namespace midas {

/// The commit hash the benchmark binaries were built from, exported by the
/// scripts/bench_*.sh wrappers as MIDAS_GIT_COMMIT (git rev-parse HEAD).
/// Every BENCH_*.json records it so a results file can always be traced
/// back to the code version it measured; "unknown" when the binary is run
/// outside the wrapper scripts.
inline std::string GitCommitOrUnknown() {
  const char* commit = std::getenv("MIDAS_GIT_COMMIT");
  return (commit != nullptr && *commit != '\0') ? std::string(commit)
                                                : std::string("unknown");
}

}  // namespace midas

#endif  // MIDAS_BENCH_BENCH_ENV_COMMON_H_
