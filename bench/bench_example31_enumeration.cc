// Reproduces Example 3.1 and the paper's scaling argument (§3): a cloud
// resource pool of 70 vCPUs x 260 GiB yields 18,200 equivalent QEP
// configurations, so the per-QEP estimation cost — which grows with the
// training-window size M — is multiplied 18,200-fold. DREAM's small window
// turns directly into fleet-wide estimation speedup.

#include <chrono>
#include <fstream>
#include <iostream>

#include "common/random.h"
#include "common/text_table.h"
#include "query/enumerator.h"
#include "regression/dream.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic 4-variable history (Example 2.1's arity) with mild noise.
TrainingSet MakeHistory(size_t n) {
  TrainingSet set({"x_Pa", "x_Ge", "x_nodeA", "x_nodeB"},
                  {"seconds", "dollars"});
  Rng rng(2019);
  for (size_t i = 0; i < n; ++i) {
    const double pa = rng.Uniform(1, 100);
    const double ge = rng.Uniform(1, 100);
    const double na = 1 + rng.Index(8);
    const double nb = 1 + rng.Index(8);
    set.Add({pa, ge, na, nb},
            {5 + 0.2 * pa + 0.1 * ge + 0.5 * na + rng.Gaussian(0, 1.0),
             0.01 + 0.0002 * pa + 0.0001 * ge + rng.Gaussian(0, 0.001)})
        .CheckOK();
  }
  return set;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  using namespace midas;  // NOLINT: bench brevity

  // Open the report sink before the timing runs: a bad path should fail
  // in milliseconds, not after minutes of window-growth fits.
  std::ofstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = argc > 1 ? file : std::cout;

  const uint64_t kConfigs =
      PlanEnumerator::CountResourceConfigurations(70, 260);
  out << "Example 3.1 — equivalent QEPs from a 70 vCPU x 260 GiB "
         "pool (candidates_examined per batch): "
      << kConfigs << "\n\n";

  const TrainingSet history = MakeHistory(400);
  Rng rng(7);

  out << "Estimation cost of one batch of " << kConfigs
      << " equivalent QEPs versus training-window size M\n";
  TextTable table({"window M", "fit time", "18,200 predictions",
                   "total batch", "plans/sec", "vs M=6"});
  double baseline = 0.0;
  for (size_t m : {6u, 12u, 24u, 50u, 100u, 200u, 400u}) {
    DreamOptions options;
    options.r2_require = 2.0;  // force the window to grow to the cap
    options.m_max = m;
    Dream dream(options);

    // Fit cost: one EstimateCostValue pass per plan batch.
    double t0 = NowSeconds();
    auto estimate = dream.EstimateCostValue(history);
    estimate.status().CheckOK();
    const double fit_seconds = NowSeconds() - t0;

    // Prediction cost for the full configuration fleet.
    t0 = NowSeconds();
    double checksum = 0.0;
    for (uint64_t i = 0; i < kConfigs; ++i) {
      const Vector x = {rng.Uniform(1, 100), rng.Uniform(1, 100),
                        static_cast<double>(1 + (i % 8)),
                        static_cast<double>(1 + (i / 8 % 8))};
      checksum += estimate->Predict(x).ValueOrDie()[0];
    }
    const double predict_seconds = NowSeconds() - t0;
    const double total = fit_seconds + predict_seconds;
    if (baseline == 0.0) baseline = total;
    table.AddRow({std::to_string(estimate->window_size),
                  FormatDouble(fit_seconds * 1e3, 3) + " ms",
                  FormatDouble(predict_seconds * 1e3, 3) + " ms",
                  FormatDouble(total * 1e3, 3) + " ms",
                  FormatDouble(static_cast<double>(kConfigs) / total, 0),
                  FormatDouble(total / baseline, 2) + "x"});
    (void)checksum;
  }
  table.Print(out);
  out << "\nReading: fitting dominates and grows fast with M "
         "(Algorithm 1 refits an O(m L^2) QR at every window it "
         "tries), so a DREAM-sized window keeps the per-plan-set "
         "estimation cost minimal — \"a small reduction of "
         "computation for an equivalent QEP will become significant "
         "for a large number of equivalent QEPs\" (§3).\n";
  return 0;
}
