// Reproduces Example 3.1 and the paper's scaling argument (§3): a cloud
// resource pool of 70 vCPUs x 260 GiB yields 18,200 equivalent QEP
// configurations, so the per-QEP estimation cost — which grows with the
// training-window size M — is multiplied 18,200-fold. DREAM's small window
// turns directly into fleet-wide estimation speedup.
//
// A second section times the MOQP pipeline over an Example-3.1-scale
// enumeration in both execution modes — materialize-everything Optimize
// vs chunked OptimizeStreaming — reporting plans/sec and the peak number
// of simultaneously resident candidate plans, optionally as JSON
// (argv[2], written by scripts/bench_stream.sh to BENCH_stream.json).

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>
#include "bench_env_common.h"

#include "common/random.h"
#include "common/text_table.h"
#include "ires/moo_optimizer.h"
#include "query/enumerator.h"
#include "regression/dream.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic 4-variable history (Example 2.1's arity) with mild noise.
TrainingSet MakeHistory(size_t n) {
  TrainingSet set({"x_Pa", "x_Ge", "x_nodeA", "x_nodeB"},
                  {"seconds", "dollars"});
  Rng rng(2019);
  for (size_t i = 0; i < n; ++i) {
    const double pa = rng.Uniform(1, 100);
    const double ge = rng.Uniform(1, 100);
    const double na = 1 + rng.Index(8);
    const double nb = 1 + rng.Index(8);
    set.Add({pa, ge, na, nb},
            {5 + 0.2 * pa + 0.1 * ge + 0.5 * na + rng.Gaussian(0, 1.0),
             0.01 + 0.0002 * pa + 0.0001 * ge + rng.Gaussian(0, 0.001)})
        .CheckOK();
  }
  return set;
}

// Two-cloud federation whose enumeration explodes into an
// Example-3.1-scale candidate fleet (VM counts 1-32 per site).
struct FederationEnv {
  Federation federation;
  Catalog catalog;
};

FederationEnv MakeFederationEnv() {
  FederationEnv env;
  SiteConfig a;
  a.name = "cloud-A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 32;
  const SiteId site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 32;
  const SiteId site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 500000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 500000},
                {"pay", ColumnType::kString, 64.0, 500000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 40000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 40000}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", site_b, EngineKind::kPostgres).CheckOK();
  return env;
}

// Cheap pure-linear batch predictor: keeps the timing dominated by the
// enumerate/fold machinery under comparison, not by estimator fits. The
// signs mirror the MOQP feature layout (data MiB then VM count per
// site): more VMs buy time and cost money, so the front is a genuine
// time/money trade-off rather than a single dominating plan.
MultiObjectiveOptimizer::BatchCostPredictor LinearBatchPredictor() {
  return [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 2, 0.0);
    for (size_t r = 0; r < features.rows(); ++r) {
      double seconds = 100.0;
      double dollars = 0.05;
      for (size_t c = 0; c < features.cols(); ++c) {
        seconds += (c % 2 == 0 ? 0.05 : -1.5) * features(r, c);
        dollars += (c % 2 == 0 ? 1e-4 : 2e-3) * features(r, c);
      }
      (*costs)(r, 0) = seconds;
      (*costs)(r, 1) = dollars;
    }
    return Status::OK();
  };
}

constexpr int kStreamReps = 3;

struct StreamRow {
  std::string config;
  size_t chunk_size = 0;  // 0 = materialized
  double total_seconds = 0.0;
  size_t candidates = 0;
  size_t peak_resident = 0;
  size_t pareto_size = 0;
  bool matches_materialized = true;
};

// Times Optimize vs OptimizeStreaming over the same candidate fleet and
// appends the rows to `rows`; every streaming row is cross-checked
// against the materialized front.
void RunStreamingComparison(std::ostream& out,
                            std::vector<StreamRow>* rows) {
  FederationEnv env = MakeFederationEnv();
  const QueryPlan logical =
      QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  const auto predictor = LinearBatchPredictor();

  EnumeratorOptions enumerator;
  enumerator.node_counts.clear();
  for (int n = 1; n <= 32; ++n) enumerator.node_counts.push_back(n);
  enumerator.max_plans = 200000;

  std::vector<Vector> baseline_front;
  size_t baseline_chosen = 0;

  auto run = [&](const std::string& name, size_t chunk_size) {
    MoqpOptions options;
    options.enumerator = enumerator;
    options.stream_chunk_size = chunk_size;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    StreamRow row;
    row.config = name;
    row.chunk_size = chunk_size;
    for (int rep = 0; rep < kStreamReps; ++rep) {
      const double t0 = NowSeconds();
      StatusOr<MoqpResult> result =
          chunk_size == 0
              ? optimizer.Optimize(logical, predictor, policy)
              : optimizer.OptimizeStreaming(logical, predictor, policy);
      result.status().CheckOK();
      row.total_seconds += NowSeconds() - t0;
      row.candidates = result->candidates_examined;
      row.peak_resident = result->peak_resident_candidates;
      row.pareto_size = result->pareto_costs.size();
      if (baseline_front.empty() && chunk_size == 0) {
        baseline_front = result->pareto_costs;
        baseline_chosen = result->chosen;
      }
      if (result->pareto_costs != baseline_front ||
          result->chosen != baseline_chosen) {
        row.matches_materialized = false;
      }
    }
    rows->push_back(std::move(row));
  };

  run("materialized", 0);
  for (size_t chunk : {size_t{256}, size_t{1024}, size_t{4096}}) {
    run("stream_c" + std::to_string(chunk), chunk);
  }

  out << "\nStreaming vs materialized MOQP pipeline ("
      << rows->front().candidates << " candidates, " << kStreamReps
      << " reps, linear batch predictor)\n";
  TextTable table({"config", "total", "plans/sec", "peak resident",
                   "front", "matches"});
  for (const StreamRow& row : *rows) {
    table.AddRow(
        {row.config, FormatDouble(row.total_seconds * 1e3, 1) + " ms",
         FormatDouble(
             static_cast<double>(row.candidates) * kStreamReps / row.total_seconds,
             0),
         std::to_string(row.peak_resident), std::to_string(row.pareto_size),
         row.matches_materialized ? "yes" : "NO"});
  }
  table.Print(out);
  out << "\nReading: the streaming pipeline folds each costed chunk into "
         "an online Pareto archive, so its peak working set is the front "
         "plus one chunk instead of the whole fleet — identical results "
         "at a fraction of the resident plans.\n";
}

void WriteStreamJson(const std::vector<StreamRow>& rows, int reps,
                     std::ostream& out) {
  out << "{\n  \"benchmark\": \"moqp_streaming_enumeration\",\n";
  out << "  \"git_commit\": \"" << GitCommitOrUnknown() << "\",\n";
  out << "  \"setup\": \"two-table join over a two-cloud federation, VM "
         "counts 1-32 per site (Example 3.1 scale); linear batch "
         "predictor; materialize-everything Optimize vs chunked "
         "OptimizeStreaming with an online Pareto archive\",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"candidates_examined\": " << rows.front().candidates << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const StreamRow& row = rows[i];
    out << "    {\"config\": \"" << row.config
        << "\", \"chunk_size\": " << row.chunk_size
        << ", \"total_seconds\": " << FormatDouble(row.total_seconds, 4)
        << ", \"plans_per_sec\": "
        << FormatDouble(static_cast<double>(row.candidates) * reps /
                            row.total_seconds,
                        0)
        << ", \"peak_resident_candidates\": " << row.peak_resident
        << ", \"pareto_size\": " << row.pareto_size
        << ", \"matches_materialized\": "
        << (row.matches_materialized ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  using namespace midas;  // NOLINT: bench brevity

  // Open the report sink before the timing runs: a bad path should fail
  // in milliseconds, not after minutes of window-growth fits.
  std::ofstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = argc > 1 ? file : std::cout;

  const uint64_t kConfigs =
      PlanEnumerator::CountResourceConfigurations(70, 260);
  out << "Example 3.1 — equivalent QEPs from a 70 vCPU x 260 GiB "
         "pool (candidates_examined per batch): "
      << kConfigs << "\n\n";

  const TrainingSet history = MakeHistory(400);
  Rng rng(7);

  out << "Estimation cost of one batch of " << kConfigs
      << " equivalent QEPs versus training-window size M\n";
  TextTable table({"window M", "fit time", "18,200 predictions",
                   "total batch", "plans/sec", "vs M=6"});
  double baseline = 0.0;
  for (size_t m : {6u, 12u, 24u, 50u, 100u, 200u, 400u}) {
    DreamOptions options;
    options.r2_require = 2.0;  // force the window to grow to the cap
    options.m_max = m;
    Dream dream(options);

    // Fit cost: one EstimateCostValue pass per plan batch.
    double t0 = NowSeconds();
    auto estimate = dream.EstimateCostValue(history);
    estimate.status().CheckOK();
    const double fit_seconds = NowSeconds() - t0;

    // Prediction cost for the full configuration fleet.
    t0 = NowSeconds();
    double checksum = 0.0;
    for (uint64_t i = 0; i < kConfigs; ++i) {
      const Vector x = {rng.Uniform(1, 100), rng.Uniform(1, 100),
                        static_cast<double>(1 + (i % 8)),
                        static_cast<double>(1 + (i / 8 % 8))};
      checksum += estimate->Predict(x).ValueOrDie()[0];
    }
    const double predict_seconds = NowSeconds() - t0;
    const double total = fit_seconds + predict_seconds;
    if (baseline == 0.0) baseline = total;
    table.AddRow({std::to_string(estimate->window_size),
                  FormatDouble(fit_seconds * 1e3, 3) + " ms",
                  FormatDouble(predict_seconds * 1e3, 3) + " ms",
                  FormatDouble(total * 1e3, 3) + " ms",
                  FormatDouble(static_cast<double>(kConfigs) / total, 0),
                  FormatDouble(total / baseline, 2) + "x"});
    (void)checksum;
  }
  table.Print(out);
  out << "\nReading: fitting dominates and grows fast with M "
         "(Algorithm 1 refits an O(m L^2) QR at every window it "
         "tries), so a DREAM-sized window keeps the per-plan-set "
         "estimation cost minimal — \"a small reduction of "
         "computation for an equivalent QEP will become significant "
         "for a large number of equivalent QEPs\" (§3).\n";

  // Section 2: streaming vs materialized pipeline execution over the
  // same scale of plan fleet.
  std::vector<StreamRow> rows;
  RunStreamingComparison(out, &rows);
  if (argc > 2) {
    std::ofstream json(argv[2]);
    if (!json) {
      std::cerr << "cannot open " << argv[2] << " for writing\n";
      return 1;
    }
    WriteStreamJson(rows, kStreamReps, json);
  }
  return 0;
}
