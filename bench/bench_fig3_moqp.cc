// Reproduces Figure 3: the two MOQP pipelines side by side.
//
//   left  — Multi-Objective Optimization based on a Genetic Algorithm:
//           evolve/extract a Pareto plan set once, then select the final
//           QEP per user policy with BestInPareto (Algorithm 2);
//   right — Multi-Objective Optimization based on the Weighted Sum Model:
//           scalarise up front and re-optimize for every policy.
//
// Two experiments make the figure's point quantitative:
//   (1) on the non-convex ZDT2 benchmark, a weight sweep of WSM only ever
//       reaches the extremes of the front while NSGA-II covers it;
//   (2) on a real QEP space (TPC-H Q12 over the two-cloud federation),
//       re-targeting the user policy costs O(|Pareto set|) with the GA
//       pipeline but a full re-optimization with WSM.

#include <chrono>
#include <fstream>
#include <iostream>

#include "common/text_table.h"
#include "engine/simulator.h"
#include "ires/moo_optimizer.h"
#include "optimizer/metrics.h"
#include "optimizer/nsga2.h"
#include "optimizer/wsm.h"
#include "tpch/workload.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NonConvexFrontExperiment(std::ostream& out) {
  out << "Experiment 1 — non-convex front coverage (ZDT2)\n";
  Zdt2 problem(8);

  Nsga2Options ga_options;
  ga_options.population_size = 100;
  ga_options.generations = 150;
  auto ga = Nsga2(ga_options).Optimize(problem);
  ga.status().CheckOK();
  const auto ga_front = ga->FrontObjectives();

  WsmGaOptions wsm_options;
  wsm_options.population_size = 100;
  wsm_options.generations = 150;
  WsmGeneticOptimizer wsm(wsm_options);
  std::vector<Vector> wsm_points;
  for (double w = 0.1; w < 1.0; w += 0.1) {
    auto result = wsm.Optimize(problem, {w, 1.0 - w});
    result.status().CheckOK();
    wsm_points.push_back(result->objectives);
  }

  const Vector reference = {1.1, 1.1};
  const double hv_ga = Hypervolume2D(ga_front, reference).ValueOrDie();
  const double hv_wsm = Hypervolume2D(wsm_points, reference).ValueOrDie();
  int wsm_interior = 0;
  for (const Vector& p : wsm_points) {
    if (p[0] > 0.15 && p[0] < 0.85) ++wsm_interior;
  }
  int ga_interior = 0;
  for (const Vector& p : ga_front) {
    if (p[0] > 0.15 && p[0] < 0.85) ++ga_interior;
  }

  TextTable table({"approach", "solutions", "interior points", "hypervolume"});
  table.AddRow({"NSGA-II Pareto set", std::to_string(ga_front.size()),
                std::to_string(ga_interior), FormatDouble(hv_ga, 3)});
  table.AddRow({"WSM (9-weight sweep)", std::to_string(wsm_points.size()),
                std::to_string(wsm_interior), FormatDouble(hv_wsm, 3)});
  table.Print(out);
  out << "Reading: on a non-convex front the WSM sweep collapses to "
         "the extremes (≈0 interior points) while the Pareto set "
         "covers the whole trade-off (§2.6).\n\n";
}

void QepRetargetingExperiment(std::ostream& out) {
  out << "Experiment 2 — policy re-targeting cost on the Q12 QEP "
         "space\n";
  // Two-cloud federation with Q12's tables split across engines.
  Federation fed;
  const InstanceCatalog catalog_t1 = InstanceCatalog::PaperTable1();
  SiteConfig a;
  a.name = "cloud-A";
  a.provider = ProviderKind::kAmazon;
  a.engines = {EngineKind::kHive};
  a.node_type = catalog_t1.Find("a1.xlarge").ValueOrDie();
  a.max_nodes = 8;
  const SiteId site_a = fed.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.provider = ProviderKind::kMicrosoft;
  b.engines = {EngineKind::kPostgres};
  b.node_type = catalog_t1.Find("B2S").ValueOrDie();
  b.max_nodes = 8;
  const SiteId site_b = fed.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  fed.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = 0.1;
  tpch::Workload workload(wl_opts);
  fed.PlaceTable("orders", site_b, EngineKind::kPostgres).CheckOK();
  fed.PlaceTable("lineitem", site_a, EngineKind::kHive).CheckOK();

  SimulatorOptions sim_opts;
  sim_opts.stochastic = false;
  ExecutionSimulator sim(&fed, &workload.catalog(), sim_opts);
  auto predictor = [&sim](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Measurement m, sim.ExpectedCostAt(plan, 0));
    return Vector{m.seconds, m.dollars};
  };

  const QueryPlan q12 = tpch::MakeQuery(12).ValueOrDie();
  const std::vector<Vector> weight_sweep = {
      {1.0, 0.0}, {0.8, 0.2}, {0.6, 0.4}, {0.4, 0.6}, {0.2, 0.8},
      {0.0, 1.0}};

  // GA/Pareto pipeline: one optimization, then Algorithm 2 per policy.
  MultiObjectiveOptimizer pareto_optimizer(&fed, &workload.catalog());
  QueryPolicy first_policy;
  first_policy.weights = weight_sweep[0];
  double t0 = NowSeconds();
  auto moqp = pareto_optimizer.Optimize(q12, predictor, first_policy);
  moqp.status().CheckOK();
  const double pareto_build_seconds = NowSeconds() - t0;
  t0 = NowSeconds();
  std::vector<size_t> pareto_choices;
  for (const Vector& weights : weight_sweep) {
    QueryPolicy policy;
    policy.weights = weights;
    pareto_choices.push_back(
        BestInPareto(moqp->pareto_costs, policy).ValueOrDie());
  }
  const double pareto_retarget_seconds = NowSeconds() - t0;

  // WSM pipeline: full re-optimization per policy.
  MoqpOptions wsm_opts;
  wsm_opts.algorithm = MoqpAlgorithm::kWsm;
  MultiObjectiveOptimizer wsm_optimizer(&fed, &workload.catalog(), wsm_opts);
  t0 = NowSeconds();
  std::vector<Vector> wsm_costs;
  for (const Vector& weights : weight_sweep) {
    QueryPolicy policy;
    policy.weights = weights;
    auto result = wsm_optimizer.Optimize(q12, predictor, policy);
    result.status().CheckOK();
    wsm_costs.push_back(result->chosen_costs());
  }
  const double wsm_total_seconds = NowSeconds() - t0;

  TextTable table({"policy (w_time, w_money)", "Pareto+Alg.2 pick (s, $)",
                   "WSM pick (s, $)"});
  for (size_t i = 0; i < weight_sweep.size(); ++i) {
    const Vector& p = moqp->pareto_costs[pareto_choices[i]];
    table.AddRow({"(" + FormatDouble(weight_sweep[i][0], 1) + ", " +
                      FormatDouble(weight_sweep[i][1], 1) + ")",
                  FormatDouble(p[0], 2) + ", " + FormatDouble(p[1], 5),
                  FormatDouble(wsm_costs[i][0], 2) + ", " +
                      FormatDouble(wsm_costs[i][1], 5)});
  }
  table.Print(out);

  out << "\ncandidates_examined: " << moqp->candidates_examined
      << " QEPs, Pareto set size: " << moqp->pareto_costs.size() << "\n";
  out << "pipeline throughput: "
      << FormatDouble(
             static_cast<double>(moqp->candidates_examined) /
                 pareto_build_seconds,
             0)
      << " plans/sec (enumerate + predict + Pareto + select)\n";
  TextTable timing({"pipeline", "build once", "6 policy changes", "total"});
  timing.AddRow({"GA/Pareto + Algorithm 2",
                 FormatDouble(pareto_build_seconds * 1e3, 2) + " ms",
                 FormatDouble(pareto_retarget_seconds * 1e3, 3) + " ms",
                 FormatDouble(
                     (pareto_build_seconds + pareto_retarget_seconds) * 1e3,
                     2) +
                     " ms"});
  timing.AddRow({"WSM re-optimization", "-",
                 FormatDouble(wsm_total_seconds * 1e3, 2) + " ms",
                 FormatDouble(wsm_total_seconds * 1e3, 2) + " ms"});
  timing.Print(out);
  out << "Reading: once the Pareto set exists, a policy change is a "
         "cheap Algorithm-2 pass; the WSM branch repeats the whole "
         "optimization (§2.6).\n";
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  // Open the report sink before the experiments: a bad path should fail
  // in milliseconds, not after the optimization runs.
  std::ofstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = argc > 1 ? file : std::cout;
  out << "Figure 3 — comparing the two MOQP approaches\n\n";
  midas::NonConvexFrontExperiment(out);
  midas::QepRetargetingExperiment(out);
  return 0;
}
