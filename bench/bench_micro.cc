// Microbenchmarks (google-benchmark) for the building blocks on the MOQP
// hot path: OLS fitting at different window sizes, one full DREAM
// estimation pass, physical-plan enumeration, simulator costing, and one
// NSGA-II generation's worth of evaluations.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/simulator.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "optimizer/nsga2.h"
#include "query/enumerator.h"
#include "regression/dream.h"
#include "tpch/workload.h"

namespace midas {
namespace {

TrainingSet MakeHistory(size_t n) {
  TrainingSet set({"x1", "x2", "x3", "x4"}, {"seconds", "dollars"});
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 100);
    const double b = rng.Uniform(0, 100);
    const double c = 1 + rng.Index(8);
    const double d = 1 + rng.Index(8);
    set.Add({a, b, c, d}, {1 + 0.1 * a + 0.2 * b + c + rng.Gaussian(0, 1),
                           0.01 * a + rng.Gaussian(0, 0.1) + 2})
        .CheckOK();
  }
  return set;
}

void BM_OlsFit(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  TrainingSet history = MakeHistory(m);
  auto xs = history.RecentFeatures(m).ValueOrDie();
  auto ys = history.RecentCosts(m, 0).ValueOrDie();
  for (auto _ : state) {
    auto model = FitOls(xs, ys);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_OlsFit)->Arg(6)->Arg(12)->Arg(24)->Arg(100)->Arg(400);

void BM_DreamEstimate(benchmark::State& state) {
  const size_t history_size = static_cast<size_t>(state.range(0));
  TrainingSet history = MakeHistory(history_size);
  Dream dream;
  for (auto _ : state) {
    auto estimate = dream.EstimateCostValue(history);
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_DreamEstimate)->Arg(12)->Arg(50)->Arg(200);

// Worst-case window growth: an unreachable R² requirement forces Algorithm 1
// all the way to the cap, which is where the batch refit-from-scratch loop
// (O(Σ_m m·L²) per metric) and the incremental rank-1 engine (O(L³ + N·L²)
// per window) diverge the most. Same history, same windows, same models.
DreamOptions FullGrowthOptions(size_t cap, DreamEngine engine) {
  DreamOptions options;
  options.r2_require = 2.0;  // unreachable: grow to the cap
  options.m_max = cap;
  options.engine = engine;
  return options;
}

void BM_DreamBatch(benchmark::State& state) {
  const size_t cap = static_cast<size_t>(state.range(0));
  TrainingSet history = MakeHistory(cap);
  Dream dream(FullGrowthOptions(cap, DreamEngine::kBatch));
  for (auto _ : state) {
    auto estimate = dream.EstimateCostValue(history);
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_DreamBatch)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_DreamIncremental(benchmark::State& state) {
  const size_t cap = static_cast<size_t>(state.range(0));
  TrainingSet history = MakeHistory(cap);
  Dream dream(FullGrowthOptions(cap, DreamEngine::kIncremental));
  for (auto _ : state) {
    auto estimate = dream.EstimateCostValue(history);
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_DreamIncremental)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// --- GEMM kernels ----------------------------------------------------------
//
// Square n×n·n×n products comparing the textbook i-j-k reference against
// the cache-blocked i-k-j kernel behind Multiply/PredictBatch. At n = 64
// everything fits in L1 and the two are close; by n = 1024 the naive loop's
// strided B reads thrash cache while the blocked kernel keeps its panels
// resident.

Matrix RandomSquare(size_t n, uint64_t seed) {
  Matrix m(n, n);
  Rng rng(seed);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = rng.Uniform(-1, 1);
  }
  return m;
}

void BM_GemmNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomSquare(n, 51);
  const Matrix b = RandomSquare(n, 52);
  Matrix out;
  for (auto _ : state) {
    MultiplyReferenceInto(a, b, &out).CheckOK();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomSquare(n, 51);
  const Matrix b = RandomSquare(n, 52);
  Matrix out;
  for (auto _ : state) {
    a.MultiplyInto(b, &out).CheckOK();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmBlockedScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomSquare(n, 51);
  const Matrix b = RandomSquare(n, 52);
  Matrix out;
  simd::SetForceScalar(true);
  for (auto _ : state) {
    a.MultiplyInto(b, &out).CheckOK();
    benchmark::DoNotOptimize(out);
  }
  simd::SetForceScalar(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_GemmBlockedScalar)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// --- SIMD kernel tiers -----------------------------------------------------
//
// Each pair runs the same kernel with the dispatched vector tier and with
// the scalar tier pinned (simd::SetForceScalar), so one report shows the
// per-kernel speedup of the active ISA. BM_Gemm{Blocked,BlockedScalar}
// above are the GEMM pair.

void DotBody(benchmark::State& state, bool scalar) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(61);
  Vector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-1, 1);
    b[i] = rng.Uniform(-1, 1);
  }
  simd::SetForceScalar(scalar);
  for (auto _ : state) {
    double d = Dot(a, b);
    benchmark::DoNotOptimize(d);
  }
  simd::SetForceScalar(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}

void BM_DotSimd(benchmark::State& state) { DotBody(state, false); }
BENCHMARK(BM_DotSimd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DotScalar(benchmark::State& state) { DotBody(state, true); }
BENCHMARK(BM_DotScalar)->Arg(64)->Arg(1024)->Arg(16384);

void GramBody(benchmark::State& state, bool scalar) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = static_cast<size_t>(state.range(1));
  Rng rng(62);
  Matrix x(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) x(r, c) = rng.Uniform(-1, 1);
  }
  simd::SetForceScalar(scalar);
  for (auto _ : state) {
    Matrix g = x.Gram();
    benchmark::DoNotOptimize(g);
  }
  simd::SetForceScalar(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows *
                          cols * cols);
}

void BM_GramSimd(benchmark::State& state) { GramBody(state, false); }
BENCHMARK(BM_GramSimd)->Args({256, 16})->Args({1024, 64});

void BM_GramScalar(benchmark::State& state) { GramBody(state, true); }
BENCHMARK(BM_GramScalar)->Args({256, 16})->Args({1024, 64});

void BM_DreamPredict(benchmark::State& state) {
  TrainingSet history = MakeHistory(50);
  Dream dream;
  auto estimate = dream.EstimateCostValue(history).ValueOrDie();
  const Vector x = {10, 20, 2, 4};
  for (auto _ : state) {
    auto costs = estimate.Predict(x);
    benchmark::DoNotOptimize(costs);
  }
}
BENCHMARK(BM_DreamPredict);

struct QepEnvironment {
  Federation federation;
  tpch::Workload workload;

  QepEnvironment() : workload([] {
                       tpch::WorkloadOptions options;
                       options.scale_factor = 0.1;
                       return options;
                     }()) {
    const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
    SiteConfig a;
    a.name = "A";
    a.provider = ProviderKind::kAmazon;
    a.engines = {EngineKind::kHive};
    a.node_type = catalog.Find("a1.xlarge").ValueOrDie();
    a.max_nodes = 8;
    federation.AddSite(a).ValueOrDie();
    SiteConfig b;
    b.name = "B";
    b.provider = ProviderKind::kMicrosoft;
    b.engines = {EngineKind::kPostgres};
    b.node_type = catalog.Find("B2S").ValueOrDie();
    b.max_nodes = 8;
    federation.AddSite(b).ValueOrDie();
    federation.PlaceTable("orders", 1, EngineKind::kPostgres).CheckOK();
    federation.PlaceTable("lineitem", 0, EngineKind::kHive).CheckOK();
  }
};

void BM_EnumeratePhysicalPlans(benchmark::State& state) {
  QepEnvironment env;
  PlanEnumerator enumerator(&env.federation, &env.workload.catalog());
  const QueryPlan q12 = tpch::MakeQuery(12).ValueOrDie();
  for (auto _ : state) {
    auto plans = enumerator.EnumeratePhysical(q12);
    benchmark::DoNotOptimize(plans);
  }
}
BENCHMARK(BM_EnumeratePhysicalPlans);

void BM_SimulatorExpectedCost(benchmark::State& state) {
  QepEnvironment env;
  SimulatorOptions options;
  options.stochastic = false;
  ExecutionSimulator sim(&env.federation, &env.workload.catalog(), options);
  PlanEnumerator enumerator(&env.federation, &env.workload.catalog());
  auto plans =
      enumerator.EnumeratePhysical(tpch::MakeQuery(12).ValueOrDie())
          .ValueOrDie();
  for (auto _ : state) {
    auto m = sim.ExpectedCostAt(plans[0], 0);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SimulatorExpectedCost);

void BM_Nsga2Schaffer(benchmark::State& state) {
  Nsga2Options options;
  options.population_size = 60;
  options.generations = static_cast<size_t>(state.range(0));
  Nsga2 nsga2(options);
  Schaffer problem;
  for (auto _ : state) {
    auto result = nsga2.Optimize(problem);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Nsga2Schaffer)->Arg(10)->Arg(50);

}  // namespace
}  // namespace midas

BENCHMARK_MAIN();
