// Machine-readable MOQP pipeline benchmark: times the end-to-end
// Multi-Objective Optimizer (enumerate → predict → Pareto → Algorithm 2)
// over an Example-3.1-scale QEP space, sweeping thread counts 1/2/4/8 for
// both costing stages —
//
//   scalar_tN   per-plan CostPredictor: each candidate runs DREAM's
//               Algorithm 1 (window growth to the cap) and one Predict —
//               the seed pipeline, parallelised over plans;
//   batch_tN    BatchCostPredictor: candidates are gathered into SoA
//               feature matrices (MoqpOptions::batch_size rows), each
//               chunk runs Algorithm 1 once and scores every row through
//               one GEMM-backed PredictBatch;
//
// plus batch_t8_cache, which adds the striped feature-keyed memo so
// equivalent QEPs are scored once and repeated optimizations reuse the
// persistent cache. With --stream, stream_tN configurations run the same
// batched costing through OptimizeStreaming (chunked enumeration folded
// into the online Pareto archive) so the O(front + chunk) pipeline is
// tracked against the materialized one. Every row records whether its
// Pareto front and chosen plan match the serial scalar baseline:
// bit-identical when the scalar kernel tier is pinned (MIDAS_FORCE_SCALAR),
// within the SIMD layer's 1e-12 relative drift budget otherwise (the batch
// paths score through the FMA GEMM tile while the scalar predictor runs
// per-row dots, so their rounding orders differ). Emits BENCH_moqp.json so
// the perf trajectory is tracked across PRs; run via scripts/bench_moqp.sh.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>
#include "bench_env_common.h"

#include "common/random.h"
#include "ires/features.h"
#include "ires/moo_optimizer.h"
#include "linalg/simd.h"
#include "regression/dream.h"

namespace midas {
namespace {

// The determinism policy's equality: bitwise when the scalar kernel tier
// is active, elementwise <= 1e-12 relative when a vector tier is
// dispatched (the batch predictor's GEMM and the scalar predictor's
// per-row dots associate rounding differently).
bool CostsMatchBaseline(const std::vector<Vector>& actual,
                        const std::vector<Vector>& baseline) {
  if (!simd::Enabled()) return actual == baseline;
  if (actual.size() != baseline.size()) return false;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].size() != baseline[i].size()) return false;
    for (size_t j = 0; j < actual[i].size(); ++j) {
      const double a = actual[i][j];
      const double e = baseline[i][j];
      const double tol =
          1e-12 * std::max({1.0, std::fabs(a), std::fabs(e)});
      if (!(std::fabs(a - e) <= tol)) return false;
    }
  }
  return true;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Environment {
  Federation federation;
  Catalog catalog;
};

// Two-cloud federation with a three-table join so the enumerator emits
// join-order × compute-placement × VM-count variants at Example 3.1 scale.
Environment MakeEnvironment(int max_nodes) {
  Environment env;
  SiteConfig a;
  a.name = "cloud-A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = max_nodes;
  const SiteId site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = max_nodes;
  const SiteId site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 500000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 500000},
                {"pay", ColumnType::kString, 64.0, 500000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 40000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 40000},
                {"ref", ColumnType::kInt, 8.0, 4000}};
  env.catalog.AddTable(t2).CheckOK();
  TableDef t3;
  t3.name = "t3";
  t3.row_count = 4000;
  t3.columns = {{"ref", ColumnType::kInt, 8.0, 4000}};
  env.catalog.AddTable(t3).CheckOK();
  env.federation.PlaceTable("t1", site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", site_b, EngineKind::kPostgres).CheckOK();
  env.federation.PlaceTable("t3", site_a, EngineKind::kHive).CheckOK();
  return env;
}

QueryPlan ThreeTableJoin() {
  return QueryPlan(MakeJoin(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id",
                                     "id"),
                            MakeScan("t3"), "ref", "ref"));
}

// History at the MOQP feature arity (2 per site: data MiB + VM count).
TrainingSet MakeHistory(const Federation& federation, size_t n) {
  const std::vector<std::string> names = FeatureNames(federation);
  TrainingSet set(names, {"seconds", "dollars"});
  Rng rng(2019);
  for (size_t i = 0; i < n; ++i) {
    Vector x(names.size());
    for (size_t j = 0; j < x.size(); ++j) {
      // Alternate data-size-like and node-count-like magnitudes.
      x[j] = (j % 2 == 0) ? rng.Uniform(1, 200) : 1 + rng.Index(48);
    }
    double seconds = 5.0;
    double dollars = 0.01;
    for (size_t j = 0; j < x.size(); ++j) {
      seconds += (j % 2 == 0 ? 0.05 : -0.4) * x[j];
      dollars += (j % 2 == 0 ? 1e-4 : 2e-3) * x[j];
    }
    set.Add(x, {seconds + rng.Gaussian(0, 0.5),
                dollars + rng.Gaussian(0, 0.001)})
        .CheckOK();
  }
  return set;
}

struct ConfigResult {
  std::string name;
  std::string mode;  // "scalar", "batch" or "stream"
  size_t threads = 0;
  bool cache = false;
  std::vector<double> rep_seconds;
  size_t candidates_examined = 0;
  size_t pareto_size = 0;
  size_t peak_resident = 0;
  bool matches_serial = true;
  std::vector<size_t> predictor_calls;
  std::vector<size_t> cache_hits;

  double TotalSeconds() const {
    return std::accumulate(rep_seconds.begin(), rep_seconds.end(), 0.0);
  }
};

int Run(const char* out_path, bool stream) {
  // Open the sink before benchmarking: a bad path should fail in
  // milliseconds, not after the timing runs.
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path);
      return 1;
    }
  }

  Environment env = MakeEnvironment(/*max_nodes=*/32);
  const QueryPlan logical = ThreeTableJoin();
  const TrainingSet history = MakeHistory(env.federation, 256);

  // Algorithm 1 with an unreachable R² target grows the window to the cap
  // on every estimate — the per-QEP estimation cost §3 multiplies by the
  // fleet size. The scalar predictor pays it per candidate; the batch
  // predictor pays it once per SoA chunk and scores all rows in one GEMM.
  // Both are deterministic functions of the same history; their per-plan
  // costs are bit-identical under the scalar kernel tier and within the
  // SIMD layer's 1e-12 relative drift budget otherwise.
  DreamOptions dream_options;
  dream_options.r2_require = 2.0;
  dream_options.m_max = 256;
  dream_options.engine = DreamEngine::kIncremental;
  const auto scalar_predictor =
      [&](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Vector x,
                           ExtractFeatures(env.federation, plan));
    Dream dream(dream_options);
    MIDAS_ASSIGN_OR_RETURN(DreamEstimate estimate,
                           dream.EstimateCostValue(history));
    return estimate.Predict(x);
  };
  const MultiObjectiveOptimizer::BatchCostPredictor batch_predictor =
      [&](const Matrix& x, Matrix* costs) -> Status {
    Dream dream(dream_options);
    MIDAS_ASSIGN_OR_RETURN(*costs, dream.PredictCostsBatch(history, x));
    return Status::OK();
  };

  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  EnumeratorOptions enumerator;
  enumerator.node_counts.clear();
  for (int n = 1; n <= 32; ++n) enumerator.node_counts.push_back(n);
  enumerator.max_plans = 200000;

  constexpr int kReps = 3;
  std::vector<ConfigResult> results;
  struct Config {
    std::string name;
    std::string mode;
    size_t threads;
    bool cache;
  };
  std::vector<Config> configs;
  for (size_t threads : {1, 2, 4, 8}) {
    configs.push_back({"scalar_t" + std::to_string(threads), "scalar",
                       threads, false});
  }
  for (size_t threads : {1, 2, 4, 8}) {
    configs.push_back({"batch_t" + std::to_string(threads), "batch",
                       threads, false});
  }
  configs.push_back({"batch_t8_cache", "batch", 8, true});
  if (stream) {
    for (size_t threads : {1, 8}) {
      configs.push_back({"stream_t" + std::to_string(threads), "stream",
                         threads, false});
    }
    configs.push_back({"stream_t8_cache", "stream", 8, true});
  }

  // Serial scalar result, against which every other row is checked.
  std::vector<Vector> baseline_front;
  size_t baseline_chosen = 0;
  std::string baseline_plan;
  for (const Config& config : configs) {
    MoqpOptions options;
    options.enumerator = enumerator;
    options.threads = config.threads;
    options.cache_predictions = config.cache;
    // One optimizer per configuration: the prediction cache persists
    // across its reps, so rep 1 is the cold run and reps 2+ are warm.
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    ConfigResult r;
    r.name = config.name;
    r.mode = config.mode;
    r.threads = config.threads;
    r.cache = config.cache;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = NowSeconds();
      StatusOr<MoqpResult> result =
          config.mode == "scalar"
              ? optimizer.Optimize(logical, scalar_predictor, policy)
          : config.mode == "stream"
              ? optimizer.OptimizeStreaming(logical, batch_predictor,
                                            policy)
              : optimizer.Optimize(logical, batch_predictor, policy);
      result.status().CheckOK();
      r.rep_seconds.push_back(NowSeconds() - t0);
      r.candidates_examined = result->candidates_examined;
      r.pareto_size = result->pareto_costs.size();
      r.peak_resident = result->peak_resident_candidates;
      r.predictor_calls.push_back(result->predictor_calls);
      r.cache_hits.push_back(result->cache_hits);
      const std::string chosen_plan =
          result->pareto_plans[result->chosen].ToString();
      if (results.empty() && rep == 0) {
        baseline_front = result->pareto_costs;
        baseline_chosen = result->chosen;
        baseline_plan = chosen_plan;
      }
      if (!CostsMatchBaseline(result->pareto_costs, baseline_front) ||
          result->chosen != baseline_chosen ||
          chosen_plan != baseline_plan) {
        r.matches_serial = false;
      }
      std::fprintf(stderr,
                   "%-15s rep %d: %7.3f s  %zu candidates  "
                   "%zu predictor calls  %zu cache hits%s\n",
                   config.name.c_str(), rep, r.rep_seconds.back(),
                   result->candidates_examined, result->predictor_calls,
                   result->cache_hits,
                   r.matches_serial ? "" : "  [MISMATCH vs serial]");
    }
    results.push_back(std::move(r));
  }

  const double serial_total = results[0].TotalSeconds();
  std::string json = "{\n";
  json += "  \"benchmark\": \"moqp_batched_pipeline\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  json +=
      "  \"setup\": \"three-table join over a two-cloud federation, VM "
      "counts 1-32 per site (Example 3.1 scale); DREAM window-growth "
      "estimator, scalar per-plan vs GEMM-backed batch costing; " +
      std::to_string(kReps) + " optimizations per config\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"reps\": " + std::to_string(kReps) + ",\n";
  json += "  \"candidates_examined\": " +
          std::to_string(results[0].candidates_examined) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    const double total = r.TotalSeconds();
    const double plans_per_sec =
        static_cast<double>(r.candidates_examined) * kReps / total;
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"config\": \"%s\", \"mode\": \"%s\", \"threads\": %zu, "
        "\"cache\": %s, \"total_seconds\": %.3f, \"plans_per_sec\": %.0f, "
        "\"speedup_vs_serial\": %.2f, \"pareto_size\": %zu, "
        "\"peak_resident_candidates\": %zu, "
        "\"matches_serial\": %s, \"predictor_calls\": [%zu, %zu, %zu], "
        "\"cache_hits\": [%zu, %zu, %zu]}%s\n",
        r.name.c_str(), r.mode.c_str(), r.threads,
        r.cache ? "true" : "false", total, plans_per_sec,
        serial_total / total, r.pareto_size, r.peak_resident,
        r.matches_serial ? "true" : "false", r.predictor_calls[0],
        r.predictor_calls[1], r.predictor_calls[2], r.cache_hits[0],
        r.cache_hits[1], r.cache_hits[2],
        i + 1 < results.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), out);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stream") {
      stream = true;
    } else {
      out_path = argv[i];
    }
  }
  return midas::Run(out_path, stream);
}
