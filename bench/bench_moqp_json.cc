// Machine-readable MOQP pipeline benchmark: times the end-to-end
// Multi-Objective Optimizer (enumerate → predict → Pareto → Algorithm 2)
// over an Example-3.1-scale QEP space under three configurations —
//
//   serial          threads=1, no cache (the seed pipeline);
//   parallel        threads=8 concurrent cost prediction + front extraction;
//   parallel_cache  threads=8 plus the feature-keyed prediction memo, so
//                   equivalent QEPs that share a feature vector are
//                   estimated once and repeated optimizations reuse the
//                   persistent cache;
//
// and emits BENCH_moqp.json so the perf trajectory is tracked across PRs.
// Run via scripts/bench_moqp.sh.
//
// The predictor runs DREAM's Algorithm 1 (window growth to the cap) per
// estimate, the per-QEP estimation cost §3 argues gets multiplied by the
// fleet of equivalent configurations. It reads the plan only through
// ExtractFeatures, so memoisation is sound.

#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/simulator.h"
#include "ires/features.h"
#include "ires/moo_optimizer.h"
#include "regression/dream.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Environment {
  Federation federation;
  Catalog catalog;
};

// Two-cloud federation with a three-table join so the enumerator emits
// join-order × compute-placement × VM-count variants at Example 3.1 scale.
Environment MakeEnvironment(int max_nodes) {
  Environment env;
  SiteConfig a;
  a.name = "cloud-A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = max_nodes;
  const SiteId site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = max_nodes;
  const SiteId site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 500000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 500000},
                {"pay", ColumnType::kString, 64.0, 500000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 40000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 40000},
                {"ref", ColumnType::kInt, 8.0, 4000}};
  env.catalog.AddTable(t2).CheckOK();
  TableDef t3;
  t3.name = "t3";
  t3.row_count = 4000;
  t3.columns = {{"ref", ColumnType::kInt, 8.0, 4000}};
  env.catalog.AddTable(t3).CheckOK();
  env.federation.PlaceTable("t1", site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", site_b, EngineKind::kPostgres).CheckOK();
  env.federation.PlaceTable("t3", site_a, EngineKind::kHive).CheckOK();
  return env;
}

QueryPlan ThreeTableJoin() {
  return QueryPlan(MakeJoin(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id",
                                     "id"),
                            MakeScan("t3"), "ref", "ref"));
}

// History at the MOQP feature arity (2 per site: data MiB + VM count).
TrainingSet MakeHistory(const Federation& federation, size_t n) {
  const std::vector<std::string> names = FeatureNames(federation);
  TrainingSet set(names, {"seconds", "dollars"});
  Rng rng(2019);
  for (size_t i = 0; i < n; ++i) {
    Vector x(names.size());
    for (size_t j = 0; j < x.size(); ++j) {
      // Alternate data-size-like and node-count-like magnitudes.
      x[j] = (j % 2 == 0) ? rng.Uniform(1, 200) : 1 + rng.Index(48);
    }
    double seconds = 5.0;
    double dollars = 0.01;
    for (size_t j = 0; j < x.size(); ++j) {
      seconds += (j % 2 == 0 ? 0.05 : -0.4) * x[j];
      dollars += (j % 2 == 0 ? 1e-4 : 2e-3) * x[j];
    }
    set.Add(x, {seconds + rng.Gaussian(0, 0.5),
                dollars + rng.Gaussian(0, 0.001)})
        .CheckOK();
  }
  return set;
}

struct ConfigResult {
  std::string name;
  std::vector<double> rep_seconds;
  size_t candidates_examined = 0;
  size_t pareto_size = 0;
  std::vector<size_t> predictor_calls;
  std::vector<size_t> cache_hits;

  double TotalSeconds() const {
    return std::accumulate(rep_seconds.begin(), rep_seconds.end(), 0.0);
  }
};

int Run(const char* out_path) {
  // Open the sink before benchmarking: a bad path should fail in
  // milliseconds, not after the timing runs.
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path);
      return 1;
    }
  }

  Environment env = MakeEnvironment(/*max_nodes=*/32);
  const QueryPlan logical = ThreeTableJoin();
  const TrainingSet history = MakeHistory(env.federation, 256);

  // Algorithm 1 with an unreachable R² target grows the window to the cap
  // on every estimate — the per-QEP estimation cost §3 multiplies by the
  // fleet size.
  DreamOptions dream_options;
  dream_options.r2_require = 2.0;
  dream_options.m_max = 256;
  dream_options.engine = DreamEngine::kIncremental;
  const auto predictor =
      [&](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Vector x,
                           ExtractFeatures(env.federation, plan));
    Dream dream(dream_options);
    MIDAS_ASSIGN_OR_RETURN(DreamEstimate estimate,
                           dream.EstimateCostValue(history));
    return estimate.Predict(x);
  };

  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  EnumeratorOptions enumerator;
  enumerator.node_counts.clear();
  for (int n = 1; n <= 32; ++n) enumerator.node_counts.push_back(n);
  enumerator.max_plans = 200000;

  constexpr int kReps = 3;
  constexpr size_t kThreads = 8;
  std::vector<ConfigResult> results;
  const struct {
    const char* name;
    size_t threads;
    bool cache;
  } configs[] = {
      {"serial", 1, false},
      {"parallel", kThreads, false},
      {"parallel_cache", kThreads, true},
  };
  for (const auto& config : configs) {
    MoqpOptions options;
    options.enumerator = enumerator;
    options.threads = config.threads;
    options.cache_predictions = config.cache;
    // One optimizer per configuration: the prediction cache persists
    // across its reps, so rep 1 is the cold run and reps 2+ are warm.
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    ConfigResult r;
    r.name = config.name;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = NowSeconds();
      auto result = optimizer.Optimize(logical, predictor, policy);
      result.status().CheckOK();
      r.rep_seconds.push_back(NowSeconds() - t0);
      r.candidates_examined = result->candidates_examined;
      r.pareto_size = result->pareto_costs.size();
      r.predictor_calls.push_back(result->predictor_calls);
      r.cache_hits.push_back(result->cache_hits);
      std::fprintf(stderr,
                   "%-15s rep %d: %7.3f s  %zu candidates  "
                   "%zu predictor calls  %zu cache hits\n",
                   config.name, rep, r.rep_seconds.back(),
                   result->candidates_examined, result->predictor_calls,
                   result->cache_hits);
    }
    results.push_back(std::move(r));
  }

  const double serial_total = results[0].TotalSeconds();
  std::string json = "{\n";
  json += "  \"benchmark\": \"moqp_parallel_pipeline\",\n";
  json +=
      "  \"setup\": \"three-table join over a two-cloud federation, VM "
      "counts 1-32 per site (Example 3.1 scale); DREAM window-growth "
      "estimator per predictor call; " +
      std::to_string(kReps) + " optimizations per config\",\n";
  json += "  \"threads\": " + std::to_string(kThreads) + ",\n";
  json += "  \"reps\": " + std::to_string(kReps) + ",\n";
  json += "  \"candidates_examined\": " +
          std::to_string(results[0].candidates_examined) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    const double total = r.TotalSeconds();
    const double plans_per_sec =
        static_cast<double>(r.candidates_examined) * kReps / total;
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"config\": \"%s\", \"total_seconds\": %.3f, "
        "\"plans_per_sec\": %.0f, \"speedup_vs_serial\": %.2f, "
        "\"pareto_size\": %zu, \"predictor_calls\": [%zu, %zu, %zu], "
        "\"cache_hits\": [%zu, %zu, %zu]}%s\n",
        r.name.c_str(), total, plans_per_sec, serial_total / total,
        r.pareto_size, r.predictor_calls[0], r.predictor_calls[1],
        r.predictor_calls[2], r.cache_hits[0], r.cache_hits[1],
        r.cache_hits[2], i + 1 < results.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), out);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  return midas::Run(argc > 1 ? argv[1] : nullptr);
}
