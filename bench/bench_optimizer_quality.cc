// Optimizer-quality comparison across the algorithms §2.4 lists as
// candidates for the Multi-Objective Optimizer module: NSGA-II, the
// authors' NSGA-G, MOEA/D, SPEA2, and the WSM weight-sweep baseline, on the ZDT
// suite. Reports hypervolume (higher is better), IGD against a dense
// sampling of the true front (lower is better), and wall time.

#include <chrono>
#include <cmath>
#include <iostream>

#include "common/text_table.h"
#include "optimizer/metrics.h"
#include "optimizer/pareto.h"
#include "optimizer/moead.h"
#include "optimizer/nsga2.h"
#include "optimizer/nsga_g.h"
#include "optimizer/spea2.h"
#include "optimizer/wsm.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Dense samples of each ZDT problem's true Pareto front.
std::vector<Vector> TrueFront(const std::string& name) {
  std::vector<Vector> front;
  for (double f1 = 0.0; f1 <= 1.0; f1 += 0.005) {
    if (name == "ZDT1") {
      front.push_back({f1, 1.0 - std::sqrt(f1)});
    } else if (name == "ZDT2") {
      front.push_back({f1, 1.0 - f1 * f1});
    } else if (name == "ZDT3") {
      const double f2 =
          1.0 - std::sqrt(f1) - f1 * std::sin(10.0 * M_PI * f1);
      // ZDT3's front is the non-dominated subset of this curve.
      front.push_back({f1, f2});
    }
  }
  if (name == "ZDT3") {
    std::vector<size_t> keep = ParetoFrontIndices(front);
    std::vector<Vector> filtered;
    for (size_t i : keep) filtered.push_back(front[i]);
    return filtered;
  }
  return front;
}

struct RunResult {
  std::vector<Vector> front;
  double seconds = 0.0;
};

template <typename Optimizer>
RunResult RunPareto(const Optimizer& optimizer, const MooProblem& problem) {
  RunResult out;
  const double t0 = NowSeconds();
  auto result = optimizer.Optimize(problem);
  out.seconds = NowSeconds() - t0;
  result.status().CheckOK();
  out.front = result->FrontObjectives();
  return out;
}

RunResult RunWsmSweep(const MooProblem& problem) {
  WsmGaOptions options;
  options.population_size = 100;
  options.generations = 100;
  WsmGeneticOptimizer wsm(options);
  RunResult out;
  const double t0 = NowSeconds();
  for (double w = 0.05; w < 1.0; w += 0.1) {  // 10 weight settings
    auto result = wsm.Optimize(problem, {w, 1.0 - w});
    result.status().CheckOK();
    out.front.push_back(result->objectives);
  }
  out.seconds = NowSeconds() - t0;
  return out;
}

}  // namespace
}  // namespace midas

int main() {
  using namespace midas;  // NOLINT: bench brevity

  std::cout << "Optimizer quality on the ZDT suite (pop 100, 100-150 "
               "generations, reference point (1.1, 6))\n\n";
  const Vector reference = {1.1, 6.0};

  for (const std::string name : {"ZDT1", "ZDT2", "ZDT3"}) {
    std::unique_ptr<MooProblem> problem;
    if (name == "ZDT1") problem = std::make_unique<Zdt1>(10);
    if (name == "ZDT2") problem = std::make_unique<Zdt2>(10);
    if (name == "ZDT3") problem = std::make_unique<Zdt3>(10);
    const std::vector<Vector> truth = TrueFront(name);

    Nsga2Options nsga2_options;
    nsga2_options.population_size = 100;
    nsga2_options.generations = 150;
    NsgaGOptions nsga_g_options;
    nsga_g_options.population_size = 100;
    nsga_g_options.generations = 150;
    MoeadOptions moead_options;
    moead_options.population_size = 100;
    moead_options.generations = 150;
    Spea2Options spea2_options;
    spea2_options.population_size = 100;
    spea2_options.archive_size = 100;
    spea2_options.generations = 150;

    struct Entry {
      std::string name;
      RunResult run;
    };
    std::vector<Entry> entries;
    entries.push_back({"NSGA-II", RunPareto(Nsga2(nsga2_options), *problem)});
    entries.push_back({"NSGA-G", RunPareto(NsgaG(nsga_g_options), *problem)});
    entries.push_back({"MOEA/D", RunPareto(Moead(moead_options), *problem)});
    entries.push_back({"SPEA2", RunPareto(Spea2(spea2_options), *problem)});
    entries.push_back({"WSM sweep (10 runs)", RunWsmSweep(*problem)});

    std::cout << name << "\n";
    TextTable table({"algorithm", "front size", "hypervolume", "IGD",
                     "time"});
    for (const Entry& entry : entries) {
      const double hv =
          Hypervolume2D(entry.run.front, reference).ValueOrDie();
      const double igd =
          InvertedGenerationalDistance(entry.run.front, truth).ValueOrDie();
      table.AddRow({entry.name, std::to_string(entry.run.front.size()),
                    FormatDouble(hv, 3), FormatDouble(igd, 3),
                    FormatDouble(entry.run.seconds * 1e3, 1) + " ms"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: the three Pareto methods are comparable (NSGA-G "
               "trades a little quality for cheaper selection); the WSM "
               "sweep collapses on the non-convex ZDT2 and the "
               "disconnected ZDT3 — why MIDAS uses Pareto optimizers.\n";
  return 0;
}
