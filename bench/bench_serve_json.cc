// Machine-readable serving benchmark: closed-loop multi-tenant load
// against the QueryService (bounded admission queue, DRR fairness,
// snapshot-pinned executor slots, serialized feedback path) at 1/8/64
// tenants, against the single-threaded serial RunQuery baseline. Each
// tenant is one closed-loop submitter: submit -> wait -> repeat, so
// per-tenant concurrency is 1 and the offered load scales with the
// tenant count. Reports sustained queries/sec plus p50/p95/p99 service
// latency (and p50 queue wait) from the service's streaming
// LatencyRecorders. Emits BENCH_serve.json; run via
// scripts/bench_serve.sh.
//
// Reading the numbers: the 1-tenant row is the apples-to-apples
// overhead check against the serial baseline (same tenant, same history
// growth) and should sit at ~1x. The 8/64-tenant rows can exceed serial
// even on a single-core host — closed-loop tenants each accrue 1/N of
// the feedback, so per-tenant DREAM windows stay shorter and estimates
// cheaper, while the serial baseline piles every observation into one
// scope. hardware_concurrency and slots are recorded so single-core
// rows are not misread as scaling results; with real cores the slots
// add genuine optimization overlap on top.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>
#include "bench_env_common.h"

#include "midas/medical.h"
#include "serve/query_service.h"

namespace midas {
namespace {

struct BenchConfig {
  double run_seconds = 1.0;
  size_t bootstrap_runs = 16;
  std::vector<size_t> tenant_counts = {1, 8, 64};
};

std::string TenantName(size_t t) { return "t" + std::to_string(t); }

QueryPolicy PolicyFor(uint64_t k) {
  const double corners[3] = {0.5, 0.7, 0.3};
  QueryPolicy policy;
  const double w = corners[k % 3];
  policy.weights = {w, 1.0 - w};
  return policy;
}

MidasSystem MakeSystem() {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasOptions options;
  options.seed = 2019;
  return MidasSystem(std::move(federation), std::move(catalog), options);
}

void Bootstrap(MidasSystem* system, const QueryPlan& query, size_t tenants,
               size_t runs) {
  for (size_t t = 0; t < tenants; ++t) {
    system->Bootstrap(TenantName(t), query, runs).CheckOK();
  }
}

double QuantileMs(const LatencyRecorder& recorder, double q) {
  auto v = recorder.ValueAtQuantile(q);
  return v.ok() ? *v / 1e6 : 0.0;
}

struct RunResult {
  double queries_per_sec = 0.0;
  uint64_t completed = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double queue_p50_ms = 0.0;
  uint64_t rejected = 0;
};

/// Baseline: the pre-service usage pattern — one thread calling
/// RunQuery in a closed loop (optimize, execute, record, repeat).
RunResult SerialBaseline(const BenchConfig& config) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  Bootstrap(&system, query, 1, config.bootstrap_runs);

  LatencyRecorder latency;
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  double elapsed = 0.0;
  uint64_t completed = 0;
  while (elapsed < config.run_seconds) {
    const auto before = clock::now();
    system.RunQuery(TenantName(0), query, PolicyFor(completed))
        .status()
        .CheckOK();
    const auto after = clock::now();
    latency.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(after - before)
            .count()));
    ++completed;
    elapsed = std::chrono::duration<double>(after - start).count();
  }
  RunResult result;
  result.completed = completed;
  result.queries_per_sec = static_cast<double>(completed) / elapsed;
  result.p50_ms = QuantileMs(latency, 0.5);
  result.p95_ms = QuantileMs(latency, 0.95);
  result.p99_ms = QuantileMs(latency, 0.99);
  return result;
}

/// Closed-loop service run: `tenants` submitter threads, each submitting
/// its own tenant's next request as soon as the previous one completes.
RunResult ServiceRun(const BenchConfig& config, size_t tenants,
                     size_t slots) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  Bootstrap(&system, query, tenants, config.bootstrap_runs);

  ServeOptions options;
  options.slots = slots;
  options.queue_capacity = 2 * tenants + 8;
  options.tenant_inflight_cap = 2;
  QueryService service(&system, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> submitters;
  submitters.reserve(tenants);
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  for (size_t t = 0; t < tenants; ++t) {
    submitters.emplace_back([&, t] {
      const std::string tenant = TenantName(t);
      uint64_t k = t;
      while (!stop.load(std::memory_order_acquire)) {
        auto submitted =
            service.Submit(tenant, QueryRequest{tenant, query, PolicyFor(k)});
        if (!submitted.ok()) {
          // Closed-loop submitters cannot overrun their own in-flight
          // cap, but count rejections anyway so misconfigurations show.
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        submitted->get().status().CheckOK();
        completed.fetch_add(1, std::memory_order_relaxed);
        ++k;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(config.run_seconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& s : submitters) s.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  service.Drain();

  const ServeStats stats = service.stats();
  RunResult result;
  result.completed = completed.load();
  result.queries_per_sec = static_cast<double>(result.completed) / elapsed;
  result.p50_ms = QuantileMs(stats.service_latency, 0.5);
  result.p95_ms = QuantileMs(stats.service_latency, 0.95);
  result.p99_ms = QuantileMs(stats.service_latency, 0.99);
  result.queue_p50_ms = QuantileMs(stats.queue_latency, 0.5);
  result.rejected = stats.admission.rejected_capacity +
                    stats.admission.rejected_tenant_cap + rejected.load();
  return result;
}

int Run(int argc, char** argv) {
  BenchConfig config;
  std::vector<std::FILE*> outs;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    std::FILE* f = std::fopen(argv[i], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[i]);
      return 1;
    }
    outs.push_back(f);
  }
  if (outs.empty()) outs.push_back(stdout);
  if (quick) {
    // CI smoke: the point is that the service sustains closed-loop
    // multi-tenant load at all, not the measurement.
    config.run_seconds = 0.2;
    config.tenant_counts = {1, 8};
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const size_t slots =
      hardware == 0 ? 1 : (hardware > 8 ? size_t{8} : size_t{hardware});

  const RunResult baseline = SerialBaseline(config);
  std::fprintf(stderr,
               "serial baseline: %8.1f queries/sec  p50 %.2fms p99 %.2fms\n",
               baseline.queries_per_sec, baseline.p50_ms, baseline.p99_ms);

  std::string json = "{\n";
  json += "  \"benchmark\": \"serve_multi_tenant\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  char header[512];
  std::snprintf(
      header, sizeof(header),
      "  \"hardware_concurrency\": %u,\n"
      "  \"slots\": %zu,\n"
      "  \"tenant_inflight_cap\": 2,\n"
      "  \"bootstrap_runs\": %zu,\n"
      "  \"run_seconds\": %.2f,\n"
      "  \"quick\": %s,\n"
      "  \"unit\": \"queries_per_sec\",\n"
      "  \"serial_baseline\": {\"queries_per_sec\": %.1f, "
      "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f},\n",
      hardware, slots, config.bootstrap_runs, config.run_seconds,
      quick ? "true" : "false", baseline.queries_per_sec, baseline.p50_ms,
      baseline.p95_ms, baseline.p99_ms);
  json += header;
  json += "  \"results\": [\n";
  for (size_t i = 0; i < config.tenant_counts.size(); ++i) {
    const size_t tenants = config.tenant_counts[i];
    const RunResult r = ServiceRun(config, tenants, slots);
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"tenants\": %zu, \"queries_per_sec\": %.1f, "
        "\"vs_serial_baseline\": %.2f, \"completed\": %llu, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"queue_p50_ms\": %.3f, \"rejected\": %llu}%s\n",
        tenants, r.queries_per_sec,
        r.queries_per_sec / baseline.queries_per_sec,
        static_cast<unsigned long long>(r.completed), r.p50_ms, r.p95_ms,
        r.p99_ms, r.queue_p50_ms,
        static_cast<unsigned long long>(r.rejected),
        i + 1 < config.tenant_counts.size() ? "," : "");
    json += row;
    std::fprintf(stderr,
                 "%3zu tenants: %8.1f queries/sec (%.2fx serial)  "
                 "p50 %.2fms p95 %.2fms p99 %.2fms  queue p50 %.2fms\n",
                 tenants, r.queries_per_sec,
                 r.queries_per_sec / baseline.queries_per_sec, r.p50_ms,
                 r.p95_ms, r.p99_ms, r.queue_p50_ms);
  }
  json += "  ]\n}\n";

  for (std::FILE* out : outs) {
    std::fputs(json.c_str(), out);
    if (out != stdout) std::fclose(out);
  }
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) { return midas::Run(argc, argv); }
