// Sharded streaming MOQP benchmark: partitions a >10^6-plan enumeration
// (3-table chain join over a 3-cloud federation, VM counts 1-44 per
// site) into 1/2/4/8 disjoint shards and times the whole
// enumerate -> batched-cost -> Pareto-fold -> merge pipeline at each
// shard count. Every sharded run is cross-checked bitwise against the
// serial single-stream front (matches_serial) and the process exits
// nonzero on any mismatch, so the benchmark doubles as a correctness
// gate. Writes a text report (argv[1]) and machine-readable JSON
// (argv[2], written by scripts/bench_shard.sh to BENCH_shard.json);
// `--quick` shrinks the fleet to ~10^5 plans for CI. The host's
// hardware_concurrency is recorded alongside the timings: on a
// single-core host the shard counts time the partition/merge overhead,
// not parallel speedup.

#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>
#include "bench_env_common.h"

#include "common/statistics.h"
#include "common/text_table.h"
#include "ires/moo_optimizer.h"
#include "query/enumerator.h"

namespace midas {
namespace {

struct FederationEnv {
  Federation federation;
  Catalog catalog;
};

// Three single-engine clouds, one table each: the chain join's plan
// space is 4 join orders x 3 computes x node_counts^3 picks.
FederationEnv MakeFederationEnv(int max_nodes) {
  FederationEnv env;
  const struct {
    const char* name;
    EngineKind engine;
    ProviderKind provider;
    const char* node;
  } sites[] = {
      {"cloud-A", EngineKind::kHive, ProviderKind::kAmazon, "a1.xlarge"},
      {"cloud-B", EngineKind::kPostgres, ProviderKind::kMicrosoft, "B2S"},
      {"cloud-C", EngineKind::kSpark, ProviderKind::kAmazon, "m4.large"},
  };
  std::vector<SiteId> ids;
  for (const auto& s : sites) {
    SiteConfig config;
    config.name = s.name;
    config.engines = {s.engine};
    config.node_type = {s.provider, s.node, 4, 8.0, 0.0, 0.02};
    config.max_nodes = max_nodes;
    ids.push_back(env.federation.AddSite(config).ValueOrDie());
  }
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      env.federation.network().SetSymmetricLink(ids[i], ids[j], wan)
          .CheckOK();
    }
  }

  const struct {
    const char* name;
    size_t rows;
  } tables[] = {{"t1", 500000}, {"t2", 40000}, {"t3", 8000}};
  for (size_t i = 0; i < 3; ++i) {
    TableDef def;
    def.name = tables[i].name;
    def.row_count = tables[i].rows;
    def.columns = {{"id", ColumnType::kInt, 8.0, tables[i].rows}};
    env.catalog.AddTable(def).CheckOK();
    env.federation.PlaceTable(tables[i].name, ids[i], sites[i].engine)
        .CheckOK();
  }
  return env;
}

QueryPlan ChainJoin() {
  return QueryPlan(MakeJoin(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id",
                                     "id"),
                            MakeScan("t3"), "id", "id"));
}

// Cheap pure-linear batch predictor with alternating signs so the front
// is a genuine trade-off: timings stay dominated by the sharded
// enumerate/fold/merge machinery under comparison.
MultiObjectiveOptimizer::BatchCostPredictor LinearBatchPredictor() {
  return [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 2, 0.0);
    for (size_t r = 0; r < features.rows(); ++r) {
      double seconds = 100.0;
      double dollars = 0.05;
      for (size_t c = 0; c < features.cols(); ++c) {
        seconds += (c % 2 == 0 ? 0.05 : -1.5) * features(r, c);
        dollars += (c % 2 == 0 ? 1e-4 : 2e-3) * features(r, c);
      }
      (*costs)(r, 0) = seconds;
      (*costs)(r, 1) = dollars;
    }
    return Status::OK();
  };
}

struct ShardRow {
  size_t shards = 0;
  double total_seconds = 0.0;
  size_t candidates = 0;
  size_t peak_resident = 0;
  size_t pareto_size = 0;
  double speedup_vs_1shard = 0.0;
  bool matches_serial = true;
  std::vector<MoqpShardStats> per_shard;
};

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  using namespace midas;  // NOLINT: bench brevity

  bool quick = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      paths.push_back(argv[i]);
    }
  }

  // Open the sinks before the timing runs: a bad path should fail in
  // milliseconds, not after the million-plan sweep.
  std::ofstream file;
  if (!paths.empty()) {
    file.open(paths[0]);
    if (!file) {
      std::cerr << "cannot open " << paths[0] << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = paths.empty() ? std::cout : file;

  // Full: VM counts 1-44 per site -> 4 x 3 x 44^3 = 1,022,208 plans.
  // Quick: 1-22 -> 4 x 3 x 22^3 = 127,776 plans.
  const int max_nodes = quick ? 22 : 44;
  FederationEnv env = MakeFederationEnv(max_nodes);
  const QueryPlan logical = ChainJoin();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  const auto predictor = LinearBatchPredictor();

  EnumeratorOptions enumerator;
  enumerator.node_counts.clear();
  for (int n = 1; n <= max_nodes; ++n) enumerator.node_counts.push_back(n);
  enumerator.max_plans = 2000000;

  std::vector<Vector> baseline_front;
  size_t baseline_chosen = 0;
  size_t baseline_candidates = 0;

  std::vector<ShardRow> rows;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    MoqpOptions options;
    options.enumerator = enumerator;
    options.shards = shards;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    ShardRow row;
    row.shards = shards;
    const double t0 = MonotonicSeconds();
    StatusOr<MoqpResult> result =
        optimizer.OptimizeStreaming(logical, predictor, policy);
    result.status().CheckOK();
    row.total_seconds = MonotonicSeconds() - t0;
    row.candidates = result->candidates_examined;
    row.peak_resident = result->peak_resident_candidates;
    row.pareto_size = result->pareto_costs.size();
    row.per_shard = result->shard_stats;
    if (shards == 1) {
      baseline_front = result->pareto_costs;
      baseline_chosen = result->chosen;
      baseline_candidates = result->candidates_examined;
    }
    row.matches_serial = result->pareto_costs == baseline_front &&
                         result->chosen == baseline_chosen &&
                         result->candidates_examined == baseline_candidates;
    row.speedup_vs_1shard = row.total_seconds > 0.0
                                ? rows.empty()
                                      ? 1.0
                                      : rows.front().total_seconds /
                                            row.total_seconds
                                : 0.0;
    rows.push_back(std::move(row));
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  out << "Sharded streaming MOQP pipeline (" << rows.front().candidates
      << " candidates, 3-table chain join over 3 clouds, VM counts 1-"
      << max_nodes << ", hardware_concurrency " << hardware << ")\n";
  TextTable table({"shards", "total", "plans/sec", "speedup", "peak resident",
                   "front", "matches serial"});
  bool all_match = true;
  for (const ShardRow& row : rows) {
    all_match = all_match && row.matches_serial;
    table.AddRow(
        {std::to_string(row.shards),
         FormatDouble(row.total_seconds * 1e3, 1) + " ms",
         FormatDouble(static_cast<double>(row.candidates) / row.total_seconds,
                      0),
         FormatDouble(row.speedup_vs_1shard, 2) + "x",
         std::to_string(row.peak_resident), std::to_string(row.pareto_size),
         row.matches_serial ? "yes" : "NO"});
  }
  table.Print(out);
  out << "\nReading: each shard owns whole strata of the plan-space grid "
         "and runs the full enumerate/cost/fold pipeline; the shard "
         "archives are tree-merged and re-sequenced, so the front is "
         "byte-for-byte the serial one at every shard count. Speedup "
         "tracks hardware_concurrency — on a single-core host the rows "
         "time the partition/merge overhead instead.\n";

  if (paths.size() > 1) {
    std::ofstream json(paths[1]);
    if (!json) {
      std::cerr << "cannot open " << paths[1] << " for writing\n";
      return 1;
    }
    json << "{\n  \"benchmark\": \"moqp_sharded_streaming\",\n";
    json << "  \"git_commit\": \"" << GitCommitOrUnknown() << "\",\n";
    json << "  \"setup\": \"3-table chain join over a 3-cloud federation, "
            "VM counts 1-"
         << max_nodes
         << " per site; linear batch predictor; sharded OptimizeStreaming "
            "vs the serial single stream\",\n";
    json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    json << "  \"hardware_concurrency\": " << hardware << ",\n";
    json << "  \"candidates_examined\": " << rows.front().candidates
         << ",\n";
    json << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const ShardRow& row = rows[i];
      json << "    {\"shards\": " << row.shards
           << ", \"total_seconds\": " << FormatDouble(row.total_seconds, 4)
           << ", \"plans_per_sec\": "
           << FormatDouble(
                  static_cast<double>(row.candidates) / row.total_seconds, 0)
           << ", \"speedup_vs_1shard\": "
           << FormatDouble(row.speedup_vs_1shard, 3)
           << ", \"peak_resident_candidates\": " << row.peak_resident
           << ", \"pareto_size\": " << row.pareto_size
           << ", \"matches_serial\": "
           << (row.matches_serial ? "true" : "false")
           << ", \"shard_stats\": [";
      for (size_t s = 0; s < row.per_shard.size(); ++s) {
        const MoqpShardStats& stats = row.per_shard[s];
        json << (s == 0 ? "" : ", ") << "{\"shard\": " << stats.shard
             << ", \"candidates\": " << stats.candidates_examined
             << ", \"front\": " << stats.front_size
             << ", \"plans_per_sec\": "
             << FormatDouble(stats.plans_per_sec, 0) << "}";
      }
      json << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
  }

  if (!all_match) {
    std::cerr << "FAIL: sharded front diverged from the serial stream\n";
    return 1;
  }
  return 0;
}
