// Machine-readable SIMD kernel benchmark: times the hot kernels behind
// the GEMM/prediction stack (Dot, Gram, blocked GEMM, DreamEstimate batch
// prediction) twice — once with the runtime-dispatched vector tier and
// once with the scalar tier pinned via simd::SetForceScalar — and emits
// BENCH_simd.json so the per-kernel speedup of the active ISA is tracked
// across PRs. The dispatched tier name and hardware_concurrency are
// recorded alongside the rows: on a force-scalar build (or a host with no
// vector tier) both columns run the same scalar kernels and the speedup
// column reads ~1.0 by construction. Run via scripts/bench_simd.sh.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_env_common.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "regression/dream.h"

namespace midas {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Nanoseconds per call, adaptively iterated: keep running until the total
// wall time passes min_total so the fast kernels get stable statistics.
template <typename Fn>
double TimeNs(const Fn& fn, double min_total = 0.2) {
  fn();  // warm up (page in buffers, settle dispatch)
  size_t iters = 1;
  for (;;) {
    const double start = NowSeconds();
    for (size_t i = 0; i < iters; ++i) fn();
    const double elapsed = NowSeconds() - start;
    if (elapsed >= min_total || iters >= (size_t{1} << 30)) {
      return elapsed * 1e9 / static_cast<double>(iters);
    }
    const double target = elapsed > 0.0 ? min_total / elapsed * 1.25 : 2.0;
    iters = static_cast<size_t>(static_cast<double>(iters) * target) + 1;
  }
}

struct KernelRow {
  std::string kernel;
  std::string size;
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
};

// Times fn under the pinned scalar tier and under the dispatched tier.
template <typename Fn>
KernelRow Measure(std::string kernel, std::string size, const Fn& fn) {
  KernelRow row;
  row.kernel = std::move(kernel);
  row.size = std::move(size);
  simd::SetForceScalar(true);
  row.scalar_ns = TimeNs(fn);
  simd::SetForceScalar(false);
  row.simd_ns = TimeNs(fn);
  return row;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Uniform(-1, 1);
  }
  return m;
}

TrainingSet MakeHistory(size_t n) {
  TrainingSet set({"x1", "x2", "x3", "x4"}, {"seconds", "dollars"});
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 100);
    const double b = rng.Uniform(0, 100);
    const double c = 1 + rng.Index(8);
    const double d = 1 + rng.Index(8);
    set.Add({a, b, c, d}, {1 + 0.1 * a + 0.2 * b + c + rng.Gaussian(0, 1),
                           0.01 * a + rng.Gaussian(0, 0.1) + 2})
        .CheckOK();
  }
  return set;
}

int Run(const char* out_path) {
  std::vector<KernelRow> rows;

  {
    const size_t n = 16384;
    Rng rng(7);
    Vector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-1, 1);
      b[i] = rng.Uniform(-1, 1);
    }
    rows.push_back(Measure("dot", "n=16384", [&]() {
      double d = Dot(a, b);
      asm volatile("" : : "g"(d) : "memory");
    }));
  }

  {
    const Matrix x = RandomMatrix(1024, 64, 11);
    rows.push_back(Measure("gram", "1024x64", [&]() {
      Matrix g = x.Gram();
      asm volatile("" : : "g"(g.RowData(0)) : "memory");
    }));
  }

  {
    const Matrix a = RandomMatrix(256, 256, 21);
    const Matrix b = RandomMatrix(256, 256, 22);
    Matrix out;
    rows.push_back(Measure("gemm", "256x256x256", [&]() {
      a.MultiplyInto(b, &out).CheckOK();
      asm volatile("" : : "g"(out.RowData(0)) : "memory");
    }));
  }

  {
    TrainingSet history = MakeHistory(64);
    Dream dream;
    DreamEstimate estimate = dream.EstimateCostValue(history).ValueOrDie();
    const Matrix x = RandomMatrix(4096, 4, 31);
    Matrix coeffs, out;
    rows.push_back(Measure("dream_predict_batch", "4096x4 -> 2 metrics",
                           [&]() {
                             estimate.PredictBatchInto(x, &coeffs, &out)
                                 .CheckOK();
                             asm volatile("" : : "g"(out.RowData(0))
                                          : "memory");
                           }));
  }

  std::string json = "{\n";
  json += "  \"benchmark\": \"simd_kernel_dispatch\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  json += "  \"simd_tier\": \"" +
          std::string(SimdTierName(simd::ActiveTier())) + "\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"unit\": \"ns_per_call\",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"size\": \"%s\", "
                  "\"scalar_ns\": %.1f, \"simd_ns\": %.1f, "
                  "\"speedup\": %.2f}%s\n",
                  r.kernel.c_str(), r.size.c_str(), r.scalar_ns, r.simd_ns,
                  r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0,
                  i + 1 < rows.size() ? "," : "");
    json += buf;
    std::printf("%-20s %-22s scalar %10.1f ns   simd %10.1f ns   x%.2f\n",
                r.kernel.c_str(), r.size.c_str(), r.scalar_ns, r.simd_ns,
                r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0);
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output.json>\n", argv[0]);
    return 1;
  }
  std::printf("dispatched SIMD tier: %s\n",
              midas::SimdTierName(midas::simd::ActiveTier()));
  return midas::Run(argv[1]);
}
