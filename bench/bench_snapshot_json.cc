// Machine-readable snapshot-read-path benchmark: measures prediction
// throughput when readers pin immutable EstimatorSnapshots while a live
// writer keeps publishing feedback epochs, at 1/4/16 reader threads,
// against the serial live-path baseline (no writer, mutable history).
// Emits BENCH_snapshot.json; run via scripts/bench_snapshot.sh.
//
// Readers re-pin every kPinEvery predictions — the per-optimization
// pinning pattern RunQuery uses — so the numbers include the Acquire cost
// and the refit a fresh epoch forces, not just warm memo hits. On a
// single-core container the reader counts measure oversubscription safety
// rather than parallel speedup; hardware_concurrency is recorded so
// consumers can tell the regimes apart.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>
#include "bench_env_common.h"

#include "common/random.h"
#include "ires/modelling.h"

namespace midas {
namespace {

constexpr size_t kSeedObservations = 256;
constexpr size_t kPinEvery = 64;
constexpr double kRunSeconds = 0.4;

void SeedHistory(Modelling* modelling, size_t n, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 100);
    const double b = rng.Uniform(0, 100);
    const double c = 1 + rng.Index(8);
    const double d = 1 + rng.Index(8);
    Observation obs;
    obs.timestamp = static_cast<int64_t>(i);
    obs.features = {a, b, c, d};
    obs.costs = {1 + 0.1 * a + 0.2 * b + c + rng.Gaussian(0, 1),
                 2 + 0.01 * a + rng.Gaussian(0, 0.1)};
    modelling->Record("q", std::move(obs)).CheckOK();
  }
}

Vector Probe(Rng* rng) {
  return {rng->Uniform(0, 100), rng->Uniform(0, 100),
          static_cast<double>(1 + rng->Index(8)),
          static_cast<double>(1 + rng->Index(8))};
}

/// Serial baseline: the pre-snapshot usage pattern — one thread, no
/// writer, every Predict reads the mutable live history directly.
double SerialLiveBaseline() {
  Modelling modelling({"x1", "x2", "x3", "x4"}, {"seconds", "dollars"});
  SeedHistory(&modelling, kSeedObservations, 1);
  const EstimatorConfig config = EstimatorConfig::DreamDefault();
  Rng rng(2);
  using clock = std::chrono::steady_clock;
  size_t predictions = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (elapsed < kRunSeconds) {
    modelling.Predict("q", Probe(&rng), config).status().CheckOK();
    ++predictions;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return static_cast<double>(predictions) / elapsed;
}

struct ReaderRunResult {
  double predictions_per_sec = 0.0;
  uint64_t epochs_advanced = 0;
};

/// Concurrent run: `n_readers` threads pin a snapshot per kPinEvery
/// predictions while one writer keeps recording feedback (publishing an
/// epoch per observation, which is what invalidates the scope's memo).
ReaderRunResult ConcurrentReaders(int n_readers) {
  Modelling modelling({"x1", "x2", "x3", "x4"}, {"seconds", "dollars"});
  SeedHistory(&modelling, kSeedObservations, 1);
  const EstimatorConfig config = EstimatorConfig::DreamDefault();
  const uint64_t start_epoch = modelling.publisher().epoch();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> predictions{0};

  std::thread writer([&modelling, &stop] {
    Rng rng(3);
    int64_t t = static_cast<int64_t>(kSeedObservations);
    while (!stop.load(std::memory_order_acquire)) {
      Observation obs;
      obs.timestamp = t++;
      obs.features = {rng.Uniform(0, 100), rng.Uniform(0, 100), 4.0, 4.0};
      obs.costs = {10.0 + rng.Gaussian(0, 1), 2.0};
      modelling.Record("q", std::move(obs)).CheckOK();
      // A paced feedback stream (executions are slow relative to
      // predictions); unthrottled, the writer would just serialize on
      // the publisher mutex and starve single-core readers.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  for (int r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + static_cast<uint64_t>(r));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = modelling.Snapshot();
        for (size_t i = 0; i < kPinEvery; ++i) {
          modelling.Predict(*snapshot, "q", Probe(&rng), config)
              .status()
              .CheckOK();
          ++local;
        }
      }
      predictions.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kRunSeconds * 1000)));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (std::thread& t : readers) t.join();

  ReaderRunResult result;
  result.predictions_per_sec =
      static_cast<double>(predictions.load()) / kRunSeconds;
  result.epochs_advanced = modelling.publisher().epoch() - start_epoch;
  return result;
}

int Run(const char* out_path) {
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path);
      return 1;
    }
  }

  const double baseline = SerialLiveBaseline();
  std::fprintf(stderr, "serial live baseline: %12.0f predictions/sec\n",
               baseline);

  const std::vector<int> reader_counts = {1, 4, 16};
  std::string json = "{\n";
  json += "  \"benchmark\": \"snapshot_reader_scaling\",\n";
  json += "  \"git_commit\": \"" + GitCommitOrUnknown() + "\",\n";
  char header[512];
  std::snprintf(header, sizeof(header),
                "  \"hardware_concurrency\": %u,\n"
                "  \"features\": 4,\n"
                "  \"metrics\": 2,\n"
                "  \"seed_observations\": %zu,\n"
                "  \"pin_every\": %zu,\n"
                "  \"estimator\": \"DREAM\",\n"
                "  \"unit\": \"predictions_per_sec\",\n"
                "  \"serial_live_baseline\": %.0f,\n",
                std::thread::hardware_concurrency(), kSeedObservations,
                kPinEvery, baseline);
  json += header;
  json += "  \"results\": [\n";
  for (size_t i = 0; i < reader_counts.size(); ++i) {
    const int readers = reader_counts[i];
    const ReaderRunResult r = ConcurrentReaders(readers);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"readers\": %d, \"predictions_per_sec\": %.0f, "
                  "\"vs_serial_baseline\": %.2f, "
                  "\"writer_epochs_advanced\": %llu}%s\n",
                  readers, r.predictions_per_sec,
                  r.predictions_per_sec / baseline,
                  static_cast<unsigned long long>(r.epochs_advanced),
                  i + 1 < reader_counts.size() ? "," : "");
    json += row;
    std::fprintf(stderr,
                 "%2d readers + live writer: %12.0f predictions/sec "
                 "(%.2fx serial), %llu epochs advanced\n",
                 readers, r.predictions_per_sec,
                 r.predictions_per_sec / baseline,
                 static_cast<unsigned long long>(r.epochs_advanced));
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), out);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace midas

int main(int argc, char** argv) {
  return midas::Run(argc > 1 ? argv[1] : nullptr);
}
