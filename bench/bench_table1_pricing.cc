// Reproduces Table 1: the instance pricing catalogue of the two providers,
// plus a derived view the paper discusses in §2.2 — the monetary cost of
// holding a reference query's resources on each instance type, showing that
// the cheaper provider depends on the demand.

#include <iostream>

#include "common/text_table.h"
#include "federation/instance.h"

int main() {
  using namespace midas;  // NOLINT: bench brevity

  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();

  std::cout << "Table 1 — Example of instances pricing\n";
  TextTable table(
      {"Provider", "Machine", "vCPU", "Memory (GiB)", "Storage (GiB)",
       "Price"});
  for (const InstanceType& t : catalog.types()) {
    table.AddRow({ProviderKindName(t.provider), t.name,
                  std::to_string(t.vcpu), FormatDouble(t.memory_gib, 0),
                  t.storage_gib > 0.0 ? FormatDouble(t.storage_gib, 0)
                                      : "EBS-Only",
                  "$" + FormatDouble(t.price_per_hour, 4) + "/hour"});
  }
  table.Print(std::cout);

  // §2.2's observation: "depending on the demand of a query, the monetary
  // cost is lower or higher at a specific provider". Price a 1-hour query
  // needing (vCPU, memory) on the cheapest qualifying shape per provider.
  std::cout << "\nDerived — cheapest qualifying instance per demand "
               "(1-hour query)\n";
  TextTable derived({"Demand (vCPU, GiB)", "Amazon pick", "Amazon $",
                     "Microsoft pick", "Microsoft $", "cheaper"});
  const std::vector<std::pair<int, double>> demands = {
      {1, 1}, {1, 2}, {2, 4}, {4, 8}, {4, 16}, {8, 16}, {8, 32}};
  for (const auto& [vcpu, mem] : demands) {
    auto amazon =
        catalog.CheapestSatisfying(vcpu, mem, ProviderKind::kAmazon);
    auto microsoft =
        catalog.CheapestSatisfying(vcpu, mem, ProviderKind::kMicrosoft);
    std::string winner = "-";
    if (amazon.ok() && microsoft.ok()) {
      winner = amazon->price_per_hour <= microsoft->price_per_hour
                   ? "Amazon"
                   : "Microsoft";
    } else if (amazon.ok()) {
      winner = "Amazon";
    } else if (microsoft.ok()) {
      winner = "Microsoft";
    }
    derived.AddRow(
        {"(" + std::to_string(vcpu) + ", " + FormatDouble(mem, 0) + ")",
         amazon.ok() ? amazon->name : "n/a",
         amazon.ok() ? FormatDouble(amazon->price_per_hour, 4) : "-",
         microsoft.ok() ? microsoft->name : "n/a",
         microsoft.ok() ? FormatDouble(microsoft->price_per_hour, 4) : "-",
         winner});
  }
  derived.Print(std::cout);
  std::cout << "\nNote: Amazon wins on compute-only demands (storage is "
               "EBS-extra); bundled-storage demands can favour Microsoft.\n";
  return 0;
}
