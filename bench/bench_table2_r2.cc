// Reproduces Table 2: the coefficient of determination of an MLR fitted on
// growing prefixes of a 2-variable cost dataset — first on the paper's
// literal 10 observations (the R² column must match the paper to 4 digits),
// then on a synthetic re-draw to show the shape is not an artefact of the
// specific numbers.

#include <iostream>

#include "common/text_table.h"
#include "midas/experiments.h"

int main() {
  using namespace midas;  // NOLINT: bench brevity

  std::cout << "Table 2 — Using MLR in different sizes of dataset\n";
  std::cout << "(paper's literal dataset; paper R² column: 0.7571 0.7705 "
               "0.8371 0.8788 0.8876 0.8751 0.8945)\n";
  auto rows = PaperTable2Rows();
  rows.status().CheckOK();
  TextTable table({"M", "R^2", "R^2 >= 0.8"});
  for (const R2Row& row : *rows) {
    table.AddRow({std::to_string(row.m), FormatDouble(row.r2, 4),
                  row.r2 >= 0.8 ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "Reading: with R2_require = 0.8, Algorithm 1 stops at M = 6 "
               "on this dataset.\n\n";

  std::cout << "Synthetic re-draw (c = 12 + 6 x1 + 3.2 x2 + N(0, 2))\n";
  auto synthetic = SyntheticR2Sweep(/*m_max=*/12, /*noise_sigma=*/2.0,
                                    /*seed=*/2019);
  synthetic.status().CheckOK();
  TextTable table2({"M", "R^2"});
  for (const R2Row& row : *synthetic) {
    table2.AddRow({std::to_string(row.m), FormatDouble(row.r2, 4)});
  }
  table2.Print(std::cout);
  std::cout << "Shape check: R² generally rises with M and crosses 0.8 "
               "within a few observations of the minimum window.\n";
  return 0;
}
