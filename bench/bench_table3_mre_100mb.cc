// Reproduces Table 3: mean relative error of the execution-time estimation
// on the 100 MiB TPC-H dataset (scale factor 0.1), queries 12/13/14/17,
// comparing DREAM against the IReS Best-ML baseline at windows N, 2N, 3N
// and unlimited history.

#include "bench/mre_table_common.h"

int main() {
  midas::bench::RunMreTable(
      "Table 3 — Comparison of mean relative error with 100MiB TPC-H "
      "dataset",
      /*scale_factor=*/0.1);
  return 0;
}
