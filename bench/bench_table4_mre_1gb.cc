// Reproduces Table 4: mean relative error of the execution-time estimation
// on the 1 GiB TPC-H dataset (scale factor 1.0), queries 12/13/14/17,
// comparing DREAM against the IReS Best-ML baseline at windows N, 2N, 3N
// and unlimited history.

#include "bench/mre_table_common.h"

int main() {
  midas::bench::RunMreTable(
      "Table 4 — Comparison of mean relative error with 1GiB TPC-H dataset",
      /*scale_factor=*/1.0);
  return 0;
}
