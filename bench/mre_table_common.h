#ifndef MIDAS_BENCH_MRE_TABLE_COMMON_H_
#define MIDAS_BENCH_MRE_TABLE_COMMON_H_

// Shared driver for the Table 3 / Table 4 benchmarks: runs the MRE
// experiment at a given scale factor over several seeds and prints the
// paper-format grid (queries x estimators).

#include <iostream>
#include <vector>

#include "common/text_table.h"
#include "midas/experiments.h"

namespace midas {
namespace bench {

inline void RunMreTable(const std::string& title, double scale_factor) {
  const std::vector<uint64_t> seeds = {2019, 4242, 7777};

  MreExperimentOptions base;
  base.scale_factor = scale_factor;
  base.warmup_runs = 30;
  base.eval_runs = 80;
  base.ApplyDefaults();

  std::vector<std::vector<double>> sum_time;   // [query][estimator]
  std::vector<double> sum_window;
  MreReport last;
  for (uint64_t seed : seeds) {
    MreExperimentOptions options = base;
    options.seed = seed;
    auto report = RunMreExperiment(options);
    report.status().CheckOK();
    if (sum_time.empty()) {
      sum_time.assign(report->query_ids.size(),
                      std::vector<double>(report->estimator_names.size(),
                                          0.0));
      sum_window.assign(report->query_ids.size(), 0.0);
    }
    for (size_t q = 0; q < report->query_ids.size(); ++q) {
      for (size_t e = 0; e < report->estimator_names.size(); ++e) {
        sum_time[q][e] += report->time_mre[q][e];
      }
      sum_window[q] += report->mean_dream_window[q];
    }
    last = std::move(report).ValueOrDie();
  }
  const double n = static_cast<double>(seeds.size());

  std::cout << title << "\n";
  std::cout << "(execution-time MRE, Eq. 15; mean of " << seeds.size()
            << " seeds x " << base.eval_runs
            << " evaluated executions per query; N = "
            << last.base_window << ")\n";
  std::vector<std::string> header = {"Query"};
  header.insert(header.end(), last.estimator_names.begin(),
                last.estimator_names.end());
  header.push_back("best");
  header.push_back("DREAM window");
  TextTable table(header);
  for (size_t q = 0; q < last.query_ids.size(); ++q) {
    std::vector<std::string> row = {std::to_string(last.query_ids[q])};
    size_t best = 0;
    for (size_t e = 0; e < last.estimator_names.size(); ++e) {
      if (sum_time[q][e] < sum_time[q][best]) best = e;
      row.push_back(FormatDouble(sum_time[q][e] / n, 3));
    }
    row.push_back(last.estimator_names[best]);
    row.push_back(FormatDouble(sum_window[q] / n, 1));
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nShape checks versus the paper:\n"
            << "  - DREAM's window stays small (about N-2N observations), "
               "matching \"around N\" (§4.3);\n"
            << "  - the full-history BML column is the worst or close to "
               "it on every query (expired information);\n"
            << "  - DREAM is best or within noise of the best fixed "
               "window at this scale, without knowing that window a "
               "priori.\n";
}

}  // namespace bench
}  // namespace midas

#endif  // MIDAS_BENCH_MRE_TABLE_COMMON_H_
