file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_r2require.dir/bench_ablation_r2require.cc.o"
  "CMakeFiles/bench_ablation_r2require.dir/bench_ablation_r2require.cc.o.d"
  "bench_ablation_r2require"
  "bench_ablation_r2require.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_r2require.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
