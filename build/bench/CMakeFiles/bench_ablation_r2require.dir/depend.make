# Empty dependencies file for bench_ablation_r2require.
# This may be replaced when dependencies are built.
