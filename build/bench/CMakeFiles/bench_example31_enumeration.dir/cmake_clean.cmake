file(REMOVE_RECURSE
  "CMakeFiles/bench_example31_enumeration.dir/bench_example31_enumeration.cc.o"
  "CMakeFiles/bench_example31_enumeration.dir/bench_example31_enumeration.cc.o.d"
  "bench_example31_enumeration"
  "bench_example31_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example31_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
