# Empty compiler generated dependencies file for bench_example31_enumeration.
# This may be replaced when dependencies are built.
