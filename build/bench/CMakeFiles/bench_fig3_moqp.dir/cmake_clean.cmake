file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_moqp.dir/bench_fig3_moqp.cc.o"
  "CMakeFiles/bench_fig3_moqp.dir/bench_fig3_moqp.cc.o.d"
  "bench_fig3_moqp"
  "bench_fig3_moqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_moqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
