file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_quality.dir/bench_optimizer_quality.cc.o"
  "CMakeFiles/bench_optimizer_quality.dir/bench_optimizer_quality.cc.o.d"
  "bench_optimizer_quality"
  "bench_optimizer_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
