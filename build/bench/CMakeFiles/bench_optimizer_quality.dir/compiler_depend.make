# Empty compiler generated dependencies file for bench_optimizer_quality.
# This may be replaced when dependencies are built.
