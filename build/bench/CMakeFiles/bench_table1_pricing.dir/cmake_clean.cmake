file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pricing.dir/bench_table1_pricing.cc.o"
  "CMakeFiles/bench_table1_pricing.dir/bench_table1_pricing.cc.o.d"
  "bench_table1_pricing"
  "bench_table1_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
