file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mre_100mb.dir/bench_table3_mre_100mb.cc.o"
  "CMakeFiles/bench_table3_mre_100mb.dir/bench_table3_mre_100mb.cc.o.d"
  "bench_table3_mre_100mb"
  "bench_table3_mre_100mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mre_100mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
