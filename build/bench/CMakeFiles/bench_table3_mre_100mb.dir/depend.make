# Empty dependencies file for bench_table3_mre_100mb.
# This may be replaced when dependencies are built.
