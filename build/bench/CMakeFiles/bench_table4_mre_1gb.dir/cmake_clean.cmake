file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mre_1gb.dir/bench_table4_mre_1gb.cc.o"
  "CMakeFiles/bench_table4_mre_1gb.dir/bench_table4_mre_1gb.cc.o.d"
  "bench_table4_mre_1gb"
  "bench_table4_mre_1gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mre_1gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
