# Empty compiler generated dependencies file for bench_table4_mre_1gb.
# This may be replaced when dependencies are built.
