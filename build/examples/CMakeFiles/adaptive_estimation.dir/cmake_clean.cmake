file(REMOVE_RECURSE
  "CMakeFiles/adaptive_estimation.dir/adaptive_estimation.cpp.o"
  "CMakeFiles/adaptive_estimation.dir/adaptive_estimation.cpp.o.d"
  "adaptive_estimation"
  "adaptive_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
