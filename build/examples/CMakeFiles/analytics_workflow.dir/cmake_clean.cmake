file(REMOVE_RECURSE
  "CMakeFiles/analytics_workflow.dir/analytics_workflow.cpp.o"
  "CMakeFiles/analytics_workflow.dir/analytics_workflow.cpp.o.d"
  "analytics_workflow"
  "analytics_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
