# Empty compiler generated dependencies file for analytics_workflow.
# This may be replaced when dependencies are built.
