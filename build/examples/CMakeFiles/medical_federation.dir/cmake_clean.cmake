file(REMOVE_RECURSE
  "CMakeFiles/medical_federation.dir/medical_federation.cpp.o"
  "CMakeFiles/medical_federation.dir/medical_federation.cpp.o.d"
  "medical_federation"
  "medical_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
