# Empty dependencies file for medical_federation.
# This may be replaced when dependencies are built.
