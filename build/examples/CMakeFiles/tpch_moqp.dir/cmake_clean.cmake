file(REMOVE_RECURSE
  "CMakeFiles/tpch_moqp.dir/tpch_moqp.cpp.o"
  "CMakeFiles/tpch_moqp.dir/tpch_moqp.cpp.o.d"
  "tpch_moqp"
  "tpch_moqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_moqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
