# Empty dependencies file for tpch_moqp.
# This may be replaced when dependencies are built.
