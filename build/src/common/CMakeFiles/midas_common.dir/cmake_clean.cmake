file(REMOVE_RECURSE
  "CMakeFiles/midas_common.dir/csv.cc.o"
  "CMakeFiles/midas_common.dir/csv.cc.o.d"
  "CMakeFiles/midas_common.dir/logging.cc.o"
  "CMakeFiles/midas_common.dir/logging.cc.o.d"
  "CMakeFiles/midas_common.dir/statistics.cc.o"
  "CMakeFiles/midas_common.dir/statistics.cc.o.d"
  "CMakeFiles/midas_common.dir/status.cc.o"
  "CMakeFiles/midas_common.dir/status.cc.o.d"
  "CMakeFiles/midas_common.dir/text_table.cc.o"
  "CMakeFiles/midas_common.dir/text_table.cc.o.d"
  "libmidas_common.a"
  "libmidas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
