file(REMOVE_RECURSE
  "libmidas_common.a"
)
