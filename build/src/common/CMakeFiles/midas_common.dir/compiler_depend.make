# Empty compiler generated dependencies file for midas_common.
# This may be replaced when dependencies are built.
