
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost_profile.cc" "src/engine/CMakeFiles/midas_engine.dir/cost_profile.cc.o" "gcc" "src/engine/CMakeFiles/midas_engine.dir/cost_profile.cc.o.d"
  "/root/repo/src/engine/simulator.cc" "src/engine/CMakeFiles/midas_engine.dir/simulator.cc.o" "gcc" "src/engine/CMakeFiles/midas_engine.dir/simulator.cc.o.d"
  "/root/repo/src/engine/variance.cc" "src/engine/CMakeFiles/midas_engine.dir/variance.cc.o" "gcc" "src/engine/CMakeFiles/midas_engine.dir/variance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/midas_query.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/midas_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
