file(REMOVE_RECURSE
  "CMakeFiles/midas_engine.dir/cost_profile.cc.o"
  "CMakeFiles/midas_engine.dir/cost_profile.cc.o.d"
  "CMakeFiles/midas_engine.dir/simulator.cc.o"
  "CMakeFiles/midas_engine.dir/simulator.cc.o.d"
  "CMakeFiles/midas_engine.dir/variance.cc.o"
  "CMakeFiles/midas_engine.dir/variance.cc.o.d"
  "libmidas_engine.a"
  "libmidas_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
