file(REMOVE_RECURSE
  "libmidas_engine.a"
)
