# Empty compiler generated dependencies file for midas_engine.
# This may be replaced when dependencies are built.
