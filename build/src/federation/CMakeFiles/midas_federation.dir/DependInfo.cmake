
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/engine_kind.cc" "src/federation/CMakeFiles/midas_federation.dir/engine_kind.cc.o" "gcc" "src/federation/CMakeFiles/midas_federation.dir/engine_kind.cc.o.d"
  "/root/repo/src/federation/federation.cc" "src/federation/CMakeFiles/midas_federation.dir/federation.cc.o" "gcc" "src/federation/CMakeFiles/midas_federation.dir/federation.cc.o.d"
  "/root/repo/src/federation/instance.cc" "src/federation/CMakeFiles/midas_federation.dir/instance.cc.o" "gcc" "src/federation/CMakeFiles/midas_federation.dir/instance.cc.o.d"
  "/root/repo/src/federation/network.cc" "src/federation/CMakeFiles/midas_federation.dir/network.cc.o" "gcc" "src/federation/CMakeFiles/midas_federation.dir/network.cc.o.d"
  "/root/repo/src/federation/site.cc" "src/federation/CMakeFiles/midas_federation.dir/site.cc.o" "gcc" "src/federation/CMakeFiles/midas_federation.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
