file(REMOVE_RECURSE
  "CMakeFiles/midas_federation.dir/engine_kind.cc.o"
  "CMakeFiles/midas_federation.dir/engine_kind.cc.o.d"
  "CMakeFiles/midas_federation.dir/federation.cc.o"
  "CMakeFiles/midas_federation.dir/federation.cc.o.d"
  "CMakeFiles/midas_federation.dir/instance.cc.o"
  "CMakeFiles/midas_federation.dir/instance.cc.o.d"
  "CMakeFiles/midas_federation.dir/network.cc.o"
  "CMakeFiles/midas_federation.dir/network.cc.o.d"
  "CMakeFiles/midas_federation.dir/site.cc.o"
  "CMakeFiles/midas_federation.dir/site.cc.o.d"
  "libmidas_federation.a"
  "libmidas_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
