file(REMOVE_RECURSE
  "libmidas_federation.a"
)
