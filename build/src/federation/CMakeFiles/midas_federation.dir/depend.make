# Empty dependencies file for midas_federation.
# This may be replaced when dependencies are built.
