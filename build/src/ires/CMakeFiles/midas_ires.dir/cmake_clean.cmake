file(REMOVE_RECURSE
  "CMakeFiles/midas_ires.dir/features.cc.o"
  "CMakeFiles/midas_ires.dir/features.cc.o.d"
  "CMakeFiles/midas_ires.dir/history.cc.o"
  "CMakeFiles/midas_ires.dir/history.cc.o.d"
  "CMakeFiles/midas_ires.dir/modelling.cc.o"
  "CMakeFiles/midas_ires.dir/modelling.cc.o.d"
  "CMakeFiles/midas_ires.dir/moo_optimizer.cc.o"
  "CMakeFiles/midas_ires.dir/moo_optimizer.cc.o.d"
  "CMakeFiles/midas_ires.dir/scheduler.cc.o"
  "CMakeFiles/midas_ires.dir/scheduler.cc.o.d"
  "CMakeFiles/midas_ires.dir/workflow.cc.o"
  "CMakeFiles/midas_ires.dir/workflow.cc.o.d"
  "libmidas_ires.a"
  "libmidas_ires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_ires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
