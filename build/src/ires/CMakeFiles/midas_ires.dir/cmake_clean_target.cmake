file(REMOVE_RECURSE
  "libmidas_ires.a"
)
