# Empty compiler generated dependencies file for midas_ires.
# This may be replaced when dependencies are built.
