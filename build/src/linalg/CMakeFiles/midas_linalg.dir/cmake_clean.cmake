file(REMOVE_RECURSE
  "CMakeFiles/midas_linalg.dir/decomposition.cc.o"
  "CMakeFiles/midas_linalg.dir/decomposition.cc.o.d"
  "CMakeFiles/midas_linalg.dir/matrix.cc.o"
  "CMakeFiles/midas_linalg.dir/matrix.cc.o.d"
  "libmidas_linalg.a"
  "libmidas_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
