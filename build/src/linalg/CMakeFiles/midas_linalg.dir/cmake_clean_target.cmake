file(REMOVE_RECURSE
  "libmidas_linalg.a"
)
