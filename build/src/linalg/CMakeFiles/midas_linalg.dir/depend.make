# Empty dependencies file for midas_linalg.
# This may be replaced when dependencies are built.
