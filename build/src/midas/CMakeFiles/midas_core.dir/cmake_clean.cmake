file(REMOVE_RECURSE
  "CMakeFiles/midas_core.dir/experiments.cc.o"
  "CMakeFiles/midas_core.dir/experiments.cc.o.d"
  "CMakeFiles/midas_core.dir/medgen.cc.o"
  "CMakeFiles/midas_core.dir/medgen.cc.o.d"
  "CMakeFiles/midas_core.dir/medical.cc.o"
  "CMakeFiles/midas_core.dir/medical.cc.o.d"
  "CMakeFiles/midas_core.dir/midas.cc.o"
  "CMakeFiles/midas_core.dir/midas.cc.o.d"
  "libmidas_core.a"
  "libmidas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
