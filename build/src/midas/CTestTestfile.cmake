# CMake generated Testfile for 
# Source directory: /root/repo/src/midas
# Build directory: /root/repo/build/src/midas
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
