
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bagging.cc" "src/ml/CMakeFiles/midas_ml.dir/bagging.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/bagging.cc.o.d"
  "/root/repo/src/ml/learner.cc" "src/ml/CMakeFiles/midas_ml.dir/learner.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/learner.cc.o.d"
  "/root/repo/src/ml/least_squares.cc" "src/ml/CMakeFiles/midas_ml.dir/least_squares.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/least_squares.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/midas_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/ml/CMakeFiles/midas_ml.dir/model_selection.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/model_selection.cc.o.d"
  "/root/repo/src/ml/regression_tree.cc" "src/ml/CMakeFiles/midas_ml.dir/regression_tree.cc.o" "gcc" "src/ml/CMakeFiles/midas_ml.dir/regression_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regression/CMakeFiles/midas_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/midas_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
