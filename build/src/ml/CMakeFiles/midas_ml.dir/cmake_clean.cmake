file(REMOVE_RECURSE
  "CMakeFiles/midas_ml.dir/bagging.cc.o"
  "CMakeFiles/midas_ml.dir/bagging.cc.o.d"
  "CMakeFiles/midas_ml.dir/learner.cc.o"
  "CMakeFiles/midas_ml.dir/learner.cc.o.d"
  "CMakeFiles/midas_ml.dir/least_squares.cc.o"
  "CMakeFiles/midas_ml.dir/least_squares.cc.o.d"
  "CMakeFiles/midas_ml.dir/mlp.cc.o"
  "CMakeFiles/midas_ml.dir/mlp.cc.o.d"
  "CMakeFiles/midas_ml.dir/model_selection.cc.o"
  "CMakeFiles/midas_ml.dir/model_selection.cc.o.d"
  "CMakeFiles/midas_ml.dir/regression_tree.cc.o"
  "CMakeFiles/midas_ml.dir/regression_tree.cc.o.d"
  "libmidas_ml.a"
  "libmidas_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
