file(REMOVE_RECURSE
  "libmidas_ml.a"
)
