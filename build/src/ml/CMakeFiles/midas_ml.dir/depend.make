# Empty dependencies file for midas_ml.
# This may be replaced when dependencies are built.
