
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/best_in_pareto.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/best_in_pareto.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/best_in_pareto.cc.o.d"
  "/root/repo/src/optimizer/configuration_problem.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/configuration_problem.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/configuration_problem.cc.o.d"
  "/root/repo/src/optimizer/genetic_operators.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/genetic_operators.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/genetic_operators.cc.o.d"
  "/root/repo/src/optimizer/metrics.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/metrics.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/metrics.cc.o.d"
  "/root/repo/src/optimizer/moead.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/moead.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/moead.cc.o.d"
  "/root/repo/src/optimizer/nsga2.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/nsga2.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/nsga2.cc.o.d"
  "/root/repo/src/optimizer/nsga_g.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/nsga_g.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/nsga_g.cc.o.d"
  "/root/repo/src/optimizer/pareto.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/pareto.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/pareto.cc.o.d"
  "/root/repo/src/optimizer/problem.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/problem.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/problem.cc.o.d"
  "/root/repo/src/optimizer/spea2.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/spea2.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/spea2.cc.o.d"
  "/root/repo/src/optimizer/wsm.cc" "src/optimizer/CMakeFiles/midas_optimizer.dir/wsm.cc.o" "gcc" "src/optimizer/CMakeFiles/midas_optimizer.dir/wsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/midas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
