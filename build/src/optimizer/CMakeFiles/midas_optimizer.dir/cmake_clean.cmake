file(REMOVE_RECURSE
  "CMakeFiles/midas_optimizer.dir/best_in_pareto.cc.o"
  "CMakeFiles/midas_optimizer.dir/best_in_pareto.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/configuration_problem.cc.o"
  "CMakeFiles/midas_optimizer.dir/configuration_problem.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/genetic_operators.cc.o"
  "CMakeFiles/midas_optimizer.dir/genetic_operators.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/metrics.cc.o"
  "CMakeFiles/midas_optimizer.dir/metrics.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/moead.cc.o"
  "CMakeFiles/midas_optimizer.dir/moead.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/nsga2.cc.o"
  "CMakeFiles/midas_optimizer.dir/nsga2.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/nsga_g.cc.o"
  "CMakeFiles/midas_optimizer.dir/nsga_g.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/pareto.cc.o"
  "CMakeFiles/midas_optimizer.dir/pareto.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/problem.cc.o"
  "CMakeFiles/midas_optimizer.dir/problem.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/spea2.cc.o"
  "CMakeFiles/midas_optimizer.dir/spea2.cc.o.d"
  "CMakeFiles/midas_optimizer.dir/wsm.cc.o"
  "CMakeFiles/midas_optimizer.dir/wsm.cc.o.d"
  "libmidas_optimizer.a"
  "libmidas_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
