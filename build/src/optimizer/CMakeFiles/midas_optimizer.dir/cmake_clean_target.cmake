file(REMOVE_RECURSE
  "libmidas_optimizer.a"
)
