# Empty dependencies file for midas_optimizer.
# This may be replaced when dependencies are built.
