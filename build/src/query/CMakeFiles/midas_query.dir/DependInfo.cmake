
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/enumerator.cc" "src/query/CMakeFiles/midas_query.dir/enumerator.cc.o" "gcc" "src/query/CMakeFiles/midas_query.dir/enumerator.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/query/CMakeFiles/midas_query.dir/plan.cc.o" "gcc" "src/query/CMakeFiles/midas_query.dir/plan.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/midas_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/midas_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/schema.cc" "src/query/CMakeFiles/midas_query.dir/schema.cc.o" "gcc" "src/query/CMakeFiles/midas_query.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/midas_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
