file(REMOVE_RECURSE
  "CMakeFiles/midas_query.dir/enumerator.cc.o"
  "CMakeFiles/midas_query.dir/enumerator.cc.o.d"
  "CMakeFiles/midas_query.dir/plan.cc.o"
  "CMakeFiles/midas_query.dir/plan.cc.o.d"
  "CMakeFiles/midas_query.dir/predicate.cc.o"
  "CMakeFiles/midas_query.dir/predicate.cc.o.d"
  "CMakeFiles/midas_query.dir/schema.cc.o"
  "CMakeFiles/midas_query.dir/schema.cc.o.d"
  "libmidas_query.a"
  "libmidas_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
