file(REMOVE_RECURSE
  "libmidas_query.a"
)
