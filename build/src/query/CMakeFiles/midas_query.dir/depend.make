# Empty dependencies file for midas_query.
# This may be replaced when dependencies are built.
