file(REMOVE_RECURSE
  "CMakeFiles/midas_regression.dir/dream.cc.o"
  "CMakeFiles/midas_regression.dir/dream.cc.o.d"
  "CMakeFiles/midas_regression.dir/ols.cc.o"
  "CMakeFiles/midas_regression.dir/ols.cc.o.d"
  "CMakeFiles/midas_regression.dir/training_set.cc.o"
  "CMakeFiles/midas_regression.dir/training_set.cc.o.d"
  "libmidas_regression.a"
  "libmidas_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
