file(REMOVE_RECURSE
  "libmidas_regression.a"
)
