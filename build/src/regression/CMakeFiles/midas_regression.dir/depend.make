# Empty dependencies file for midas_regression.
# This may be replaced when dependencies are built.
