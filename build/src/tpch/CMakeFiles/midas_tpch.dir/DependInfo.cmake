
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/dbgen.cc" "src/tpch/CMakeFiles/midas_tpch.dir/dbgen.cc.o" "gcc" "src/tpch/CMakeFiles/midas_tpch.dir/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/tpch/CMakeFiles/midas_tpch.dir/queries.cc.o" "gcc" "src/tpch/CMakeFiles/midas_tpch.dir/queries.cc.o.d"
  "/root/repo/src/tpch/tpch_schema.cc" "src/tpch/CMakeFiles/midas_tpch.dir/tpch_schema.cc.o" "gcc" "src/tpch/CMakeFiles/midas_tpch.dir/tpch_schema.cc.o.d"
  "/root/repo/src/tpch/workload.cc" "src/tpch/CMakeFiles/midas_tpch.dir/workload.cc.o" "gcc" "src/tpch/CMakeFiles/midas_tpch.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/midas_query.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/midas_federation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
