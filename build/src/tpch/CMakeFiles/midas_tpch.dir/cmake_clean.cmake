file(REMOVE_RECURSE
  "CMakeFiles/midas_tpch.dir/dbgen.cc.o"
  "CMakeFiles/midas_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/midas_tpch.dir/queries.cc.o"
  "CMakeFiles/midas_tpch.dir/queries.cc.o.d"
  "CMakeFiles/midas_tpch.dir/tpch_schema.cc.o"
  "CMakeFiles/midas_tpch.dir/tpch_schema.cc.o.d"
  "CMakeFiles/midas_tpch.dir/workload.cc.o"
  "CMakeFiles/midas_tpch.dir/workload.cc.o.d"
  "libmidas_tpch.a"
  "libmidas_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
