file(REMOVE_RECURSE
  "libmidas_tpch.a"
)
