# Empty dependencies file for midas_tpch.
# This may be replaced when dependencies are built.
