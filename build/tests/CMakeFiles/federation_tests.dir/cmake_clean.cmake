file(REMOVE_RECURSE
  "CMakeFiles/federation_tests.dir/federation/engine_kind_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/engine_kind_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/federation_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/federation_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/instance_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/instance_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/network_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/network_test.cc.o.d"
  "CMakeFiles/federation_tests.dir/federation/site_test.cc.o"
  "CMakeFiles/federation_tests.dir/federation/site_test.cc.o.d"
  "federation_tests"
  "federation_tests.pdb"
  "federation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
