# Empty dependencies file for federation_tests.
# This may be replaced when dependencies are built.
