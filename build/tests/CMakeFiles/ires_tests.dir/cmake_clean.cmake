file(REMOVE_RECURSE
  "CMakeFiles/ires_tests.dir/ires/features_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/features_test.cc.o.d"
  "CMakeFiles/ires_tests.dir/ires/history_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/history_test.cc.o.d"
  "CMakeFiles/ires_tests.dir/ires/modelling_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/modelling_test.cc.o.d"
  "CMakeFiles/ires_tests.dir/ires/moo_optimizer_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/moo_optimizer_test.cc.o.d"
  "CMakeFiles/ires_tests.dir/ires/scheduler_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/scheduler_test.cc.o.d"
  "CMakeFiles/ires_tests.dir/ires/workflow_test.cc.o"
  "CMakeFiles/ires_tests.dir/ires/workflow_test.cc.o.d"
  "ires_tests"
  "ires_tests.pdb"
  "ires_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ires_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
