# Empty compiler generated dependencies file for ires_tests.
# This may be replaced when dependencies are built.
