
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/midas/experiments_test.cc" "tests/CMakeFiles/midas_tests.dir/midas/experiments_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/midas/experiments_test.cc.o.d"
  "/root/repo/tests/midas/medgen_test.cc" "tests/CMakeFiles/midas_tests.dir/midas/medgen_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/midas/medgen_test.cc.o.d"
  "/root/repo/tests/midas/medical_test.cc" "tests/CMakeFiles/midas_tests.dir/midas/medical_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/midas/medical_test.cc.o.d"
  "/root/repo/tests/midas/midas_test.cc" "tests/CMakeFiles/midas_tests.dir/midas/midas_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/midas/midas_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/midas/CMakeFiles/midas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ires/CMakeFiles/midas_ires.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/midas_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/midas_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/midas_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/midas_query.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/midas_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/midas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/midas_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/midas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
