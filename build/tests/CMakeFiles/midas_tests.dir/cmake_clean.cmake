file(REMOVE_RECURSE
  "CMakeFiles/midas_tests.dir/midas/experiments_test.cc.o"
  "CMakeFiles/midas_tests.dir/midas/experiments_test.cc.o.d"
  "CMakeFiles/midas_tests.dir/midas/medgen_test.cc.o"
  "CMakeFiles/midas_tests.dir/midas/medgen_test.cc.o.d"
  "CMakeFiles/midas_tests.dir/midas/medical_test.cc.o"
  "CMakeFiles/midas_tests.dir/midas/medical_test.cc.o.d"
  "CMakeFiles/midas_tests.dir/midas/midas_test.cc.o"
  "CMakeFiles/midas_tests.dir/midas/midas_test.cc.o.d"
  "midas_tests"
  "midas_tests.pdb"
  "midas_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
