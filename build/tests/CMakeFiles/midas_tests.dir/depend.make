# Empty dependencies file for midas_tests.
# This may be replaced when dependencies are built.
