
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer/best_in_pareto_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/best_in_pareto_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/best_in_pareto_test.cc.o.d"
  "/root/repo/tests/optimizer/configuration_problem_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/configuration_problem_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/configuration_problem_test.cc.o.d"
  "/root/repo/tests/optimizer/genetic_operators_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/genetic_operators_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/genetic_operators_test.cc.o.d"
  "/root/repo/tests/optimizer/metrics_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/metrics_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/metrics_test.cc.o.d"
  "/root/repo/tests/optimizer/moead_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/moead_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/moead_test.cc.o.d"
  "/root/repo/tests/optimizer/nsga2_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/nsga2_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/nsga2_test.cc.o.d"
  "/root/repo/tests/optimizer/nsga_g_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/nsga_g_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/nsga_g_test.cc.o.d"
  "/root/repo/tests/optimizer/pareto_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/pareto_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/pareto_test.cc.o.d"
  "/root/repo/tests/optimizer/problem_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/problem_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/problem_test.cc.o.d"
  "/root/repo/tests/optimizer/selection_strategies_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/selection_strategies_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/selection_strategies_test.cc.o.d"
  "/root/repo/tests/optimizer/spea2_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/spea2_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/spea2_test.cc.o.d"
  "/root/repo/tests/optimizer/wsm_test.cc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/wsm_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_tests.dir/optimizer/wsm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/midas/CMakeFiles/midas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ires/CMakeFiles/midas_ires.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/midas_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/midas_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/midas_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/midas_query.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/midas_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/midas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/midas_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/midas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/midas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
