file(REMOVE_RECURSE
  "CMakeFiles/optimizer_tests.dir/optimizer/best_in_pareto_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/best_in_pareto_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/configuration_problem_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/configuration_problem_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/genetic_operators_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/genetic_operators_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/metrics_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/metrics_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/moead_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/moead_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/nsga2_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/nsga2_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/nsga_g_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/nsga_g_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/pareto_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/pareto_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/problem_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/problem_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/selection_strategies_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/selection_strategies_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/spea2_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/spea2_test.cc.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/wsm_test.cc.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/wsm_test.cc.o.d"
  "optimizer_tests"
  "optimizer_tests.pdb"
  "optimizer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
