file(REMOVE_RECURSE
  "CMakeFiles/query_tests.dir/query/enumerator_test.cc.o"
  "CMakeFiles/query_tests.dir/query/enumerator_test.cc.o.d"
  "CMakeFiles/query_tests.dir/query/plan_test.cc.o"
  "CMakeFiles/query_tests.dir/query/plan_test.cc.o.d"
  "CMakeFiles/query_tests.dir/query/predicate_test.cc.o"
  "CMakeFiles/query_tests.dir/query/predicate_test.cc.o.d"
  "CMakeFiles/query_tests.dir/query/schema_test.cc.o"
  "CMakeFiles/query_tests.dir/query/schema_test.cc.o.d"
  "query_tests"
  "query_tests.pdb"
  "query_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
