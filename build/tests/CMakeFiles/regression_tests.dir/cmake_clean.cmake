file(REMOVE_RECURSE
  "CMakeFiles/regression_tests.dir/regression/dream_test.cc.o"
  "CMakeFiles/regression_tests.dir/regression/dream_test.cc.o.d"
  "CMakeFiles/regression_tests.dir/regression/ols_test.cc.o"
  "CMakeFiles/regression_tests.dir/regression/ols_test.cc.o.d"
  "CMakeFiles/regression_tests.dir/regression/training_set_test.cc.o"
  "CMakeFiles/regression_tests.dir/regression/training_set_test.cc.o.d"
  "regression_tests"
  "regression_tests.pdb"
  "regression_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
