# Empty dependencies file for regression_tests.
# This may be replaced when dependencies are built.
