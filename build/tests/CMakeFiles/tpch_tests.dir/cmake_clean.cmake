file(REMOVE_RECURSE
  "CMakeFiles/tpch_tests.dir/tpch/dbgen_test.cc.o"
  "CMakeFiles/tpch_tests.dir/tpch/dbgen_test.cc.o.d"
  "CMakeFiles/tpch_tests.dir/tpch/queries_test.cc.o"
  "CMakeFiles/tpch_tests.dir/tpch/queries_test.cc.o.d"
  "CMakeFiles/tpch_tests.dir/tpch/tpch_schema_test.cc.o"
  "CMakeFiles/tpch_tests.dir/tpch/tpch_schema_test.cc.o.d"
  "CMakeFiles/tpch_tests.dir/tpch/workload_test.cc.o"
  "CMakeFiles/tpch_tests.dir/tpch/workload_test.cc.o.d"
  "tpch_tests"
  "tpch_tests.pdb"
  "tpch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
