# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/regression_tests[1]_include.cmake")
include("/root/repo/build/tests/ml_tests[1]_include.cmake")
include("/root/repo/build/tests/federation_tests[1]_include.cmake")
include("/root/repo/build/tests/query_tests[1]_include.cmake")
include("/root/repo/build/tests/engine_tests[1]_include.cmake")
include("/root/repo/build/tests/tpch_tests[1]_include.cmake")
include("/root/repo/build/tests/optimizer_tests[1]_include.cmake")
include("/root/repo/build/tests/ires_tests[1]_include.cmake")
include("/root/repo/build/tests/midas_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
