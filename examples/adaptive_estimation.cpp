// Adaptive estimation under drift: watch DREAM track a changing cloud
// while the full-history baseline goes stale. Runs a stream of Q12
// instances on a drifting two-cloud federation and prints, every few
// queries, the rolling relative error of both estimators plus the window
// DREAM chose.
//
//   ./examples/adaptive_estimation

#include <cmath>
#include <deque>
#include <iostream>

#include "common/text_table.h"
#include "engine/simulator.h"
#include "ires/features.h"
#include "ires/scheduler.h"
#include "query/enumerator.h"
#include "tpch/workload.h"

int main() {
  using namespace midas;  // NOLINT: example brevity

  // Federation with a pronounced load drift (one "day" = 50 queries).
  Federation federation;
  const InstanceCatalog instances = InstanceCatalog::PaperTable1();
  SiteConfig a;
  a.name = "cloud-A";
  a.provider = ProviderKind::kAmazon;
  a.engines = {EngineKind::kHive};
  a.node_type = instances.Find("a1.xlarge").ValueOrDie();
  a.max_nodes = 8;
  const SiteId site_a = federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.provider = ProviderKind::kMicrosoft;
  b.engines = {EngineKind::kPostgres};
  b.node_type = instances.Find("B2S").ValueOrDie();
  b.max_nodes = 8;
  const SiteId site_b = federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.egress_price_per_gib = 0.09;
  federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = 0.1;
  tpch::Workload workload(wl_opts);
  federation.PlaceTable("orders", site_b, EngineKind::kPostgres).CheckOK();
  federation.PlaceTable("lineitem", site_a, EngineKind::kHive).CheckOK();

  SimulatorOptions sim_opts;
  sim_opts.variance.drift_amplitude = 0.6;
  sim_opts.variance.drift_period = 50.0;
  ExecutionSimulator simulator(&federation, &workload.catalog(), sim_opts);
  Modelling modelling(FeatureNames(federation), StandardMetricNames());
  Scheduler scheduler(&federation, &simulator, &modelling);
  PlanEnumerator enumerator(&federation, &workload.catalog());
  Rng rng(2019);

  EstimatorConfig dream = EstimatorConfig::DreamDefault();
  dream.dream.m_max = 2 * modelling.BaseWindow();
  const EstimatorConfig bml_all = EstimatorConfig::Bml(WindowPolicy::kAll);

  const int kWarmup = 15;
  const int kStream = 120;
  std::deque<double> dream_errors, bml_errors;
  double dream_sum = 0.0, bml_sum = 0.0;
  int scored = 0;

  std::cout << "Streaming Q12 instances through a drifting federation "
               "(load swings ±60% every 50 queries)\n\n";
  TextTable table({"query #", "load phase", "DREAM window",
                   "DREAM err (last 15)", "BML-all err (last 15)"});

  for (int i = 0; i < kWarmup + kStream; ++i) {
    auto item = workload.NextForQuery(12).ValueOrDie();
    auto plans = enumerator.EnumeratePhysical(item.logical).ValueOrDie();
    const QueryPlan& plan = plans[rng.Index(plans.size())];

    size_t window = 0;
    double dream_pred = 0.0, bml_pred = 0.0;
    bool have_predictions = false;
    if (i >= kWarmup) {
      Vector x = ExtractFeatures(federation, plan).ValueOrDie();
      auto diag = modelling.DreamDiagnostics("q12", dream.dream);
      if (diag.ok()) window = diag->window_size;
      auto pd = modelling.Predict("q12", x, dream);
      auto pb = modelling.Predict("q12", x, bml_all);
      if (pd.ok() && pb.ok()) {
        dream_pred = (*pd)[0];
        bml_pred = (*pb)[0];
        have_predictions = true;
      }
    }

    Measurement m = scheduler.ExecuteAndRecord("q12", plan).ValueOrDie();

    if (have_predictions) {
      const double de = std::abs(dream_pred - m.seconds) / m.seconds;
      const double be = std::abs(bml_pred - m.seconds) / m.seconds;
      dream_errors.push_back(de);
      bml_errors.push_back(be);
      dream_sum += de;
      bml_sum += be;
      ++scored;
      if (dream_errors.size() > 15) {
        dream_sum -= dream_errors.front();
        bml_sum -= bml_errors.front();
        dream_errors.pop_front();
        bml_errors.pop_front();
      }
      if ((i - kWarmup) % 15 == 14) {
        const double phase =
            std::sin(2 * M_PI * static_cast<double>(i) / 50.0);
        const double n = static_cast<double>(dream_errors.size());
        table.AddRow({std::to_string(i - kWarmup + 1),
                      phase > 0.3 ? "busy" : (phase < -0.3 ? "quiet" : "~"),
                      std::to_string(window),
                      FormatDouble(dream_sum / n, 3),
                      FormatDouble(bml_sum / n, 3)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nDREAM keeps re-fitting on a fresh window (about " << "2N"
            << " observations), so its error stays flat across load "
               "phases; the full-history model mixes expired load regimes "
               "and degrades. Scored " << scored << " predictions.\n";
  return 0;
}
