// Multi-engine analytics workflow: IReS' original use case beyond single
// queries. A five-step medical analytics pipeline (ingest → clean →
// feature-extract → {cohort-report, model-train}) where every step can run
// on Hive, PostgreSQL or Spark. The optimizer explores engine assignments,
// prints the time/money Pareto set, and shows how transfer penalties make
// engine hopping worth avoiding.
//
//   ./examples/analytics_workflow

#include <iostream>

#include "common/text_table.h"
#include "engine/cost_profile.h"
#include "ires/workflow.h"

int main() {
  using namespace midas;  // NOLINT: example brevity

  const std::vector<EngineKind> all = {
      EngineKind::kHive, EngineKind::kPostgres, EngineKind::kSpark};

  WorkflowDag dag;
  const size_t ingest = dag.AddOperator("ingest", {}, all).ValueOrDie();
  const size_t clean = dag.AddOperator("clean", {ingest}, all).ValueOrDie();
  const size_t features =
      dag.AddOperator("feature-extract", {clean}, all).ValueOrDie();
  dag.AddOperator("cohort-report", {features},
                  {EngineKind::kPostgres, EngineKind::kHive})
      .ValueOrDie();
  dag.AddOperator("model-train", {features},
                  {EngineKind::kSpark, EngineKind::kHive})
      .ValueOrDie();

  // Per-operator data volumes (MiB) flowing through the pipeline.
  const std::vector<double> input_mib = {4096, 4096, 1024, 64, 512};

  // Operator cost from the engine cost profiles: startup + scan +
  // per-tuple work; money as VM-rate * time (a1.xlarge-equivalent rates).
  auto operator_cost = [&](size_t op,
                           EngineKind engine) -> StatusOr<Vector> {
    const CostProfile profile = DefaultCostProfile(engine);
    const double mib = input_mib[op];
    const double seconds = profile.startup_seconds +
                           mib / profile.scan_mib_per_second +
                           mib * 1e4 * profile.cpu_tuple_seconds;
    const double rate_per_hour =
        engine == EngineKind::kPostgres ? 0.042 : 0.0197;
    return Vector{seconds, rate_per_hour * seconds / 3600.0};
  };
  // Moving a step's output to a different engine: 80 MiB/s pipe plus a
  // flat egress-ish charge per GiB.
  auto transfer_cost = [&](size_t producer, EngineKind, size_t,
                           EngineKind) -> StatusOr<Vector> {
    const double mib = input_mib[producer] * 0.25;  // outputs shrink
    return Vector{mib / 80.0, 0.09 * mib / 1024.0};
  };

  QueryPolicy policy;
  policy.weights = {0.6, 0.4};

  WorkflowOptimizer optimizer;
  auto result =
      optimizer.Optimize(dag, operator_cost, transfer_cost, policy);
  result.status().CheckOK();

  std::cout << "Analytics workflow over three engines — "
            << result->assignments_examined
            << " assignments examined, Pareto set of "
            << result->pareto_costs.size() << "\n\n";

  TextTable table({"Pareto assignment", "seconds", "dollars", "chosen"});
  for (size_t i = 0; i < result->pareto_costs.size(); ++i) {
    std::string engines;
    for (size_t op = 0; op < dag.size(); ++op) {
      if (!engines.empty()) engines += " > ";
      engines += EngineKindName(
          result->pareto_assignments[i].engine_per_op[op]);
    }
    table.AddRow({engines, FormatDouble(result->pareto_costs[i][0], 1),
                  FormatDouble(result->pareto_costs[i][1], 5),
                  i == result->chosen ? "<==" : ""});
  }
  table.Print(std::cout);

  std::cout << "\nOperators: ";
  for (size_t op = 0; op < dag.size(); ++op) {
    if (op > 0) std::cout << " > ";
    std::cout << dag.op(op).name;
  }
  std::cout << "\nThe chosen assignment balances Spark's speed on the "
               "heavy steps against PostgreSQL's price on the light ones, "
               "hopping engines only where the transferred volume is "
               "small.\n";
  return 0;
}
