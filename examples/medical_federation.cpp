// Medical-federation walkthrough: the paper's motivating scenario end to
// end. A patient's records are spread across hospitals on different cloud
// providers (Patient in Hive on cloud-A, GeneralInfo in PostgreSQL on
// cloud-B). The example runs Example 2.1's cross-cloud join plus an
// imaging-cohort analysis under three different user policies and shows
// how the chosen QEP shifts with the policy.
//
//   ./examples/medical_federation

#include <iostream>

#include "common/text_table.h"
#include "midas/medical.h"
#include "midas/midas.h"

int main() {
  using namespace midas;  // NOLINT: example brevity

  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.5).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();

  std::cout << "Medical federation\n";
  TextTable sites({"site", "provider", "engines", "node type", "$/hour"});
  for (const CloudSite& site : federation.sites()) {
    std::string engines;
    for (EngineKind e : site.engines()) {
      if (!engines.empty()) engines += ", ";
      engines += EngineKindName(e);
    }
    sites.AddRow({site.name(), ProviderKindName(site.provider()), engines,
                  site.node_type().name,
                  FormatDouble(site.node_type().price_per_hour, 4)});
  }
  sites.Print(std::cout);

  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());

  // Warm both query scopes with observed executions.
  QueryPlan example21 = MakeExample21Query().ValueOrDie();
  QueryPlan cohort = MakeImagingCohortQuery().ValueOrDie();
  system.Bootstrap("example-2.1", example21, 24).CheckOK();
  system.Bootstrap("imaging-cohort", cohort, 24).CheckOK();

  struct PolicyCase {
    std::string name;
    QueryPolicy policy;
  };
  std::vector<PolicyCase> cases;
  {
    PolicyCase fast{"clinician (fast)", {}};
    fast.policy.weights = {1.0, 0.0};
    cases.push_back(fast);
    PolicyCase balanced{"balanced", {}};
    balanced.policy.weights = {0.5, 0.5};
    cases.push_back(balanced);
    PolicyCase frugal{"batch research (cheap)", {}};
    frugal.policy.weights = {0.0, 1.0};
    cases.push_back(frugal);
  }

  for (const auto& [scope, plan] :
       std::vector<std::pair<std::string, const QueryPlan*>>{
           {"example-2.1", &example21}, {"imaging-cohort", &cohort}}) {
    std::cout << "\nQuery scope: " << scope << "\n";
    TextTable results({"policy", "pred s", "pred $", "actual s", "actual $",
                       "join site", "VMs"});
    for (const PolicyCase& pc : cases) {
      auto outcome = system.RunQuery(scope, *plan, pc.policy);
      outcome.status().CheckOK();
      // Locate the join annotation of the chosen plan.
      std::string join_site = "-";
      int vms = 0;
      for (const PlanNode* node : outcome->moqp.chosen_plan().Nodes()) {
        if (node->kind == OperatorKind::kJoin && node->site.has_value()) {
          join_site =
              system.federation().site(*node->site).ValueOrDie()->name();
          vms = node->num_nodes;
        }
      }
      results.AddRow({pc.name, FormatDouble(outcome->predicted[0], 2),
                      FormatDouble(outcome->predicted[1], 5),
                      FormatDouble(outcome->actual.seconds, 2),
                      FormatDouble(outcome->actual.dollars, 5), join_site,
                      std::to_string(vms)});
    }
    results.Print(std::cout);
  }

  std::cout << "\nNote how the time-first policy buys more VMs (and often "
               "moves the join to the scale-out engine), while the "
               "cost-first policy shrinks the fleet.\n";
  return 0;
}
