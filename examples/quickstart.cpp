// Quickstart: build a two-cloud medical federation, warm up the DREAM
// estimator with a few executions, then run Example 2.1's query end to end
// and print the Pareto plan set and the chosen QEP.
//
//   ./examples/quickstart

#include <iostream>

#include "common/text_table.h"
#include "midas/medical.h"
#include "midas/midas.h"

int main() {
  using namespace midas;  // NOLINT: example brevity

  // 1. Environment: the paper's federation (Amazon cloud-A with Hive/Spark,
  //    Microsoft cloud-B with PostgreSQL) plus the medical schema.
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.25).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();

  // 2. System: DREAM estimator (R² >= 0.8), exhaustive Pareto MOQP.
  MidasOptions options;
  options.estimator = EstimatorConfig::DreamDefault();
  options.moqp.algorithm = MoqpAlgorithm::kExhaustivePareto;
  MidasSystem system(std::move(federation), std::move(catalog), options);

  // 3. Warm-up: the Modelling history needs a handful of observed runs
  //    before DREAM can fit (at least L + 2).
  QueryPlan example21 = MakeExample21Query().ValueOrDie();
  system.Bootstrap("example-2.1", example21, /*runs=*/24).CheckOK();

  // 4. User policy: 70% weight on execution time, 30% on money, and a
  //    budget cap of $0.05 per query.
  QueryPolicy policy;
  policy.weights = {0.7, 0.3};
  policy.constraints = {};  // no hard constraint in the quickstart

  auto outcome = system.RunQuery("example-2.1", example21, policy);
  outcome.status().CheckOK();

  std::cout << "MIDAS quickstart — Example 2.1 (Patient ⋈ GeneralInfo)\n\n";
  std::cout << "Equivalent QEPs examined: "
            << outcome->moqp.candidates_examined << "\n";
  std::cout << "Pareto plan set size:     " << outcome->moqp.pareto_plans.size()
            << "\n\n";

  TextTable table({"plan", "pred seconds", "pred dollars", "chosen"});
  for (size_t i = 0; i < outcome->moqp.pareto_costs.size(); ++i) {
    table.AddRow({"#" + std::to_string(i),
                  FormatDouble(outcome->moqp.pareto_costs[i][0], 2),
                  FormatDouble(outcome->moqp.pareto_costs[i][1], 5),
                  i == outcome->moqp.chosen ? "  <==" : ""});
  }
  table.Print(std::cout);

  std::cout << "\nChosen plan (estimator: " << outcome->estimator << "):\n"
            << outcome->moqp.chosen_plan().ToString() << "\n";
  std::cout << "Predicted: " << FormatDouble(outcome->predicted[0], 2)
            << " s, $" << FormatDouble(outcome->predicted[1], 5) << "\n";
  std::cout << "Actual:    " << FormatDouble(outcome->actual.seconds, 2)
            << " s, $" << FormatDouble(outcome->actual.dollars, 5) << "\n";
  return 0;
}
