// TPC-H multi-objective query processing: prints the predicted
// time-vs-money Pareto front of every paper query (12, 13, 14, 17) over a
// two-cloud federation, and the plan Algorithm 2 picks under a budgeted
// policy ("fastest plan under $X").
//
//   ./examples/tpch_moqp

#include <iostream>

#include "common/text_table.h"
#include "engine/simulator.h"
#include "ires/moo_optimizer.h"
#include "tpch/workload.h"

int main() {
  using namespace midas;  // NOLINT: example brevity

  // Two-cloud environment: Hive on Amazon, PostgreSQL on Microsoft.
  Federation federation;
  const InstanceCatalog instances = InstanceCatalog::PaperTable1();
  SiteConfig a;
  a.name = "cloud-A";
  a.provider = ProviderKind::kAmazon;
  a.engines = {EngineKind::kHive};
  a.node_type = instances.Find("a1.xlarge").ValueOrDie();
  a.max_nodes = 8;
  const SiteId site_a = federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "cloud-B";
  b.provider = ProviderKind::kMicrosoft;
  b.engines = {EngineKind::kPostgres};
  b.node_type = instances.Find("B2S").ValueOrDie();
  b.max_nodes = 8;
  const SiteId site_b = federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.latency_ms = 25.0;
  wan.egress_price_per_gib = 0.09;
  federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = tpch::kScaleFactor100MiB;
  tpch::Workload workload(wl_opts);

  SimulatorOptions sim_opts;
  sim_opts.stochastic = false;  // expected costs for a clean illustration
  ExecutionSimulator simulator(&federation, &workload.catalog(), sim_opts);
  auto predictor = [&simulator](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Measurement m, simulator.ExpectedCostAt(plan, 0));
    return Vector{m.seconds, m.dollars};
  };

  for (int query_id : tpch::PaperQueryIds()) {
    // Place this query's two tables across the two engines.
    auto tables = tpch::QueryTables(query_id).ValueOrDie();
    federation.PlaceTable(tables.first, site_b, EngineKind::kPostgres)
        .CheckOK();
    federation.PlaceTable(tables.second, site_a, EngineKind::kHive)
        .CheckOK();

    MultiObjectiveOptimizer optimizer(&federation, &workload.catalog());
    QueryPolicy policy;
    policy.weights = {1.0, 0.0};           // fastest...
    policy.constraints = {1e12, 0.0030};   // ...under a $0.003 budget

    QueryPlan logical = tpch::MakeQuery(query_id).ValueOrDie();
    auto result = optimizer.Optimize(logical, predictor, policy);
    result.status().CheckOK();

    std::cout << "TPC-H Q" << query_id << " (" << tables.first << " ⋈ "
              << tables.second << "), "
              << result->candidates_examined << " equivalent QEPs\n";
    TextTable front({"Pareto plan", "seconds", "dollars", "chosen"});
    for (size_t i = 0; i < result->pareto_costs.size(); ++i) {
      front.AddRow({"#" + std::to_string(i),
                    FormatDouble(result->pareto_costs[i][0], 2),
                    FormatDouble(result->pareto_costs[i][1], 5),
                    i == result->chosen ? "<== fastest under $0.003" : ""});
    }
    front.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
