#!/usr/bin/env bash
# Builds and runs the DREAM window-growth benchmark, writing the
# machine-readable results to BENCH_dream.json at the repo root so the
# perf trajectory (batch vs incremental engine, ns/estimate per window
# cap) is tracked across PRs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_dream_json -j "$(nproc)"

"$build_dir/bench/bench_dream_json" "$repo_root/BENCH_dream.json"
echo "wrote $repo_root/BENCH_dream.json"
