#!/usr/bin/env bash
# Builds and runs the vectorized-engine benchmark (bench_engine_json):
# TPC-H scan/filter/aggregate and join pipelines at SF 0.1 (the paper's
# 100 MiB dataset) are lowered once and executed on both the columnar
# vectorized engine and the row-at-a-time reference interpreter, timing
# plans/sec and rows/sec for each. The benchmark is a correctness gate
# first — vectorized output must be bit-identical to the oracle at every
# batch size, and in full mode the scan/filter/aggregate workload must
# clear a 5x speedup floor — and exits nonzero on any violation. Writes
# the machine-readable results to BENCH_engine.json at the repo root so
# the engine's perf trajectory is tracked across PRs. Pass --quick for
# the CI-sized correctness-gate variant (small data, no speedup floor) —
# quick runs write their JSON into the build tree so the tracked
# full-run artefact is never overwritten by a gate run. Override
# BUILD_DIR to gate alternate presets (e.g. the force-scalar build).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

quick=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_engine_json -j "$(nproc)"

json_out="$repo_root/BENCH_engine.json"
if [[ -n "$quick" ]]; then
  json_out="$build_dir/BENCH_engine_quick.json"
fi
"$build_dir/bench/bench_engine_json" "$json_out" $quick
echo "wrote $json_out"
