#!/usr/bin/env bash
# Builds and runs the batched-MOQP pipeline benchmark, writing the
# machine-readable results to BENCH_moqp.json at the repo root so the
# perf trajectory (scalar vs GEMM-backed batch costing across thread
# counts 1/2/4/8, plus the striped prediction cache and the streaming
# OptimizeStreaming configurations, plans/sec over an Example-3.1-scale
# enumeration) is tracked across PRs. Every row is cross-checked against
# the serial scalar baseline (matches_serial).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_moqp_json -j "$(nproc)"

"$build_dir/bench/bench_moqp_json" --stream "$repo_root/BENCH_moqp.json"
echo "wrote $repo_root/BENCH_moqp.json"
