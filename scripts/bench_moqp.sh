#!/usr/bin/env bash
# Builds and runs the parallel-MOQP pipeline benchmark, writing the
# machine-readable results to BENCH_moqp.json at the repo root so the
# perf trajectory (serial vs parallel vs parallel+cache, plans/sec over
# an Example-3.1-scale enumeration) is tracked across PRs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_moqp_json -j "$(nproc)"

"$build_dir/bench/bench_moqp_json" "$repo_root/BENCH_moqp.json"
echo "wrote $repo_root/BENCH_moqp.json"
