#!/usr/bin/env bash
# Builds and runs the multi-tenant serving benchmark (bench_serve_json):
# a QueryService (bounded admission queue, deficit-round-robin tenant
# lanes, snapshot-pinned executor slots) under closed-loop load from
# 1/8/64 tenant submitters, against the single-threaded serial RunQuery
# baseline. Reports sustained queries/sec and p50/p95/p99 service
# latency per tenant count. Writes the machine-readable results to
# BENCH_serve.json at the repo root so the serving-throughput trajectory
# is tracked across PRs; the host's hardware_concurrency is recorded
# with the timings (on a 1-core host multi-tenant throughput tracks the
# serial baseline rather than exceeding it). Pass --quick for the
# sub-second CI variant (a liveness/backpressure gate more than a
# measurement) — quick runs write their JSON into the build tree so the
# tracked full-run artefact is never overwritten by a gate run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

quick=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_serve_json -j "$(nproc)"

json_out="$repo_root/BENCH_serve.json"
if [[ -n "$quick" ]]; then
  json_out="$build_dir/BENCH_serve_quick.json"
fi
"$build_dir/bench/bench_serve_json" /dev/stdout "$json_out" $quick
echo "wrote $json_out"
