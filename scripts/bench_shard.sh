#!/usr/bin/env bash
# Builds and runs the sharded-streaming benchmark (bench_shard_json):
# the plan space of a 3-table chain join over a 3-cloud federation
# (>10^6 equivalent QEPs) is partitioned into 1/2/4/8 shards and the
# whole enumerate -> cost -> Pareto-fold -> merge pipeline is timed per
# shard count, with every sharded front cross-checked bitwise against
# the serial single stream (the bench exits nonzero on any mismatch).
# Writes the machine-readable results to BENCH_shard.json at the repo
# root so the sharding perf trajectory is tracked across PRs; the host's
# hardware_concurrency is recorded with the timings. Pass --quick for
# the ~10^5-plan CI variant (correctness gate more than a measurement) —
# quick runs write their JSON into the build tree so the tracked
# full-run artefact is never overwritten by a gate run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

quick=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_shard_json -j "$(nproc)"

json_out="$repo_root/BENCH_shard.json"
if [[ -n "$quick" ]]; then
  json_out="$build_dir/BENCH_shard_quick.json"
fi
"$build_dir/bench/bench_shard_json" /dev/stdout "$json_out" $quick
echo "wrote $json_out"
