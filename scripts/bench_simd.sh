#!/usr/bin/env bash
# Builds and runs the SIMD kernel benchmark, writing the machine-readable
# results to BENCH_simd.json at the repo root: per-kernel ns/call for the
# scalar tier vs the runtime-dispatched vector tier (Dot, Gram, blocked
# GEMM, DREAM batch prediction), plus the dispatched tier name,
# hardware_concurrency and the measured commit.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_simd_json -j "$(nproc)"

"$build_dir/bench/bench_simd_json" "$repo_root/BENCH_simd.json"
echo "wrote $repo_root/BENCH_simd.json"
