#!/usr/bin/env bash
# Builds and runs the snapshot read-path benchmark, writing the
# machine-readable results to BENCH_snapshot.json at the repo root:
# predictions/sec through pinned EstimatorSnapshots at 1/4/16 reader
# threads with a live writer publishing epochs, against the serial
# live-path baseline, so snapshot-overhead and reader-scaling changes
# are tracked across PRs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_snapshot_json -j "$(nproc)"

"$build_dir/bench/bench_snapshot_json" "$repo_root/BENCH_snapshot.json"
echo "wrote $repo_root/BENCH_snapshot.json"
