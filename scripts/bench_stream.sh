#!/usr/bin/env bash
# Builds and runs the streaming-pipeline benchmark (section 2 of
# bench_example31_enumeration): materialize-everything Optimize vs chunked
# OptimizeStreaming over an Example-3.1-scale plan fleet, reporting
# plans/sec and the peak number of simultaneously resident candidate
# plans. Writes the machine-readable results to BENCH_stream.json at the
# repo root so the streaming perf trajectory is tracked across PRs; every
# streaming row is cross-checked against the materialized front
# (matches_materialized).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Stamp results with the measured code version (read by the emitters).
export MIDAS_GIT_COMMIT="${MIDAS_GIT_COMMIT:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_example31_enumeration -j "$(nproc)"

"$build_dir/bench/bench_example31_enumeration" /dev/stdout \
  "$repo_root/BENCH_stream.json"
echo "wrote $repo_root/BENCH_stream.json"
