#!/usr/bin/env bash
# Tier-1 gate: builds the default and asan presets and runs the full test
# suite under both, so numerically delicate code (e.g. the rank-1
# normal-equation updates behind DREAM's incremental engine) is
# sanitizer-verified on every change.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
cd "$repo_root"

for preset in default asan; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done
echo "=== all presets green ==="
