#!/usr/bin/env bash
# Tier-1 gate: builds the default, asan, ubsan and tsan presets and runs
# the full test suite under each, so numerically delicate code (e.g. the
# rank-1 normal-equation updates behind DREAM's incremental engine and the
# blocked GEMM kernels) is sanitizer-verified on every change and the
# thread-pool / parallel MOQP / striped-cache paths are race-checked under
# ThreadSanitizer. The streaming-pipeline equivalence suites (fast
# non-dominated sort vs naive oracle, online Pareto archive vs
# materialized front, chunked vs materialized enumeration, and
# OptimizeStreaming vs Optimize across threads x chunk sizes x cache
# settings) are discovered with the rest and run under every preset.
#
# The snapshot suites ride the same discovery: the snapshot/live
# equivalence tests run everywhere, the snapshot concurrency suite
# (readers at 1/4/16 threads pinning epochs against live writers) is
# race-checked under the tsan preset by default, and the
# TrainingWindow use-after-mutation death tests arm themselves in the
# asan/tsan builds (MIDAS_TRAINING_WINDOW_CHECKS; GCC exposes no UBSan
# detection macro, so the pure-ubsan preset skips them).
#
# The force-scalar preset compiles the SIMD vector tiers out entirely
# (MIDAS_FORCE_SCALAR=ON) and reruns the whole suite, so the bitwise
# batch==scalar / shard==serial equivalence gates are exercised with the
# pinned scalar kernels on every change, alongside the default preset
# where the same suites run as 1e-12-tolerance gates against the
# dispatched vector tier.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
cd "$repo_root"

for preset in default force-scalar asan ubsan tsan; do
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

# Sharded-streaming cross-check: the quick bench partitions a ~10^5-plan
# enumeration into 1/2/4/8 shards and exits nonzero unless every sharded
# front is bitwise identical to the serial stream.
echo "=== bench: sharded streaming cross-check (--quick) ==="
"$repo_root/scripts/bench_shard.sh" --quick

# Serving smoke: closed-loop 1/8-tenant load through the QueryService
# (admission queue, DRR lanes, snapshot-pinned slots) must sustain
# without rejections or stalls; sub-second runs, liveness gate more
# than a measurement.
echo "=== bench: multi-tenant serving smoke (--quick) ==="
"$repo_root/scripts/bench_serve.sh" --quick

# Vectorized-engine cross-check: the quick bench lowers TPC-H pipelines
# and exits nonzero unless the vectorized engine's output is bit-identical
# to the row-at-a-time oracle at every batch size. Run against both the
# default preset (dispatched SIMD select kernels) and the force-scalar
# preset (vector tiers compiled out), so the batch==scalar==oracle
# equivalence holds on every change under both kernel sets.
echo "=== bench: vectorized engine cross-check (--quick) ==="
"$repo_root/scripts/bench_engine.sh" --quick
echo "=== bench: vectorized engine cross-check, force-scalar (--quick) ==="
BUILD_DIR="$repo_root/build-force-scalar" "$repo_root/scripts/bench_engine.sh" --quick

echo "=== all presets green ==="
