#ifndef MIDAS_COMMON_ALIGNED_H_
#define MIDAS_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace midas {

/// \brief Minimal stateless allocator handing out storage aligned to
/// `Alignment` bytes (default: one cache line, which also covers the widest
/// vector registers the kernel layer targets).
///
/// Backing the linalg containers with it means SIMD loads of a row never
/// straddle a cache line at the row base. The allocator is stateless and
/// always-equal, so containers over it copy, move and compare exactly like
/// their default-allocator counterparts.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_type n) {
    if (n == 0) return nullptr;
    if (n > static_cast<size_type>(-1) / sizeof(T)) throw std::bad_alloc();
    // Aligned size must be a multiple of the alignment for std::aligned_alloc.
    const size_type bytes = (n * sizeof(T) + Alignment - 1) & ~(Alignment - 1);
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_type) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A std::vector whose buffer starts on a 64-byte boundary. `midas::Vector`
/// (linalg/matrix.h) is an alias of AlignedVector<double>, so headers below
/// the linalg layer can name the same type without including it.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace midas

#endif  // MIDAS_COMMON_ALIGNED_H_
