#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace midas {

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2Fma:
      return "avx2+fma";
    case SimdTier::kNeon:
      return "neon";
  }
  return "unknown";
}

namespace {

SimdTier ProbeCpu() {
#if defined(MIDAS_FORCE_SCALAR)
  // Build-time pin: the vector tiers are compiled out entirely, so the
  // probe must never advertise them.
  return SimdTier::kScalar;
#elif defined(__x86_64__) && defined(__GNUC__)
  // The AVX2 kernels are compiled with per-function target attributes, so
  // the binary runs on any x86-64; the CPUID probe decides per host.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdTier::kAvx2Fma;
  }
  return SimdTier::kScalar;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  // Advanced SIMD is architecturally mandatory on aarch64.
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
}

}  // namespace

SimdTier DetectCpuSimdTier() {
  static const SimdTier tier = ProbeCpu();
  return tier;
}

bool ForceScalarRequestedByEnv() {
  static const bool force = [] {
    const char* v = std::getenv("MIDAS_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return force;
}

}  // namespace midas
