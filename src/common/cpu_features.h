#ifndef MIDAS_COMMON_CPU_FEATURES_H_
#define MIDAS_COMMON_CPU_FEATURES_H_

namespace midas {

/// \brief The instruction-set tiers the vectorized kernel layer
/// (linalg/simd.h) can dispatch to. Exactly one tier is active per process;
/// kScalar is always available and is the bit-exact reference the other
/// tiers are tested against.
enum class SimdTier {
  kScalar = 0,   ///< portable scalar loops (the seed kernels)
  kAvx2Fma = 1,  ///< x86-64 with AVX2 + FMA3 (4 doubles / register)
  kNeon = 2,     ///< aarch64 Advanced SIMD (2 doubles / register)
};

/// Stable lowercase name for logs and the BENCH_*.json emitters.
const char* SimdTierName(SimdTier tier);

/// One-shot hardware probe: the widest tier this binary can run on this
/// CPU, ignoring every override knob. Compile-time ISA selection bounds the
/// answer (an aarch64 build never reports AVX2 and vice versa); the runtime
/// CPUID check lowers it further on hosts without the feature. The probe
/// runs once and is cached — subsequent calls are a load.
SimdTier DetectCpuSimdTier();

/// True when the MIDAS_FORCE_SCALAR environment variable is set to a value
/// other than "" or "0" — the reproducibility knob that pins the process to
/// the bit-exact scalar kernels. Read once and cached; flipping the
/// environment after startup has no effect (use linalg's
/// simd::SetForceScalar for in-process control, e.g. from tests).
bool ForceScalarRequestedByEnv();

}  // namespace midas

#endif  // MIDAS_COMMON_CPU_FEATURES_H_
