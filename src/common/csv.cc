#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/text_table.h"

namespace midas {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::AddRow(std::span<const double> values) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << v;
    row.push_back(os.str());
  }
  AddRow(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << QuoteField(row[i]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open file for writing: " + path);
  }
  out << ToString();
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace midas
