#ifndef MIDAS_COMMON_CSV_H_
#define MIDAS_COMMON_CSV_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace midas {

/// \brief Minimal CSV writer for exporting benchmark series (one file per
/// figure) so results can be re-plotted externally.
///
/// Fields containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void AddRow(std::span<const double> values);
  void AddRow(std::initializer_list<double> values) {
    AddRow(std::span<const double>(values.begin(), values.size()));
  }

  /// Serialises header + rows.
  std::string ToString() const;

  /// Writes the file, creating/truncating it.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Splits one CSV line honouring RFC 4180 quoting (used by tests and the
/// workload replayer).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace midas

#endif  // MIDAS_COMMON_CSV_H_
