#include "common/logging.h"

namespace midas {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= g_log_level || level == LogLevel::kFatal) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    std::string path(file);
    auto pos = path.find_last_of('/');
    if (pos != std::string::npos) path = path.substr(pos + 1);
    stream_ << "[" << LevelName(level) << " " << path << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace midas
