#ifndef MIDAS_COMMON_LOGGING_H_
#define MIDAS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace midas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Not thread-safe to mutate concurrently with logging,
/// which is fine for this library's single-threaded drivers.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// One log statement. Streams into an internal buffer and emits on
/// destruction; kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed LogMessage expression into void so it can sit in the
/// false branch of the MIDAS_CHECK ternary. operator& binds looser than <<.
class Voidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal

#define MIDAS_LOG(level)                                                  \
  ::midas::internal::LogMessage(::midas::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check, active in all build modes: database-style code keeps its
/// checks on in release builds. Supports streaming extra context:
///   MIDAS_CHECK(i < n) << "index " << i;
#define MIDAS_CHECK(cond)                                             \
  (cond) ? (void)0                                                    \
         : ::midas::internal::Voidify() &                             \
               ::midas::internal::LogMessage(::midas::LogLevel::kFatal, \
                                             __FILE__, __LINE__)      \
                   << "Check failed: " #cond " "

#define MIDAS_DCHECK(cond) MIDAS_CHECK(cond)

}  // namespace midas

#endif  // MIDAS_COMMON_LOGGING_H_
