#ifndef MIDAS_COMMON_RANDOM_H_
#define MIDAS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace midas {

/// Derives an independent 64-bit seed from (seed, stream) with a
/// splitmix64-style finalizer. Parallel components (NSGA offspring slots,
/// bagging bootstrap replicates) seed one Rng per work item via
/// MixSeed(MixSeed(seed, level), item): the resulting streams depend only
/// on the seed and the item's position, never on scheduling, so results
/// are bit-identical at any thread count.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic pseudo-random source used across the library.
///
/// Every stochastic component (noise models, genetic operators, data
/// generation) takes an explicit Rng so that experiments are reproducible
/// from a single seed. Wraps std::mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform in [0, 1).
  double Uniform() { return unit_(gen_); }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(gen_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(gen_);
  }

  /// Log-normal with the *underlying* normal's parameters mu/sigma.
  double LogNormal(double mu, double sigma) {
    std::lognormal_distribution<double> dist(mu, sigma);
    return dist(gen_);
  }

  /// Exponential with the given rate lambda.
  double Exponential(double lambda) {
    std::exponential_distribution<double> dist(lambda);
    return dist(gen_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Uniformly chosen index in [0, n).
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Derives an independent child generator; advancing the child does not
  /// perturb this generator's stream.
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace midas

#endif  // MIDAS_COMMON_RANDOM_H_
