#include "common/statistics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace midas {

StatusOr<double> Mean(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Mean of empty vector");
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

StatusOr<double> Variance(std::span<const double> v) {
  if (v.size() < 2) {
    return Status::InvalidArgument("Variance requires at least two values");
  }
  MIDAS_ASSIGN_OR_RETURN(double mu, Mean(v));
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(v.size() - 1);
}

StatusOr<double> StdDev(std::span<const double> v) {
  MIDAS_ASSIGN_OR_RETURN(double var, Variance(v));
  return std::sqrt(var);
}

StatusOr<double> Min(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

StatusOr<double> Max(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

StatusOr<double> Quantile(std::span<const double> v, double q) {
  if (v.empty()) return Status::InvalidArgument("Quantile of empty vector");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Quantile q must be in [0, 1]");
  }
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

StatusOr<double> Median(std::span<const double> v) {
  return Quantile(v, 0.5);
}

StatusOr<double> MeanRelativeError(std::span<const double> predicted,
                                   std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument("MRE: size mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("MRE of empty vectors");
  }
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] == 0.0) {
      return Status::InvalidArgument("MRE: actual value is zero");
    }
    sum += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

StatusOr<double> RootMeanSquaredError(std::span<const double> predicted,
                                      std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument("RMSE: size mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("RMSE of empty vectors");
  }
  double ss = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(predicted.size()));
}

StatusOr<double> PearsonCorrelation(std::span<const double> a,
                                    std::span<const double> b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Correlation: size mismatch");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("Correlation requires at least two values");
  }
  MIDAS_ASSIGN_OR_RETURN(double ma, Mean(a));
  MIDAS_ASSIGN_OR_RETURN(double mb, Mean(b));
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) {
    return Status::InvalidArgument("Correlation of constant input");
  }
  return sab / std::sqrt(saa * sbb);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace midas
