#include "common/statistics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <vector>

namespace midas {

StatusOr<double> Mean(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Mean of empty vector");
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

StatusOr<double> Variance(std::span<const double> v) {
  if (v.size() < 2) {
    return Status::InvalidArgument("Variance requires at least two values");
  }
  MIDAS_ASSIGN_OR_RETURN(double mu, Mean(v));
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(v.size() - 1);
}

StatusOr<double> StdDev(std::span<const double> v) {
  MIDAS_ASSIGN_OR_RETURN(double var, Variance(v));
  return std::sqrt(var);
}

StatusOr<double> Min(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

StatusOr<double> Max(std::span<const double> v) {
  if (v.empty()) return Status::InvalidArgument("Max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

StatusOr<double> Quantile(std::span<const double> v, double q) {
  if (v.empty()) return Status::InvalidArgument("Quantile of empty vector");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Quantile q must be in [0, 1]");
  }
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

StatusOr<double> Median(std::span<const double> v) {
  return Quantile(v, 0.5);
}

StatusOr<double> MeanRelativeError(std::span<const double> predicted,
                                   std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument("MRE: size mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("MRE of empty vectors");
  }
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] == 0.0) {
      return Status::InvalidArgument("MRE: actual value is zero");
    }
    sum += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

StatusOr<double> RootMeanSquaredError(std::span<const double> predicted,
                                      std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument("RMSE: size mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("RMSE of empty vectors");
  }
  double ss = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(predicted.size()));
}

StatusOr<double> PearsonCorrelation(std::span<const double> a,
                                    std::span<const double> b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Correlation: size mismatch");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("Correlation requires at least two values");
  }
  MIDAS_ASSIGN_OR_RETURN(double ma, Mean(a));
  MIDAS_ASSIGN_OR_RETURN(double mb, Mean(b));
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) {
    return Status::InvalidArgument("Correlation of constant input");
  }
  return sab / std::sqrt(saa * sbb);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LatencyRecorder::LatencyRecorder() : counts_(kNumBuckets, 0) {}

size_t LatencyRecorder::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<size_t>(nanos);
  // Highest set bit e puts the value in octave [2^e, 2^(e+1)); the top
  // kSubBucketBits of the mantissa pick the linear sub-bucket.
  const int e = 63 - std::countl_zero(nanos);
  const size_t octave = static_cast<size_t>(e) - kSubBucketBits + 1;
  const size_t sub =
      static_cast<size_t>(nanos >> (e - static_cast<int>(kSubBucketBits))) &
      (kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

uint64_t LatencyRecorder::BucketMidpoint(size_t index) {
  const size_t octave = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  if (octave == 0) return sub;  // exact buckets below 2^kSubBucketBits
  const int shift = static_cast<int>(octave) - 1;
  const uint64_t lower = (kSubBuckets + sub) << shift;
  const uint64_t width = uint64_t{1} << shift;
  return lower + (width >> 1);
}

void LatencyRecorder::Record(uint64_t nanos) {
  ++counts_[BucketIndex(nanos)];
  if (count_ == 0) {
    min_ = max_ = nanos;
  } else {
    min_ = std::min(min_, nanos);
    max_ = std::max(max_, nanos);
  }
  ++count_;
  sum_ += static_cast<double>(nanos);
}

double LatencyRecorder::mean_nanos() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

StatusOr<double> LatencyRecorder::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return Status::InvalidArgument("quantile of empty LatencyRecorder");
  }
  q = std::min(1.0, std::max(0.0, q));
  // The rank-th smallest sample (1-based), matching the nearest-rank
  // definition; q=0 maps to rank 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  // The extreme ranks are tracked exactly; bucket midpoints only
  // approximate interior quantiles.
  if (rank == 1) return static_cast<double>(min_);
  if (rank == count_) return static_cast<double>(max_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      const uint64_t mid = BucketMidpoint(i);
      return static_cast<double>(std::min(std::max(mid, min_), max_));
    }
  }
  return static_cast<double>(max_);  // unreachable: counts_ sums to count_
}

void LatencyRecorder::MergeFrom(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyRecorder::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace midas
