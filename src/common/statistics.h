#ifndef MIDAS_COMMON_STATISTICS_H_
#define MIDAS_COMMON_STATISTICS_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/status.h"

namespace midas {

/// Descriptive statistics over sequences of doubles. Parameters are
/// std::span so both std::vector<double> and the 64-byte-aligned linalg
/// Vector bind without copies. All functions return an error on empty
/// input rather than NaN so that callers surface mistakes early.

StatusOr<double> Mean(std::span<const double> v);

/// Sample variance (divides by n-1); requires at least two values.
StatusOr<double> Variance(std::span<const double> v);

StatusOr<double> StdDev(std::span<const double> v);

StatusOr<double> Min(std::span<const double> v);
StatusOr<double> Max(std::span<const double> v);

/// Linear-interpolation quantile, q in [0, 1]. Copies the input to sort.
StatusOr<double> Quantile(std::span<const double> v, double q);
StatusOr<double> Median(std::span<const double> v);

/// Mean Relative Error (Eq. 15 of the paper):
///   (1/M) * sum_i |predicted_i - actual_i| / actual_i.
/// Requires equal-length non-empty inputs and non-zero actual values.
StatusOr<double> MeanRelativeError(std::span<const double> predicted,
                                   std::span<const double> actual);

/// Root mean squared error between equal-length non-empty vectors.
StatusOr<double> RootMeanSquaredError(std::span<const double> predicted,
                                      std::span<const double> actual);

/// Pearson correlation; requires length >= 2 and non-constant inputs.
StatusOr<double> PearsonCorrelation(std::span<const double> a,
                                    std::span<const double> b);

/// Braced-list conveniences (initializer_list does not convert to span).
inline StatusOr<double> Mean(std::initializer_list<double> v) {
  return Mean(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Variance(std::initializer_list<double> v) {
  return Variance(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> StdDev(std::initializer_list<double> v) {
  return StdDev(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Min(std::initializer_list<double> v) {
  return Min(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Max(std::initializer_list<double> v) {
  return Max(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Quantile(std::initializer_list<double> v, double q) {
  return Quantile(std::span<const double>(v.begin(), v.size()), q);
}
inline StatusOr<double> Median(std::initializer_list<double> v) {
  return Median(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> MeanRelativeError(std::initializer_list<double> p,
                                          std::initializer_list<double> a) {
  return MeanRelativeError(std::span<const double>(p.begin(), p.size()),
                           std::span<const double>(a.begin(), a.size()));
}
inline StatusOr<double> RootMeanSquaredError(std::initializer_list<double> p,
                                             std::initializer_list<double> a) {
  return RootMeanSquaredError(std::span<const double>(p.begin(), p.size()),
                              std::span<const double>(a.begin(), a.size()));
}
inline StatusOr<double> PearsonCorrelation(std::initializer_list<double> a,
                                           std::initializer_list<double> b) {
  return PearsonCorrelation(std::span<const double>(a.begin(), a.size()),
                            std::span<const double>(b.begin(), b.size()));
}

/// Running single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Seconds on a monotonic clock — the shared stopwatch for pipeline
/// timing (per-shard plans/sec, benchmark sections). Differences between
/// two calls are wall-clock durations unaffected by system time changes.
double MonotonicSeconds();

}  // namespace midas

#endif  // MIDAS_COMMON_STATISTICS_H_
