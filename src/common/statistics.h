#ifndef MIDAS_COMMON_STATISTICS_H_
#define MIDAS_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/status.h"

namespace midas {

/// Descriptive statistics over sequences of doubles. Parameters are
/// std::span so both std::vector<double> and the 64-byte-aligned linalg
/// Vector bind without copies. All functions return an error on empty
/// input rather than NaN so that callers surface mistakes early.

StatusOr<double> Mean(std::span<const double> v);

/// Sample variance (divides by n-1); requires at least two values.
StatusOr<double> Variance(std::span<const double> v);

StatusOr<double> StdDev(std::span<const double> v);

StatusOr<double> Min(std::span<const double> v);
StatusOr<double> Max(std::span<const double> v);

/// Linear-interpolation quantile, q in [0, 1]. Copies the input to sort.
StatusOr<double> Quantile(std::span<const double> v, double q);
StatusOr<double> Median(std::span<const double> v);

/// Mean Relative Error (Eq. 15 of the paper):
///   (1/M) * sum_i |predicted_i - actual_i| / actual_i.
/// Requires equal-length non-empty inputs and non-zero actual values.
StatusOr<double> MeanRelativeError(std::span<const double> predicted,
                                   std::span<const double> actual);

/// Root mean squared error between equal-length non-empty vectors.
StatusOr<double> RootMeanSquaredError(std::span<const double> predicted,
                                      std::span<const double> actual);

/// Pearson correlation; requires length >= 2 and non-constant inputs.
StatusOr<double> PearsonCorrelation(std::span<const double> a,
                                    std::span<const double> b);

/// Braced-list conveniences (initializer_list does not convert to span).
inline StatusOr<double> Mean(std::initializer_list<double> v) {
  return Mean(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Variance(std::initializer_list<double> v) {
  return Variance(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> StdDev(std::initializer_list<double> v) {
  return StdDev(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Min(std::initializer_list<double> v) {
  return Min(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Max(std::initializer_list<double> v) {
  return Max(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> Quantile(std::initializer_list<double> v, double q) {
  return Quantile(std::span<const double>(v.begin(), v.size()), q);
}
inline StatusOr<double> Median(std::initializer_list<double> v) {
  return Median(std::span<const double>(v.begin(), v.size()));
}
inline StatusOr<double> MeanRelativeError(std::initializer_list<double> p,
                                          std::initializer_list<double> a) {
  return MeanRelativeError(std::span<const double>(p.begin(), p.size()),
                           std::span<const double>(a.begin(), a.size()));
}
inline StatusOr<double> RootMeanSquaredError(std::initializer_list<double> p,
                                             std::initializer_list<double> a) {
  return RootMeanSquaredError(std::span<const double>(p.begin(), p.size()),
                              std::span<const double>(a.begin(), a.size()));
}
inline StatusOr<double> PearsonCorrelation(std::initializer_list<double> a,
                                           std::initializer_list<double> b) {
  return PearsonCorrelation(std::span<const double>(a.begin(), a.size()),
                            std::span<const double>(b.begin(), b.size()));
}

/// Running single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Seconds on a monotonic clock — the shared stopwatch for pipeline
/// timing (per-shard plans/sec, benchmark sections). Differences between
/// two calls are wall-clock durations unaffected by system time changes.
double MonotonicSeconds();

/// \brief Fixed-memory streaming quantile recorder for latency samples in
/// nanoseconds — the p50/p95/p99 backbone of the serving stats and the
/// serve benchmarks.
///
/// An HDR-style log-linear histogram: values below 2^kSubBucketBits get
/// one exact bucket each, and every higher octave [2^e, 2^(e+1)) is split
/// into 2^kSubBucketBits linear sub-buckets, so the bucket a value lands
/// in is always within 1/2^kSubBucketBits (~3.1%) of the value itself.
/// Memory is a fixed array of kNumBuckets counters regardless of how many
/// samples stream through — a recorder embedded in a long-lived service
/// never grows — and recording is one bit-scan plus one increment.
///
/// Not thread-safe: concurrent writers keep one recorder each (e.g. per
/// executor slot) and the collector folds them together with MergeFrom,
/// which is exact (histograms add bucket-wise).
class LatencyRecorder {
 public:
  /// Linear sub-buckets per octave; 5 bits bounds the relative quantile
  /// error at ~1.6% (half a sub-bucket) while keeping the whole recorder
  /// under 16 KiB.
  static constexpr size_t kSubBucketBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;
  /// Exact values (highest set bit < kSubBucketBits) share octave 0 with
  /// the first linear octave; bits kSubBucketBits..63 each open one more,
  /// so octaves run 0..(64 - kSubBucketBits) inclusive.
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;

  LatencyRecorder();

  /// Folds one sample into the histogram. Any uint64 nanosecond value is
  /// representable; nothing saturates or is dropped.
  void Record(uint64_t nanos);

  uint64_t count() const { return count_; }
  /// Exact extremes and mean of the recorded samples (0 when empty).
  uint64_t min_nanos() const { return count_ == 0 ? 0 : min_; }
  uint64_t max_nanos() const { return count_ == 0 ? 0 : max_; }
  double mean_nanos() const;

  /// The recorded value at quantile q in [0, 1] (0.5 = median, 0.99 =
  /// p99), resolved to the containing bucket's midpoint and clamped to the
  /// exact [min, max] envelope — so q=0 and q=1 are exact and interior
  /// quantiles carry the ~1.6% bucket error. Errors on an empty recorder
  /// (matching the file's no-NaN convention).
  StatusOr<double> ValueAtQuantile(double q) const;

  /// Adds another recorder's samples into this one (exact: counts add
  /// bucket-wise, extremes combine).
  void MergeFrom(const LatencyRecorder& other);

  /// Drops all samples.
  void Reset();

 private:
  static size_t BucketIndex(uint64_t nanos);
  /// Midpoint of the bucket's value range (exact for the sub-2^5 buckets).
  static uint64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> counts_;  // sized kNumBuckets once, never resized
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace midas

#endif  // MIDAS_COMMON_STATISTICS_H_
