#ifndef MIDAS_COMMON_STATISTICS_H_
#define MIDAS_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace midas {

/// Descriptive statistics over vectors of doubles. All functions return an
/// error on empty input rather than NaN so that callers surface mistakes
/// early.

StatusOr<double> Mean(const std::vector<double>& v);

/// Sample variance (divides by n-1); requires at least two values.
StatusOr<double> Variance(const std::vector<double>& v);

StatusOr<double> StdDev(const std::vector<double>& v);

StatusOr<double> Min(const std::vector<double>& v);
StatusOr<double> Max(const std::vector<double>& v);

/// Linear-interpolation quantile, q in [0, 1].
StatusOr<double> Quantile(std::vector<double> v, double q);
StatusOr<double> Median(std::vector<double> v);

/// Mean Relative Error (Eq. 15 of the paper):
///   (1/M) * sum_i |predicted_i - actual_i| / actual_i.
/// Requires equal-length non-empty inputs and non-zero actual values.
StatusOr<double> MeanRelativeError(const std::vector<double>& predicted,
                                   const std::vector<double>& actual);

/// Root mean squared error between equal-length non-empty vectors.
StatusOr<double> RootMeanSquaredError(const std::vector<double>& predicted,
                                      const std::vector<double>& actual);

/// Pearson correlation; requires length >= 2 and non-constant inputs.
StatusOr<double> PearsonCorrelation(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// Running single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Seconds on a monotonic clock — the shared stopwatch for pipeline
/// timing (per-shard plans/sec, benchmark sections). Differences between
/// two calls are wall-clock durations unaffected by system time changes.
double MonotonicSeconds();

}  // namespace midas

#endif  // MIDAS_COMMON_STATISTICS_H_
