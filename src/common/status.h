#ifndef MIDAS_COMMON_STATUS_H_
#define MIDAS_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace midas {

/// \brief Error category carried by a Status.
///
/// The set is deliberately small: codes are for dispatch, messages are for
/// humans. Modelled on the Arrow/RocksDB status idiom — library code returns
/// Status / StatusOr instead of throwing across the API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status text when not OK. For use in tests,
  /// examples and benchmarks where failure is a bug.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Accessors mirror the Arrow Result API: ok()/status()/value()/
/// ValueOrDie(). Dereferencing a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value, mirroring `return value;` in
  /// functions declared to return StatusOr<T>.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      // A StatusOr must hold either a value or an *error*.
      std::get<Status>(rep_) =
          Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    DieIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    DieIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    DieIfError();
    return std::move(std::get<T>(rep_));
  }

  /// Moves the value out, aborting if this holds an error.
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::get<Status>(rep_).CheckOK();
    }
  }

  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller.
#define MIDAS_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::midas::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a StatusOr expression, propagating the error or binding the
/// value to `lhs`.
#define MIDAS_ASSIGN_OR_RETURN(lhs, expr)                    \
  MIDAS_ASSIGN_OR_RETURN_IMPL_(                              \
      MIDAS_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define MIDAS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define MIDAS_STATUS_CONCAT_(a, b) MIDAS_STATUS_CONCAT_IMPL_(a, b)
#define MIDAS_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace midas

#endif  // MIDAS_COMMON_STATUS_H_
