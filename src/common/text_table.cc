#include "common/text_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace midas {

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(const std::string& label,
                       std::span<const double> values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

}  // namespace midas
