#ifndef MIDAS_COMMON_TEXT_TABLE_H_
#define MIDAS_COMMON_TEXT_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace midas {

/// \brief Fixed-column ASCII table printer used by the benchmark harnesses to
/// reproduce the paper's tables.
///
/// Usage:
///   TextTable t({"Query", "BML_N", "DREAM"});
///   t.AddRow({"12", "0.265", "0.146"});
///   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; missing cells are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, std::span<const double> values,
              int precision = 3);
  void AddRow(const std::string& label, std::initializer_list<double> values,
              int precision = 3) {
    AddRow(label, std::span<const double>(values.begin(), values.size()),
           precision);
  }

  void Print(std::ostream& os) const;

  /// Renders the table to a string (used by tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string FormatDouble(double value, int precision = 3);

}  // namespace midas

#endif  // MIDAS_COMMON_TEXT_TABLE_H_
