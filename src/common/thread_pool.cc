#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <string>

namespace midas {

namespace {

std::atomic<size_t> g_default_threads{0};  // 0 = not configured yet

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t InitialDefaultThreads() {
  if (const char* env = std::getenv("MIDAS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return HardwareThreads();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(std::max(DefaultThreadCount(), HardwareThreads()));
  return pool;
}

size_t ThreadPool::DefaultThreadCount() {
  size_t n = g_default_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = InitialDefaultThreads();
    g_default_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void ThreadPool::SetDefaultThreadCount(size_t n) {
  g_default_threads.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

namespace {

constexpr size_t kNoError = std::numeric_limits<size_t>::max();

/// Shared state of one ParallelFor call. Chunks are claimed from an atomic
/// counter; results only ever land in per-chunk slots.
struct ParallelForState {
  size_t n = 0;
  size_t num_chunks = 0;
  const std::function<Status(size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  /// Smallest failing index seen so far; lets chunks that can only contain
  /// larger indices stop early (the serial loop would never reach them).
  std::atomic<size_t> first_bad{kNoError};
  std::vector<size_t> chunk_bad_index;
  std::vector<Status> chunk_status;

  std::mutex done_mutex;
  std::condition_variable all_done;
  size_t chunks_done = 0;

  size_t ChunkBegin(size_t c) const { return c * n / num_chunks; }
  size_t ChunkEnd(size_t c) const { return (c + 1) * n / num_chunks; }
};

Status InvokeGuarded(const std::function<Status(size_t)>& body, size_t i) {
  try {
    return body(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

void RunChunks(ParallelForState* state) {
  for (;;) {
    const size_t c =
        state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    const size_t begin = state->ChunkBegin(c);
    const size_t end = state->ChunkEnd(c);
    for (size_t i = begin; i < end; ++i) {
      // An already-recorded smaller failing index means the serial loop
      // would have stopped before i.
      if (state->first_bad.load(std::memory_order_relaxed) < i) break;
      Status st = InvokeGuarded(*state->body, i);
      if (!st.ok()) {
        state->chunk_bad_index[c] = i;
        state->chunk_status[c] = std::move(st);
        size_t expected = state->first_bad.load(std::memory_order_relaxed);
        while (i < expected && !state->first_bad.compare_exchange_weak(
                                   expected, i, std::memory_order_relaxed)) {
        }
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(state->done_mutex);
      ++state->chunks_done;
    }
    state->all_done.notify_one();
  }
}

}  // namespace

Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                   const ParallelForOptions& options) {
  if (n == 0) return Status::OK();
  const size_t threads =
      options.threads == 0 ? ThreadPool::DefaultThreadCount()
                           : options.threads;
  if (threads <= 1 || n == 1) {
    // Exact serial semantics: stop at the first error.
    for (size_t i = 0; i < n; ++i) {
      Status st = InvokeGuarded(body, i);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  // Shared ownership: a helper task may still be queued (or about to probe
  // the chunk counter) after every chunk has completed and this call has
  // returned; the state must outlive such stragglers. Once all chunks are
  // done a straggler only reads next_chunk — it never dereferences `body`,
  // which dies with this frame.
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->num_chunks = std::min(threads, n);
  state->body = &body;
  state->chunk_bad_index.assign(state->num_chunks, kNoError);
  state->chunk_status.assign(state->num_chunks, Status::OK());

  // The caller is one worker; borrow the rest from the pool. Helpers that
  // arrive after all chunks are claimed exit immediately.
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();
  const size_t helpers = std::min(state->num_chunks - 1, pool.num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([state] { RunChunks(state.get()); });
  }
  RunChunks(state.get());
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->all_done.wait(lock, [&] {
      return state->chunks_done == state->num_chunks;
    });
  }

  // First-error semantics: report the smallest failing index's status.
  size_t best_chunk = kNoError;
  for (size_t c = 0; c < state->num_chunks; ++c) {
    if (state->chunk_bad_index[c] == kNoError) continue;
    if (best_chunk == kNoError ||
        state->chunk_bad_index[c] < state->chunk_bad_index[best_chunk]) {
      best_chunk = c;
    }
  }
  if (best_chunk != kNoError) return state->chunk_status[best_chunk];
  return Status::OK();
}

}  // namespace midas
