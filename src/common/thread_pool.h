#ifndef MIDAS_COMMON_THREAD_POOL_H_
#define MIDAS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace midas {

/// \brief Fixed-size thread pool shared by the parallel stages of the MOQP
/// pipeline (candidate cost prediction, NSGA offspring evaluation, bagging
/// ensemble training, Pareto front extraction).
///
/// Deliberately work-stealing-free: tasks are drained FIFO from one queue,
/// and ParallelFor (below) assigns work by deterministic static chunking,
/// so a computation's result never depends on which worker ran which chunk.
/// Workers are created once at construction and joined at destruction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw (ParallelFor wraps its chunk
  /// runners in a catch-all; do the same for hand-submitted work).
  void Submit(std::function<void()> task);

  /// Process-wide shared pool, created on first use. Sized generously
  /// (max of the configured default parallelism and the hardware
  /// concurrency) so per-call thread-count overrides above the default
  /// still gain real workers where the hardware has them.
  static ThreadPool& Default();

  /// Default worker count used when a caller passes `threads == 0`:
  /// the value set via SetDefaultThreadCount, else the MIDAS_THREADS
  /// environment variable, else std::thread::hardware_concurrency().
  /// Always at least 1.
  static size_t DefaultThreadCount();

  /// Overrides the process-wide default parallelism (the `threads == 0`
  /// meaning) for subsequent calls. Does not resize an already-created
  /// Default() pool: parallelism beyond the pool's worker count degrades
  /// gracefully to queueing.
  static void SetDefaultThreadCount(size_t n);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

struct ParallelForOptions {
  /// Number of concurrent chunks: 1 runs inline on the caller (exact
  /// serial semantics, no pool involvement), 0 uses
  /// ThreadPool::DefaultThreadCount(), anything else caps the chunk
  /// concurrency at that many workers (the caller always participates).
  size_t threads = 0;
  /// Pool to borrow workers from; nullptr means ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

/// \brief Invokes `body(i)` for every i in [0, n) and returns the first
/// error in *index order* (the error the equivalent serial loop would have
/// returned), or OK.
///
/// Guarantees, at any thread count:
///   - deterministic chunking: [0, n) is split into contiguous chunks whose
///     boundaries depend only on n and the resolved thread count, and each
///     chunk runs its indices in ascending order;
///   - disjoint writes by index slot compose into results that are
///     bit-identical to the serial loop, because `body` receives exactly
///     the same index set regardless of scheduling;
///   - first-error semantics: once some index fails, higher chunks stop
///     early, and the error reported is the one with the smallest failing
///     index (identical to the serial loop's, since all lower indices
///     succeeded);
///   - exceptions escaping `body` are captured and converted to
///     Status::Internal — nothing propagates across the pool boundary.
///
/// The caller participates in chunk execution, so nested ParallelFor calls
/// (e.g. bagging inside a parallel cost-prediction loop) cannot deadlock
/// even when every pool worker is busy.
Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                   const ParallelForOptions& options = ParallelForOptions());

}  // namespace midas

#endif  // MIDAS_COMMON_THREAD_POOL_H_
