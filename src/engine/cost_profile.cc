#include "engine/cost_profile.h"

namespace midas {

CostProfile DefaultCostProfile(EngineKind kind) {
  CostProfile p;
  switch (kind) {
    case EngineKind::kHive:
      // MapReduce job launch dominates short queries; scan-heavy engine.
      p.startup_seconds = 12.0;
      p.scan_mib_per_second = 60.0;
      p.cpu_tuple_seconds = 3e-6;
      p.join_tuple_seconds = 8e-6;
      p.materialize_mib_per_second = 80.0;
      p.serial_fraction = 0.08;
      p.distributed = true;
      break;
    case EngineKind::kPostgres:
      // Instant start, fast tuples, single node.
      p.startup_seconds = 0.05;
      p.scan_mib_per_second = 220.0;
      p.cpu_tuple_seconds = 8e-7;
      p.join_tuple_seconds = 2e-6;
      p.materialize_mib_per_second = 300.0;
      p.serial_fraction = 1.0;  // irrelevant: not distributed
      p.distributed = false;
      break;
    case EngineKind::kSpark:
      // In-memory distributed engine, modest startup.
      p.startup_seconds = 3.0;
      p.scan_mib_per_second = 150.0;
      p.cpu_tuple_seconds = 1.2e-6;
      p.join_tuple_seconds = 3e-6;
      p.materialize_mib_per_second = 250.0;
      p.serial_fraction = 0.05;
      p.distributed = true;
      break;
  }
  return p;
}

double EffectiveParallelism(const CostProfile& profile, int nodes) {
  if (!profile.distributed || nodes <= 1) return 1.0;
  const double n = nodes;
  return n / (1.0 + profile.serial_fraction * (n - 1.0));
}

}  // namespace midas
