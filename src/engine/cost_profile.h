#ifndef MIDAS_ENGINE_COST_PROFILE_H_
#define MIDAS_ENGINE_COST_PROFILE_H_

#include "federation/engine_kind.h"

namespace midas {

/// \brief Analytical cost parameters of one execution engine.
///
/// Calibrated to the qualitative behaviour of the paper's engines:
/// Hive pays a large MapReduce job-startup latency but scans scale out;
/// PostgreSQL starts instantly, processes tuples fast, but is single-node;
/// Spark sits in between with in-memory rates and modest startup.
struct CostProfile {
  /// Fixed latency to launch a job/session on this engine (seconds).
  double startup_seconds = 0.0;
  /// Sequential scan throughput per worker node (MiB/s).
  double scan_mib_per_second = 100.0;
  /// CPU cost per tuple flowing through a unary operator (seconds).
  double cpu_tuple_seconds = 1e-6;
  /// CPU cost per produced join output tuple (seconds).
  double join_tuple_seconds = 4e-6;
  /// Intermediate materialisation / shuffle throughput (MiB/s).
  double materialize_mib_per_second = 200.0;
  /// Serial fraction for Amdahl scaling; effective parallelism of n nodes
  /// is n / (1 + serial_fraction * (n - 1)).
  double serial_fraction = 0.05;
  /// Engines that cannot scale out ignore num_nodes for compute.
  bool distributed = true;
};

/// Reference profile for each engine kind.
CostProfile DefaultCostProfile(EngineKind kind);

/// Effective speedup of `nodes` workers under the profile's Amdahl model
/// (>= 1; exactly 1 for non-distributed engines).
double EffectiveParallelism(const CostProfile& profile, int nodes);

}  // namespace midas

#endif  // MIDAS_ENGINE_COST_PROFILE_H_
