#include "engine/simulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "exec/lower.h"
#include "tpch/table_provider.h"

namespace midas {

namespace {
constexpr double kBytesPerMib = 1024.0 * 1024.0;
constexpr double kGoldenAngle = 2.399963229728653;  // de-correlates site phases
}  // namespace

ExecutionSimulator::ExecutionSimulator(const Federation* federation,
                                       const Catalog* catalog,
                                       SimulatorOptions options)
    : federation_(federation), catalog_(catalog), options_(options) {
  for (int k = 0; k < kNumEngineKinds; ++k) {
    profiles_[k] = DefaultCostProfile(static_cast<EngineKind>(k));
  }
  const size_t n_sites = federation_ ? federation_->num_sites() : 0;
  site_variance_.reserve(n_sites);
  for (size_t s = 0; s < n_sites; ++s) {
    VarianceOptions site_opts = options_.variance;
    site_opts.drift_phase += kGoldenAngle * static_cast<double>(s);
    site_variance_.emplace_back(site_opts, options_.seed + 1000 + s);
  }
  noise_ = std::make_unique<VarianceModel>(options_.variance,
                                           options_.seed + 999);
}

void ExecutionSimulator::SetProfile(EngineKind kind, CostProfile profile) {
  profiles_[static_cast<int>(kind)] = profile;
}

const CostProfile& ExecutionSimulator::profile(EngineKind kind) const {
  return profiles_[static_cast<int>(kind)];
}

StatusOr<ExecutionSimulator::BaseCosts> ExecutionSimulator::ComputeBase(
    const QueryPlan& input_plan) const {
  if (federation_ == nullptr || catalog_ == nullptr) {
    return Status::FailedPrecondition("simulator missing environment");
  }
  // Work on a copy so cardinality estimation never mutates the caller's plan.
  QueryPlan plan = input_plan;
  MIDAS_RETURN_IF_ERROR(EstimateCardinalities(*catalog_, &plan));

  BaseCosts base;
  base.sites.resize(federation_->num_sites());

  // Startup is charged once per distinct (site, engine) pair.
  std::vector<std::pair<SiteId, EngineKind>> started;

  for (const PlanNode* node : plan.Nodes()) {
    if (!node->site.has_value() || !node->engine.has_value()) {
      return Status::InvalidArgument(
          "plan node lacks physical annotations (run the enumerator first)");
    }
    const SiteId site = *node->site;
    if (site >= base.sites.size()) {
      return Status::OutOfRange("plan references unknown site");
    }
    const CostProfile& prof = profile(*node->engine);
    const double par = EffectiveParallelism(prof, node->num_nodes);

    SiteUsage& usage = base.sites[site];
    usage.used = true;
    usage.max_nodes = std::max(usage.max_nodes, node->num_nodes);

    const auto key = std::make_pair(site, *node->engine);
    if (std::find(started.begin(), started.end(), key) == started.end()) {
      started.push_back(key);
      usage.busy_seconds += prof.startup_seconds;
    }

    double op_seconds = 0.0;
    switch (node->kind) {
      case OperatorKind::kScan:
        op_seconds =
            node->output_bytes / (prof.scan_mib_per_second * kBytesPerMib) +
            node->output_rows * prof.cpu_tuple_seconds;
        break;
      case OperatorKind::kFilter:
        op_seconds =
            node->children[0]->output_rows * prof.cpu_tuple_seconds;
        break;
      case OperatorKind::kProject:
        op_seconds =
            node->children[0]->output_rows * prof.cpu_tuple_seconds * 0.5;
        break;
      case OperatorKind::kJoin: {
        const PlanNode& l = *node->children[0];
        const PlanNode& r = *node->children[1];
        op_seconds =
            (l.output_rows + r.output_rows) * prof.cpu_tuple_seconds +
            node->output_rows * prof.join_tuple_seconds +
            (l.output_bytes + r.output_bytes) /
                (prof.materialize_mib_per_second * kBytesPerMib);
        break;
      }
      case OperatorKind::kAggregate:
        op_seconds =
            node->children[0]->output_rows * prof.cpu_tuple_seconds * 1.5;
        break;
      case OperatorKind::kSort:
        op_seconds =
            node->children[0]->output_rows * prof.cpu_tuple_seconds * 2.5;
        break;
    }
    usage.busy_seconds += op_seconds / par;

    // Inter-site data movement: consuming a child produced elsewhere.
    for (const auto& child : node->children) {
      if (!child->site.has_value()) continue;
      const SiteId from = *child->site;
      if (from == site) continue;
      MIDAS_ASSIGN_OR_RETURN(
          double xfer_s,
          federation_->network().TransferSeconds(from, site,
                                                 child->output_bytes));
      MIDAS_ASSIGN_OR_RETURN(
          double xfer_cost,
          federation_->network().TransferCost(from, site,
                                              child->output_bytes));
      base.transfer_seconds += xfer_s;
      base.transfer_dollars += xfer_cost;
      base.bytes_transferred += child->output_bytes;
    }
  }
  return base;
}

Status ExecutionSimulator::EnsureProvider() const {
  if (provider_ != nullptr) return Status::OK();
  if (catalog_ == nullptr) {
    return Status::FailedPrecondition("simulator missing catalog");
  }
  table_cache_ = options_.measured.shared_cache != nullptr
                     ? options_.measured.shared_cache
                     : std::make_shared<exec::TableCache>(
                           options_.measured.table_cache_bytes);
  provider_ = std::make_unique<tpch::CachedTableProvider>(
      tpch::DbGen(*catalog_, options_.measured.data_seed), table_cache_,
      options_.measured.max_rows_per_table);
  return Status::OK();
}

StatusOr<exec::ExecResult> ExecutionSimulator::ExecuteMeasured(
    const QueryPlan& plan) const {
  if (catalog_ == nullptr) {
    return Status::FailedPrecondition("simulator missing catalog");
  }
  MIDAS_RETURN_IF_ERROR(EnsureProvider());
  exec::LowerOptions lower_opts;
  lower_opts.max_rows_per_table = options_.measured.max_rows_per_table;
  MIDAS_ASSIGN_OR_RETURN(exec::LoweredPlan lowered,
                         exec::LowerPlan(*catalog_, plan, lower_opts));
  exec::ExecOptions exec_opts;
  exec_opts.batch_rows = options_.measured.batch_rows;
  exec_opts.engine = options_.measured.use_row_oracle
                         ? exec::EngineKindExec::kRowOracle
                         : exec::EngineKindExec::kVectorized;
  return exec::ExecutePlan(lowered, provider_.get(), exec_opts);
}

StatusOr<ExecutionSimulator::BaseCosts>
ExecutionSimulator::ComputeMeasuredBase(const QueryPlan& plan) const {
  if (federation_ == nullptr || catalog_ == nullptr) {
    return Status::FailedPrecondition("simulator missing environment");
  }
  MIDAS_ASSIGN_OR_RETURN(exec::ExecResult result, ExecuteMeasured(plan));

  const std::vector<const PlanNode*> nodes = plan.Nodes();
  if (result.stats.size() != nodes.size()) {
    return Status::Internal("measured stats/plan node count mismatch");
  }
  std::unordered_map<const PlanNode*, size_t> node_index;
  node_index.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) node_index[nodes[i]] = i;

  // The reference profile the measured host stands in for: an operator's
  // measured self-time is scaled by how much slower (or faster) the plan's
  // engine is than the reference at that operator class.
  const CostProfile reference;

  BaseCosts base;
  base.sites.resize(federation_->num_sites());
  base.result_digest = result.digest;
  std::vector<std::pair<SiteId, EngineKind>> started;

  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode* node = nodes[i];
    if (!node->site.has_value() || !node->engine.has_value()) {
      return Status::InvalidArgument(
          "plan node lacks physical annotations (run the enumerator first)");
    }
    const SiteId site = *node->site;
    if (site >= base.sites.size()) {
      return Status::OutOfRange("plan references unknown site");
    }
    const CostProfile& prof = profile(*node->engine);
    const double par = EffectiveParallelism(prof, node->num_nodes);

    SiteUsage& usage = base.sites[site];
    usage.used = true;
    usage.max_nodes = std::max(usage.max_nodes, node->num_nodes);

    const auto key = std::make_pair(site, *node->engine);
    if (std::find(started.begin(), started.end(), key) == started.end()) {
      started.push_back(key);
      usage.busy_seconds += prof.startup_seconds;
    }

    double throttle = 1.0;
    switch (node->kind) {
      case OperatorKind::kScan:
        throttle = reference.scan_mib_per_second / prof.scan_mib_per_second;
        break;
      case OperatorKind::kJoin:
        throttle = prof.join_tuple_seconds / reference.join_tuple_seconds;
        break;
      default:
        throttle = prof.cpu_tuple_seconds / reference.cpu_tuple_seconds;
        break;
    }
    usage.busy_seconds += result.stats[i].seconds * throttle / par;

    // Inter-site movement charges what the child actually produced.
    for (const auto& child : node->children) {
      if (!child->site.has_value()) continue;
      const SiteId from = *child->site;
      if (from == site) continue;
      const double bytes = result.stats[node_index.at(child.get())].output_bytes;
      MIDAS_ASSIGN_OR_RETURN(
          double xfer_s,
          federation_->network().TransferSeconds(from, site, bytes));
      MIDAS_ASSIGN_OR_RETURN(
          double xfer_cost,
          federation_->network().TransferCost(from, site, bytes));
      base.transfer_seconds += xfer_s;
      base.transfer_dollars += xfer_cost;
      base.bytes_transferred += bytes;
    }
  }
  return base;
}

StatusOr<ExecutionSimulator::BaseCosts>
ExecutionSimulator::ComputeBaseForSource(const QueryPlan& plan) const {
  return options_.cost_source == CostSource::kMeasured
             ? ComputeMeasuredBase(plan)
             : ComputeBase(plan);
}

StatusOr<Measurement> ExecutionSimulator::Assemble(
    const BaseCosts& base, const std::vector<double>& load_factors,
    double noise, int64_t timestamp) const {
  double makespan = base.transfer_seconds;
  for (size_t s = 0; s < base.sites.size(); ++s) {
    makespan += base.sites[s].busy_seconds * load_factors[s];
  }
  makespan *= noise;

  // Per-second pay-per-use billing: a site's VMs are billed only while
  // that site computes (its loaded busy time), not for the full federated
  // makespan — the elasticity modern providers bill at.
  double dollars = base.transfer_dollars;
  for (size_t s = 0; s < base.sites.size(); ++s) {
    if (!base.sites[s].used) continue;
    MIDAS_ASSIGN_OR_RETURN(const CloudSite* site, federation_->site(s));
    const double billed_seconds =
        base.sites[s].busy_seconds * load_factors[s] * noise;
    MIDAS_ASSIGN_OR_RETURN(
        double vm_cost,
        site->VmCost(base.sites[s].max_nodes, billed_seconds));
    dollars += vm_cost;
  }

  Measurement m;
  m.seconds = makespan;
  m.dollars = dollars;
  m.bytes_transferred = base.bytes_transferred;
  m.timestamp = timestamp;
  m.result_digest = base.result_digest;
  return m;
}

StatusOr<Measurement> ExecutionSimulator::Execute(const QueryPlan& plan) {
  MIDAS_ASSIGN_OR_RETURN(BaseCosts base, ComputeBaseForSource(plan));
  const double t = static_cast<double>(clock_);
  std::vector<double> load(federation_->num_sites(), 1.0);
  double noise = 1.0;
  if (options_.stochastic) {
    for (size_t s = 0; s < site_variance_.size(); ++s) {
      load[s] = site_variance_[s].LoadFactor(t);
    }
    noise = noise_->NoiseMultiplier();
  } else {
    for (size_t s = 0; s < site_variance_.size(); ++s) {
      load[s] = site_variance_[s].SeasonalFactor(t);
    }
  }
  MIDAS_ASSIGN_OR_RETURN(Measurement m, Assemble(base, load, noise, clock_));
  ++clock_;
  return m;
}

StatusOr<Measurement> ExecutionSimulator::ExpectedCostAt(
    const QueryPlan& plan, int64_t timestamp) const {
  MIDAS_ASSIGN_OR_RETURN(BaseCosts base, ComputeBaseForSource(plan));
  std::vector<double> load(federation_->num_sites(), 1.0);
  for (size_t s = 0; s < site_variance_.size(); ++s) {
    load[s] = site_variance_[s].SeasonalFactor(static_cast<double>(timestamp));
  }
  return Assemble(base, load, 1.0, timestamp);
}

}  // namespace midas
