#ifndef MIDAS_ENGINE_SIMULATOR_H_
#define MIDAS_ENGINE_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cost_profile.h"
#include "engine/variance.h"
#include "federation/federation.h"
#include "query/plan.h"

namespace midas {

/// \brief What one (simulated) execution of a QEP produced — the multi-metric
/// observation DREAM and the Modelling module learn from.
struct Measurement {
  /// End-to-end execution time of the plan (seconds).
  double seconds = 0.0;
  /// Pay-as-you-go monetary cost: VM rental for the makespan at every
  /// participating site plus inter-cloud egress (dollars).
  double dollars = 0.0;
  /// Total bytes moved between sites (the "intermediate data" metric).
  double bytes_transferred = 0.0;
  /// Logical time of the execution.
  int64_t timestamp = 0;
};

struct SimulatorOptions {
  VarianceOptions variance;
  uint64_t seed = 42;
  /// When false the simulator returns expected (seasonal-only) costs and
  /// draws no randomness — useful for deterministic tests.
  bool stochastic = true;
};

/// \brief Analytical multi-engine execution simulator.
///
/// Substitutes for the paper's private cloud (see DESIGN.md): walks an
/// annotated physical plan, charges per-operator compute at the operator's
/// engine profile with Amdahl-scaled parallelism, charges network transfer
/// whenever an operator consumes a child that ran at another site, applies
/// the per-site load drift + noise model, and prices the run with the
/// pay-as-you-go model of the plan's sites.
class ExecutionSimulator {
 public:
  ExecutionSimulator(const Federation* federation, const Catalog* catalog,
                     SimulatorOptions options = SimulatorOptions());

  /// Executes the plan "now", advancing the logical clock by one query.
  StatusOr<Measurement> Execute(const QueryPlan& plan);

  /// Expected cost at the given logical time: seasonal drift only, no AR
  /// state advance, no noise. Ground truth for accuracy metrics.
  StatusOr<Measurement> ExpectedCostAt(const QueryPlan& plan,
                                       int64_t timestamp) const;

  int64_t now() const { return clock_; }
  void AdvanceClock(int64_t delta) { clock_ += delta; }

  /// Overrides an engine's cost profile (tests / what-if studies).
  void SetProfile(EngineKind kind, CostProfile profile);
  const CostProfile& profile(EngineKind kind) const;

 private:
  struct SiteUsage {
    double busy_seconds = 0.0;  // noise-free compute attributed to the site
    int max_nodes = 0;          // VMs the plan holds at the site
    bool used = false;
  };
  struct BaseCosts {
    std::vector<SiteUsage> sites;
    double transfer_seconds = 0.0;
    double transfer_dollars = 0.0;
    double bytes_transferred = 0.0;
  };

  /// Noise-free per-site cost breakdown of a plan.
  StatusOr<BaseCosts> ComputeBase(const QueryPlan& plan) const;

  StatusOr<Measurement> Assemble(const BaseCosts& base,
                                 const std::vector<double>& load_factors,
                                 double noise, int64_t timestamp) const;

  const Federation* federation_;
  const Catalog* catalog_;
  SimulatorOptions options_;
  std::array<CostProfile, kNumEngineKinds> profiles_;
  std::vector<VarianceModel> site_variance_;  // one per federation site
  mutable std::unique_ptr<VarianceModel> noise_;
  int64_t clock_ = 0;
};

}  // namespace midas

#endif  // MIDAS_ENGINE_SIMULATOR_H_
