#ifndef MIDAS_ENGINE_SIMULATOR_H_
#define MIDAS_ENGINE_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cost_profile.h"
#include "engine/variance.h"
#include "exec/engine.h"
#include "exec/table_cache.h"
#include "federation/federation.h"
#include "query/plan.h"

namespace midas {

/// \brief What one (simulated) execution of a QEP produced — the multi-metric
/// observation DREAM and the Modelling module learn from.
struct Measurement {
  /// End-to-end execution time of the plan (seconds).
  double seconds = 0.0;
  /// Pay-as-you-go monetary cost: VM rental for the makespan at every
  /// participating site plus inter-cloud egress (dollars).
  double dollars = 0.0;
  /// Total bytes moved between sites (the "intermediate data" metric).
  double bytes_transferred = 0.0;
  /// Logical time of the execution.
  int64_t timestamp = 0;
  /// Order-sensitive digest of the query's result table. Zero in
  /// analytical mode (nothing executes); in measured mode it lets callers
  /// assert result identity (across batch sizes, engines, plan variants)
  /// while wall-clock costs legitimately vary.
  uint64_t result_digest = 0;
};

/// Where per-operator base costs come from.
enum class CostSource {
  /// Closed-form per-operator formulas over estimated cardinalities (the
  /// fast path — no data is materialized).
  kAnalytical,
  /// Really run the plan on the columnar execution engine over
  /// deterministic synthetic data, then scale each operator's *measured*
  /// self-time by its engine profile (see MeasuredOptions).
  kMeasured,
};

/// Knobs for CostSource::kMeasured.
struct MeasuredOptions {
  /// Rows per batch in the vectorized engine. Results are bit-identical
  /// at any value; throughput peaks around a few thousand.
  size_t batch_rows = 4096;
  /// Run the row-at-a-time reference interpreter instead of the
  /// vectorized engine (orders of magnitude slower; for validation).
  bool use_row_oracle = false;
  /// Seed of the deterministic data generator backing the scans.
  uint64_t data_seed = 2019;
  /// Caps rows materialized per base table (0 = full catalog
  /// cardinality). Applied identically to lowering and materialization.
  uint64_t max_rows_per_table = 0;
  /// Byte budget of the simulator-owned table cache (ignored when
  /// `shared_cache` is set).
  size_t table_cache_bytes = 512ull << 20;
  /// Optional cache shared across simulators, pooling the byte budget.
  std::shared_ptr<exec::TableCache> shared_cache;
};

struct SimulatorOptions {
  VarianceOptions variance;
  uint64_t seed = 42;
  /// When false the simulator returns expected (seasonal-only) costs and
  /// draws no randomness — useful for deterministic tests.
  bool stochastic = true;
  CostSource cost_source = CostSource::kAnalytical;
  MeasuredOptions measured;
};

/// \brief Analytical multi-engine execution simulator.
///
/// Substitutes for the paper's private cloud (see DESIGN.md): walks an
/// annotated physical plan, charges per-operator compute at the operator's
/// engine profile with Amdahl-scaled parallelism, charges network transfer
/// whenever an operator consumes a child that ran at another site, applies
/// the per-site load drift + noise model, and prices the run with the
/// pay-as-you-go model of the plan's sites.
class ExecutionSimulator {
 public:
  ExecutionSimulator(const Federation* federation, const Catalog* catalog,
                     SimulatorOptions options = SimulatorOptions());

  /// Executes the plan "now", advancing the logical clock by one query.
  StatusOr<Measurement> Execute(const QueryPlan& plan);

  /// Expected cost at the given logical time: seasonal drift only, no AR
  /// state advance, no noise. Ground truth for accuracy metrics.
  StatusOr<Measurement> ExpectedCostAt(const QueryPlan& plan,
                                       int64_t timestamp) const;

  int64_t now() const { return clock_; }
  void AdvanceClock(int64_t delta) { clock_ += delta; }

  /// Overrides an engine's cost profile (tests / what-if studies).
  void SetProfile(EngineKind kind, CostProfile profile);
  const CostProfile& profile(EngineKind kind) const;

  /// Runs `plan` for real on the execution engine chosen by
  /// options.measured (vectorized or row oracle) over deterministic
  /// synthetic data, returning the full per-operator result — the detailed
  /// view behind measured mode, exposed for tests and benchmarks. Works
  /// regardless of cost_source and leaves clock/variance state untouched.
  StatusOr<exec::ExecResult> ExecuteMeasured(const QueryPlan& plan) const;

  /// The table cache backing measured execution (nullptr until the first
  /// measured run) — for cache-behaviour assertions.
  const exec::TableCache* table_cache() const { return table_cache_.get(); }

 private:
  struct SiteUsage {
    double busy_seconds = 0.0;  // noise-free compute attributed to the site
    int max_nodes = 0;          // VMs the plan holds at the site
    bool used = false;
  };
  struct BaseCosts {
    std::vector<SiteUsage> sites;
    double transfer_seconds = 0.0;
    double transfer_dollars = 0.0;
    double bytes_transferred = 0.0;
    uint64_t result_digest = 0;  // measured mode only
  };

  /// Noise-free per-site cost breakdown of a plan.
  StatusOr<BaseCosts> ComputeBase(const QueryPlan& plan) const;

  /// Measured-mode counterpart: executes the plan, then charges each
  /// operator its measured self-time scaled by the engine profile's
  /// slowdown relative to the reference profile, Amdahl-divided across the
  /// node's VMs; transfers charge the *measured* child output bytes.
  StatusOr<BaseCosts> ComputeMeasuredBase(const QueryPlan& plan) const;

  /// Dispatches on options_.cost_source.
  StatusOr<BaseCosts> ComputeBaseForSource(const QueryPlan& plan) const;

  Status EnsureProvider() const;

  StatusOr<Measurement> Assemble(const BaseCosts& base,
                                 const std::vector<double>& load_factors,
                                 double noise, int64_t timestamp) const;

  const Federation* federation_;
  const Catalog* catalog_;
  SimulatorOptions options_;
  std::array<CostProfile, kNumEngineKinds> profiles_;
  std::vector<VarianceModel> site_variance_;  // one per federation site
  mutable std::unique_ptr<VarianceModel> noise_;
  // Measured-mode machinery, built lazily on the first measured run (const
  // methods may trigger it, hence mutable).
  mutable std::shared_ptr<exec::TableCache> table_cache_;
  mutable std::unique_ptr<exec::TableProvider> provider_;
  int64_t clock_ = 0;
};

}  // namespace midas

#endif  // MIDAS_ENGINE_SIMULATOR_H_
