#include "engine/variance.h"

#include <algorithm>
#include <cmath>

namespace midas {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kMinLoad = 0.05;
}  // namespace

VarianceModel::VarianceModel(VarianceOptions options, uint64_t seed)
    : options_(options), rng_(seed) {}

double VarianceModel::SeasonalFactor(double t) const {
  if (options_.drift_amplitude == 0.0 || options_.drift_period <= 0.0) {
    return 1.0;
  }
  return 1.0 + options_.drift_amplitude *
                   std::sin(kTwoPi * t / options_.drift_period +
                            options_.drift_phase);
}

double VarianceModel::LoadFactor(double t) {
  // Advance the AR(1) log-state one step.
  if (options_.ar_sigma > 0.0) {
    ar_log_state_ = options_.ar_coefficient * ar_log_state_ +
                    rng_.Gaussian(0.0, options_.ar_sigma);
  }
  const double factor = SeasonalFactor(t) * std::exp(ar_log_state_);
  return std::max(kMinLoad, factor);
}

double VarianceModel::NoiseMultiplier() {
  if (options_.noise_sigma <= 0.0) return 1.0;
  // Mean-one log-normal: E[exp(N(mu, s^2))] = exp(mu + s^2/2) = 1.
  const double mu = -0.5 * options_.noise_sigma * options_.noise_sigma;
  return rng_.LogNormal(mu, options_.noise_sigma);
}

}  // namespace midas
