#ifndef MIDAS_ENGINE_VARIANCE_H_
#define MIDAS_ENGINE_VARIANCE_H_

#include <cstdint>

#include "common/random.h"

namespace midas {

/// \brief Parameters of the cloud variance model.
///
/// A cloud federation's performance is non-stationary (§1: load evolution,
/// multi-tenancy, wide-range communications). We model the slowdown of a
/// site at logical time t as
///
///   load(t) = (1 + A sin(2π t / P + φ)) · ar(t)
///
/// — a seasonal component (diurnal load waves) times a smooth AR(1) random
/// walk (unpredictable medium-term congestion) — and each individual
/// execution additionally draws a mean-one log-normal noise multiplier
/// (measurement-level jitter). Setting amplitude and sigmas to zero yields
/// a stationary, deterministic environment (ablation A2).
struct VarianceOptions {
  /// Per-execution multiplicative noise: sigma of the underlying normal.
  /// Run-to-run jitter of a dedicated cluster is a few percent.
  double noise_sigma = 0.05;
  /// Seasonal amplitude A (fraction of the mean; 0.5 = ±50% swings —
  /// multi-tenant clouds routinely show 2x diurnal slowdowns).
  double drift_amplitude = 0.5;
  /// Seasonal period P in logical time units (one unit = one query).
  double drift_period = 100.0;
  /// Seasonal phase φ in radians (sites get distinct phases).
  double drift_phase = 0.0;
  /// AR(1) smoothing coefficient in [0, 1); closer to 1 = slower drift.
  double ar_coefficient = 0.9;
  /// Innovation sigma of the AR(1) log-process.
  double ar_sigma = 0.06;
};

/// \brief Stateful load/noise generator for one site.
class VarianceModel {
 public:
  VarianceModel(VarianceOptions options, uint64_t seed);

  /// Multiplicative slowdown at logical time t. Calling with increasing t
  /// advances the AR(1) state one step per call. Always >= 0.05.
  double LoadFactor(double t);

  /// Mean-one log-normal execution jitter.
  double NoiseMultiplier();

  /// Expected (noise-free, AR-free) seasonal factor at time t — the
  /// "ground truth" component a perfect estimator could learn.
  double SeasonalFactor(double t) const;

  const VarianceOptions& options() const { return options_; }

 private:
  VarianceOptions options_;
  Rng rng_;
  double ar_log_state_ = 0.0;
};

}  // namespace midas

#endif  // MIDAS_ENGINE_VARIANCE_H_
