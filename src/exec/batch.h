#ifndef MIDAS_EXEC_BATCH_H_
#define MIDAS_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "exec/column.h"

namespace midas {
namespace exec {

/// \brief A read-only view of one column's slice inside a Batch.
///
/// Points either into a materialized base table (zero-copy scan slices) or
/// into batch-owned output columns; the owning Batch keeps the backing
/// storage alive. String offsets are absolute arena positions, so a slice
/// is just the offsets pointer advanced to the slice start with the arena
/// base unchanged.
struct ColumnVector {
  ColumnType type = ColumnType::kInt;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint32_t* offsets = nullptr;  // rows + 1 entries when string-like
  const char* arena = nullptr;

  bool is_string_like() const {
    return type == ColumnType::kString || type == ColumnType::kDate;
  }

  std::string_view StringAt(size_t i) const {
    return std::string_view(arena + offsets[i], offsets[i + 1] - offsets[i]);
  }

  /// Full view over a materialized column.
  static ColumnVector Over(const Column& column) {
    return Slice(column, 0);
  }

  /// View starting at row `begin` of a materialized column.
  static ColumnVector Slice(const Column& column, size_t begin) {
    ColumnVector v;
    v.type = column.type();
    switch (column.type()) {
      case ColumnType::kInt:
        v.ints = column.IntData() + begin;
        break;
      case ColumnType::kDouble:
        v.doubles = column.DoubleData() + begin;
        break;
      default:
        v.offsets = column.Offsets() + begin;
        v.arena = column.Arena();
        break;
    }
    return v;
  }
};

/// \brief The unit of work the vectorized operators exchange: a horizontal
/// slice of rows as per-column vectors plus the shared ownership that keeps
/// the vectors' backing storage alive while the batch is in flight.
struct Batch {
  size_t rows = 0;
  std::vector<ColumnVector> cols;
  /// Keep-alives: owned output columns, the scanned base table, the join
  /// build side — whatever the views point into.
  std::vector<std::shared_ptr<const void>> refs;

  /// Appends `column` as an owned column view and keeps it alive.
  void AddOwned(std::shared_ptr<const Column> column) {
    cols.push_back(ColumnVector::Over(*column));
    refs.push_back(std::move(column));
  }

  /// Measured payload bytes of the batch (actual data, not estimates):
  /// 8 bytes per numeric cell, arena span + offset entry per string cell.
  double PayloadBytes() const {
    double total = 0.0;
    for (const ColumnVector& c : cols) {
      if (c.is_string_like()) {
        total += static_cast<double>(c.offsets[rows] - c.offsets[0]) +
                 static_cast<double>(rows) * sizeof(uint32_t);
      } else {
        total += static_cast<double>(rows) * 8.0;
      }
    }
    return total;
  }
};

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_BATCH_H_
