#include "exec/column.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace midas {
namespace exec {

void Column::AppendString(std::string_view v) {
  // The arena indexes with 32-bit offsets (half the bandwidth of 64-bit on
  // the gather paths). Overflow needs a >4 GiB single column — far beyond
  // the simulator's working scales — so treat it as a hard logic error.
  if (arena_.size() + v.size() > static_cast<size_t>(UINT32_MAX)) {
    std::cerr << "exec::Column arena overflow (>4 GiB string column)\n";
    std::abort();
  }
  arena_.insert(arena_.end(), v.begin(), v.end());
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
}

StatusOr<size_t> ExecSchema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no such column in operator schema: " + name);
}

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t ResultDigest(const ColumnTable& table) {
  uint64_t h = kFnvOffset;
  const uint64_t rows = table.rows;
  h = FnvBytes(h, &rows, sizeof(rows));
  for (uint64_t r = 0; r < rows; ++r) {
    for (const Column& col : table.columns) {
      const auto tag = static_cast<unsigned char>(col.type());
      h = FnvBytes(h, &tag, 1);
      switch (col.type()) {
        case ColumnType::kInt: {
          const int64_t v = col.IntAt(r);
          h = FnvBytes(h, &v, sizeof(v));
          break;
        }
        case ColumnType::kDouble: {
          const double v = col.DoubleAt(r);
          h = FnvBytes(h, &v, sizeof(v));
          break;
        }
        default: {
          const std::string_view v = col.StringAt(r);
          const uint64_t len = v.size();
          h = FnvBytes(h, &len, sizeof(len));
          h = FnvBytes(h, v.data(), v.size());
          break;
        }
      }
    }
  }
  return h;
}

}  // namespace exec
}  // namespace midas
