#ifndef MIDAS_EXEC_COLUMN_H_
#define MIDAS_EXEC_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "query/schema.h"

namespace midas {
namespace exec {

/// \brief One typed contiguous column of values.
///
/// Storage is a flat 64-byte-aligned array per type (common/aligned.h), so
/// batch kernels stream cache lines instead of chasing `std::variant` cells:
///   kInt    -> int64_t values
///   kDouble -> double values
///   kString / kDate -> a shared character arena plus row offsets
///     (value i spans arena[offsets[i], offsets[i+1])); dates keep their
///     ISO-8601 text form, which compares correctly as bytes.
class Column {
 public:
  explicit Column(ColumnType type = ColumnType::kInt) : type_(type) {
    if (is_string_like()) offsets_.push_back(0);
  }

  ColumnType type() const { return type_; }
  bool is_string_like() const {
    return type_ == ColumnType::kString || type_ == ColumnType::kDate;
  }

  size_t size() const {
    switch (type_) {
      case ColumnType::kInt:
        return ints_.size();
      case ColumnType::kDouble:
        return doubles_.size();
      default:
        return offsets_.size() - 1;
    }
  }

  /// Bytes resident in the column's buffers (capacity-independent: counts
  /// stored values, which is what the table cache accounts).
  size_t ByteSize() const {
    switch (type_) {
      case ColumnType::kInt:
        return ints_.size() * sizeof(int64_t);
      case ColumnType::kDouble:
        return doubles_.size() * sizeof(double);
      default:
        return arena_.size() + offsets_.size() * sizeof(uint32_t);
    }
  }

  void Reserve(size_t rows, size_t arena_bytes = 0) {
    switch (type_) {
      case ColumnType::kInt:
        ints_.reserve(rows);
        break;
      case ColumnType::kDouble:
        doubles_.reserve(rows);
        break;
      default:
        offsets_.reserve(rows + 1);
        arena_.reserve(arena_bytes);
        break;
    }
  }

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string_view v);

  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  std::string_view StringAt(size_t i) const {
    return std::string_view(arena_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  const int64_t* IntData() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const uint32_t* Offsets() const { return offsets_.data(); }
  const char* Arena() const { return arena_.data(); }

  bool operator==(const Column& other) const {
    return type_ == other.type_ && ints_ == other.ints_ &&
           doubles_ == other.doubles_ && offsets_ == other.offsets_ &&
           arena_ == other.arena_;
  }
  bool operator!=(const Column& other) const { return !(*this == other); }

 private:
  ColumnType type_;
  AlignedVector<int64_t> ints_;
  AlignedVector<double> doubles_;
  AlignedVector<uint32_t> offsets_;  // string-like: size() + 1 entries
  AlignedVector<char> arena_;
};

/// \brief Column metadata an operator's output carries: the name and type
/// plus the value-domain statistic predicate compilation needs (the data
/// generator draws kInt values uniformly over [1, distinct_values], so the
/// NDV doubles as the domain bound).
struct Field {
  std::string name;
  ColumnType type = ColumnType::kInt;
  uint64_t distinct_values = 1;
};

/// Output schema of an operator: ordered fields. Duplicate names are legal
/// after joins; lookups resolve to the first match.
class ExecSchema {
 public:
  ExecSchema() = default;
  explicit ExecSchema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  void Append(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the first field named `name`, or an error.
  StatusOr<size_t> FindField(const std::string& name) const;

 private:
  std::vector<Field> fields_;
};

/// \brief A fully materialized table (or operator result): one Column per
/// schema field, all the same length.
struct ColumnTable {
  ExecSchema schema;
  std::vector<Column> columns;
  uint64_t rows = 0;

  size_t ByteSize() const {
    size_t total = 0;
    for (const Column& c : columns) total += c.ByteSize();
    return total;
  }

  bool operator==(const ColumnTable& other) const {
    return rows == other.rows && columns == other.columns;
  }
};

/// Order-sensitive FNV-1a digest over the table's values in row-major
/// order (type tag + canonical bytes per cell). Two tables digest equal
/// iff they hold the same values in the same row/column order — the
/// equality the vectorized-vs-oracle and batch-size-invariance gates
/// assert; also surfaced as Measurement::result_digest in measured mode.
uint64_t ResultDigest(const ColumnTable& table);

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_COLUMN_H_
