#include "exec/engine.h"

#include "exec/row_engine.h"
#include "exec/vector_engine.h"

namespace midas {
namespace exec {

StatusOr<ExecResult> ExecutePlan(const LoweredPlan& plan,
                                 TableProvider* tables,
                                 const ExecOptions& options) {
  switch (options.engine) {
    case EngineKindExec::kVectorized:
      return ExecuteVectorized(plan, tables, options);
    case EngineKindExec::kRowOracle:
      return ExecuteRowOracle(plan, tables, options);
  }
  return Status::Internal("unhandled engine kind");
}

}  // namespace exec
}  // namespace midas
