#ifndef MIDAS_EXEC_ENGINE_H_
#define MIDAS_EXEC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/column.h"
#include "exec/lower.h"

namespace midas {
namespace exec {

/// Which interpreter runs a lowered plan.
enum class EngineKindExec {
  kVectorized,  ///< batch-at-a-time columnar operators (the fast path)
  kRowOracle,   ///< row-at-a-time reference interpreter (correctness oracle)
};

struct ExecOptions {
  /// Rows per batch in the vectorized engine (oracle ignores it — one row
  /// at a time is the point). Results are bit-identical at any value.
  size_t batch_rows = 4096;
  EngineKindExec engine = EngineKindExec::kVectorized;
};

/// Measured work of one operator, indexed by the plan node's pre-order
/// position (LoweredOp::plan_index).
struct OpStats {
  /// Self time: seconds spent in this operator's own kernels/compute,
  /// excluding time spent pulling from children. The row oracle reports
  /// whole-pipeline time on the root only (per-row timing would measure
  /// the clock, not the work).
  double seconds = 0.0;
  uint64_t output_rows = 0;
  /// Actual bytes of the operator's output (measured from the data, not
  /// from cardinality estimates) — what inter-site transfers charge for.
  double output_bytes = 0.0;
};

/// Everything one execution produced.
struct ExecResult {
  ColumnTable output;
  std::vector<OpStats> stats;  ///< size LoweredPlan::plan_nodes
  double total_seconds = 0.0;  ///< wall time of the whole pipeline
  uint64_t digest = 0;         ///< ResultDigest(output)
};

/// Materialized base tables a lowered plan executes over, looked up by the
/// scan's table name.
class TableProvider {
 public:
  virtual ~TableProvider() = default;
  virtual StatusOr<std::shared_ptr<const ColumnTable>> GetTable(
      const std::string& name) = 0;
};

/// Executes `plan` with the engine chosen in `options`. Both engines
/// consume the same lowered plan and produce value-identical output (the
/// bit-for-bit gate the test suites hold them to).
StatusOr<ExecResult> ExecutePlan(const LoweredPlan& plan,
                                 TableProvider* tables,
                                 const ExecOptions& options = ExecOptions());

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_ENGINE_H_
