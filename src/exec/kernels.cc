#include "exec/kernels.h"

#include "linalg/simd.h"

// The AVX2 select kernels live in this TU behind per-function target
// attributes (same pattern as linalg/simd_avx2.cc): the binary stays
// runnable on any x86-64 host and the tier is only taken after the linalg
// dispatcher's CPUID probe — which also honors every MIDAS_FORCE_SCALAR
// knob — says the host has it. Selection is pure compare/integer logic, so
// the vector tier is bit-identical to the scalar loops (no FP tolerance).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(MIDAS_FORCE_SCALAR)
#define MIDAS_EXEC_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace midas {
namespace exec {

namespace {

inline bool UseAvx2() {
#if defined(MIDAS_EXEC_HAVE_AVX2)
  return simd::ActiveTier() == SimdTier::kAvx2Fma;
#else
  return false;
#endif
}

size_t SelectLeInt64Scalar(const int64_t* v, size_t n, int64_t threshold,
                           uint32_t* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(v[i] <= threshold);
  }
  return k;
}

size_t SelectLeDoubleScalar(const double* v, size_t n, double threshold,
                            uint32_t* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(v[i] <= threshold);
  }
  return k;
}

#if defined(MIDAS_EXEC_HAVE_AVX2)
#define MIDAS_EXEC_AVX2 __attribute__((target("avx2")))

/// Emits the set bits of a 4-lane compare mask as ascending row indices.
MIDAS_EXEC_AVX2 inline size_t EmitMask(unsigned mask, size_t base,
                                       uint32_t* sel, size_t k) {
  while (mask != 0) {
    const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
    sel[k++] = static_cast<uint32_t>(base + lane);
    mask &= mask - 1;
  }
  return k;
}

MIDAS_EXEC_AVX2 size_t SelectLeInt64Avx2(const int64_t* v, size_t n,
                                         int64_t threshold, uint32_t* sel) {
  size_t k = 0;
  size_t i = 0;
  // v <= t  ==  !(v > t); _mm256_cmpgt_epi64 is the available predicate.
  const __m256i t = _mm256_set1_epi64x(threshold);
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i gt = _mm256_cmpgt_epi64(x, t);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(gt))) ^
        0xFu;
    k = EmitMask(mask, i, sel, k);
  }
  for (; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(v[i] <= threshold);
  }
  return k;
}

MIDAS_EXEC_AVX2 size_t SelectLeDoubleAvx2(const double* v, size_t n,
                                          double threshold, uint32_t* sel) {
  size_t k = 0;
  size_t i = 0;
  const __m256d t = _mm256_set1_pd(threshold);
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(x, t, _CMP_LE_OQ)));
    k = EmitMask(mask, i, sel, k);
  }
  for (; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(v[i] <= threshold);
  }
  return k;
}
#endif  // MIDAS_EXEC_HAVE_AVX2

}  // namespace

size_t SelectLeInt64(const int64_t* v, size_t n, int64_t threshold,
                     uint32_t* sel) {
#if defined(MIDAS_EXEC_HAVE_AVX2)
  if (UseAvx2()) return SelectLeInt64Avx2(v, n, threshold, sel);
#endif
  return SelectLeInt64Scalar(v, n, threshold, sel);
}

size_t SelectLeDouble(const double* v, size_t n, double threshold,
                      uint32_t* sel) {
#if defined(MIDAS_EXEC_HAVE_AVX2)
  if (UseAvx2()) return SelectLeDoubleAvx2(v, n, threshold, sel);
#endif
  return SelectLeDoubleScalar(v, n, threshold, sel);
}

size_t RefineLeInt64(const int64_t* v, const uint32_t* in_sel, size_t n_sel,
                     int64_t threshold, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < n_sel; ++i) {
    const uint32_t row = in_sel[i];
    out_sel[k] = row;
    k += static_cast<size_t>(v[row] <= threshold);
  }
  return k;
}

size_t RefineLeDouble(const double* v, const uint32_t* in_sel, size_t n_sel,
                      double threshold, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < n_sel; ++i) {
    const uint32_t row = in_sel[i];
    out_sel[k] = row;
    k += static_cast<size_t>(v[row] <= threshold);
  }
  return k;
}

uint64_t HashBytes(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

size_t SelectHashLeString(const uint32_t* offsets, const char* arena,
                          size_t n, uint64_t threshold, uint32_t* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = HashBytes(arena + offsets[i], offsets[i + 1] - offsets[i]);
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(h <= threshold);
  }
  return k;
}

size_t RefineHashLeString(const uint32_t* offsets, const char* arena,
                          const uint32_t* in_sel, size_t n_sel,
                          uint64_t threshold, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < n_sel; ++i) {
    const uint32_t row = in_sel[i];
    const uint64_t h =
        HashBytes(arena + offsets[row], offsets[row + 1] - offsets[row]);
    out_sel[k] = row;
    k += static_cast<size_t>(h <= threshold);
  }
  return k;
}

void GatherInt64(const int64_t* src, const uint32_t* sel, size_t n_sel,
                 int64_t* dst) {
  for (size_t i = 0; i < n_sel; ++i) dst[i] = src[sel[i]];
}

void GatherDouble(const double* src, const uint32_t* sel, size_t n_sel,
                  double* dst) {
  for (size_t i = 0; i < n_sel; ++i) dst[i] = src[sel[i]];
}

void GroupCodes(const int64_t* keys, size_t n, uint64_t num_groups,
                uint32_t* codes) {
  const int64_t g = static_cast<int64_t>(num_groups);
  for (size_t i = 0; i < n; ++i) {
    const int64_t m = keys[i] % g;
    codes[i] = static_cast<uint32_t>(m < 0 ? m + g : m);
  }
}

void CountByGroup(const uint32_t* codes, size_t n, int64_t* counts) {
  for (size_t i = 0; i < n; ++i) counts[codes[i]] += 1;
}

void SumByGroup(const double* v, const uint32_t* codes, size_t n,
                double* sums) {
  for (size_t i = 0; i < n; ++i) sums[codes[i]] += v[i];
}

}  // namespace exec
}  // namespace midas
