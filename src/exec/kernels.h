#ifndef MIDAS_EXEC_KERNELS_H_
#define MIDAS_EXEC_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace midas {
namespace exec {

/// \brief Tight batch-at-a-time kernels behind the vectorized operators.
///
/// Selection kernels write *selection vectors* — ascending row indices of
/// the qualifying rows — with branch-free `sel[k] = i; k += qualifies`
/// stores, so predicate evaluation never mispredicts on data. The AVX2 tier
/// (dispatched through the linalg SIMD layer's ActiveTier/force-scalar
/// knobs) evaluates 4 lanes per compare and emits indices from the compare
/// mask. Every kernel is pure integer/compare logic: the vector tiers
/// produce *bit-identical* selection vectors to the scalar loops — unlike
/// the floating-point GEMM tiers there is no reassociation slack here.

/// Appends indices i in [0, n) with v[i] <= threshold to sel; returns count.
size_t SelectLeInt64(const int64_t* v, size_t n, int64_t threshold,
                     uint32_t* sel);
size_t SelectLeDouble(const double* v, size_t n, double threshold,
                      uint32_t* sel);

/// Conjunction step: keeps only the already-selected rows that also
/// qualify. `in_sel` and `out_sel` may alias (in-place refinement).
size_t RefineLeInt64(const int64_t* v, const uint32_t* in_sel, size_t n_sel,
                     int64_t threshold, uint32_t* out_sel);
size_t RefineLeDouble(const double* v, const uint32_t* in_sel, size_t n_sel,
                      double threshold, uint32_t* out_sel);

/// FNV-1a over a byte span — the deterministic value hash behind
/// string/date predicates ("keep rows whose value hashes below a
/// selectivity-derived threshold").
uint64_t HashBytes(const char* data, size_t n);

/// Selection by hashed string value: keeps rows with
/// HashBytes(value) <= threshold. Offsets/arena follow the Column layout.
size_t SelectHashLeString(const uint32_t* offsets, const char* arena,
                          size_t n, uint64_t threshold, uint32_t* sel);
size_t RefineHashLeString(const uint32_t* offsets, const char* arena,
                          const uint32_t* in_sel, size_t n_sel,
                          uint64_t threshold, uint32_t* out_sel);

/// splitmix64 finalizer — the join hash for int64 keys.
inline uint64_t HashInt64(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Gathers src[sel[i]] for i in [0, n_sel) into dst.
void GatherInt64(const int64_t* src, const uint32_t* sel, size_t n_sel,
                 int64_t* dst);
void GatherDouble(const double* src, const uint32_t* sel, size_t n_sel,
                  double* dst);

/// Group codes: codes[i] = non-negative keys[i] mod num_groups (wrapped for
/// negative keys so the code is always in [0, num_groups)).
void GroupCodes(const int64_t* keys, size_t n, uint64_t num_groups,
                uint32_t* codes);

/// counts[codes[i]] += 1, ascending i.
void CountByGroup(const uint32_t* codes, size_t n, int64_t* counts);

/// sums[codes[i]] += v[i], ascending i — the accumulation order is row
/// order, which makes grouped double sums bit-identical across batch sizes
/// and to the row-at-a-time oracle.
void SumByGroup(const double* v, const uint32_t* codes, size_t n,
                double* sums);

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_KERNELS_H_
