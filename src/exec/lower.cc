#include "exec/lower.h"

#include <algorithm>
#include <cmath>

#include "exec/kernels.h"

namespace midas {
namespace exec {

namespace {

// The synthetic generator draws every kDouble cell uniformly from this
// range (tpch/dbgen.cc rounds to cents inside it); the compiled threshold
// maps a selectivity onto the same domain.
constexpr double kNumericDomainLo = 1.0;
constexpr double kNumericDomainHi = 100000.0;

/// Mirror of EstimateSelectivity (query/predicate.cc) over a schema Field —
/// filters above joins no longer have a TableDef to resolve against, but
/// the field carries the NDV through the operator tree.
StatusOr<double> FieldSelectivity(const Field& field,
                                  const Predicate& predicate) {
  if (predicate.selectivity_override.has_value()) {
    const double s = *predicate.selectivity_override;
    if (s < 0.0 || s > 1.0) {
      return Status::InvalidArgument("selectivity override outside [0, 1]");
    }
    return s;
  }
  const double ndv = std::max<double>(1.0, field.distinct_values);
  switch (predicate.op) {
    case CompareOp::kEq:
      return 1.0 / ndv;
    case CompareOp::kNe:
      return 1.0 - 1.0 / ndv;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      return 1.0 / 3.0;
    case CompareOp::kBetween:
      return 1.0 / 4.0;
    case CompareOp::kLike:
      return 1.0 / 10.0;
  }
  return Status::Internal("unhandled compare op");
}

StatusOr<CompiledPredicate> CompilePredicate(const ExecSchema& input,
                                             const Predicate& predicate) {
  MIDAS_ASSIGN_OR_RETURN(size_t column, input.FindField(predicate.column));
  const Field& field = input.field(column);
  MIDAS_ASSIGN_OR_RETURN(double s, FieldSelectivity(field, predicate));
  s = std::clamp(s, 0.0, 1.0);

  CompiledPredicate compiled;
  compiled.column = column;
  compiled.type = field.type;
  compiled.selectivity = s;
  switch (field.type) {
    case ColumnType::kInt: {
      const double domain = std::max<double>(1.0, field.distinct_values);
      compiled.int_threshold = static_cast<int64_t>(std::llround(s * domain));
      break;
    }
    case ColumnType::kDouble:
      compiled.double_threshold =
          kNumericDomainLo + s * (kNumericDomainHi - kNumericDomainLo);
      break;
    default:
      compiled.hash_threshold =
          s >= 1.0 ? UINT64_MAX
                   : static_cast<uint64_t>(
                         s * 18446744073709551616.0 /* 2^64 */);
      break;
  }
  return compiled;
}

struct Lowerer {
  const Catalog& catalog;
  const LowerOptions& options;
  LoweredPlan out;
  size_t next_plan_index = 0;

  StatusOr<size_t> Lower(const PlanNode& node) {
    // Pre-order numbering (this node, then each child subtree) matches
    // QueryPlan::Nodes(), which measured-cost attribution walks.
    const size_t plan_index = next_plan_index++;
    std::vector<size_t> child_ops;
    child_ops.reserve(node.children.size());
    for (const auto& child : node.children) {
      if (child == nullptr) {
        return Status::InvalidArgument("plan node has null child");
      }
      MIDAS_ASSIGN_OR_RETURN(size_t op, Lower(*child));
      child_ops.push_back(op);
    }

    LoweredOp op;
    op.kind = node.kind;
    op.plan_index = plan_index;
    op.children = std::move(child_ops);

    switch (node.kind) {
      case OperatorKind::kScan: {
        if (!node.children.empty()) {
          return Status::InvalidArgument("scan must be a leaf");
        }
        MIDAS_ASSIGN_OR_RETURN(const TableDef* def,
                               catalog.Find(node.table));
        op.table = node.table;
        uint64_t rows = def->row_count;
        if (options.max_rows_per_table > 0) {
          rows = std::min(rows, options.max_rows_per_table);
        }
        const double fraction =
            std::clamp(node.scan_fraction, 0.0, 1.0);
        op.scan_rows = std::min<uint64_t>(
            rows, static_cast<uint64_t>(
                      std::llround(fraction * static_cast<double>(rows))));
        for (const ColumnDef& col : def->columns) {
          op.schema.Append(
              Field{col.name, col.type, std::max<uint64_t>(1, col.distinct_values)});
        }
        break;
      }
      case OperatorKind::kFilter: {
        if (op.children.size() != 1) {
          return Status::InvalidArgument("filter needs exactly one child");
        }
        op.schema = out.ops[op.children[0]].schema;
        for (const Predicate& p : node.predicates) {
          MIDAS_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                                 CompilePredicate(op.schema, p));
          op.predicates.push_back(compiled);
        }
        break;
      }
      case OperatorKind::kProject: {
        if (op.children.size() != 1) {
          return Status::InvalidArgument("project needs exactly one child");
        }
        const ExecSchema& child = out.ops[op.children[0]].schema;
        for (const std::string& name : node.columns) {
          MIDAS_ASSIGN_OR_RETURN(size_t index, child.FindField(name));
          op.projection.push_back(index);
          op.schema.Append(child.field(index));
        }
        break;
      }
      case OperatorKind::kJoin: {
        if (op.children.size() != 2) {
          return Status::InvalidArgument("join needs exactly two children");
        }
        const ExecSchema& left = out.ops[op.children[0]].schema;
        const ExecSchema& right = out.ops[op.children[1]].schema;
        MIDAS_ASSIGN_OR_RETURN(op.left_key,
                               left.FindField(node.left_join_column));
        MIDAS_ASSIGN_OR_RETURN(op.right_key,
                               right.FindField(node.right_join_column));
        if (left.field(op.left_key).type != ColumnType::kInt ||
            right.field(op.right_key).type != ColumnType::kInt) {
          return Status::InvalidArgument(
              "hash join requires int64 key columns: " +
              node.left_join_column + " / " + node.right_join_column);
        }
        for (const Field& f : left.fields()) op.schema.Append(f);
        for (const Field& f : right.fields()) op.schema.Append(f);
        break;
      }
      case OperatorKind::kAggregate: {
        if (op.children.size() != 1) {
          return Status::InvalidArgument("aggregate needs exactly one child");
        }
        const ExecSchema& child = out.ops[op.children[0]].schema;
        op.num_groups = std::max<uint64_t>(1, node.num_groups);
        for (size_t i = 0; i < child.size(); ++i) {
          if (child.field(i).type == ColumnType::kInt &&
              !op.group_key.has_value()) {
            op.group_key = i;
          }
          if (child.field(i).type == ColumnType::kDouble) {
            op.sum_columns.push_back(i);
          }
        }
        op.schema.Append(Field{"group", ColumnType::kInt, op.num_groups});
        op.schema.Append(Field{"count", ColumnType::kInt, op.num_groups});
        for (size_t i : op.sum_columns) {
          op.schema.Append(Field{"sum_" + child.field(i).name,
                                 ColumnType::kDouble,
                                 child.field(i).distinct_values});
        }
        break;
      }
      case OperatorKind::kSort: {
        if (op.children.size() != 1) {
          return Status::InvalidArgument("sort needs exactly one child");
        }
        const ExecSchema& child = out.ops[op.children[0]].schema;
        if (child.size() == 0) {
          return Status::InvalidArgument("sort over empty schema");
        }
        op.sort_key = 0;
        op.schema = child;
        break;
      }
    }
    out.ops.push_back(std::move(op));
    return out.ops.size() - 1;
  }
};

}  // namespace

StatusOr<LoweredPlan> LowerPlan(const Catalog& catalog, const QueryPlan& plan,
                                const LowerOptions& options) {
  if (plan.empty()) return Status::InvalidArgument("cannot lower empty plan");
  Lowerer lowerer{catalog, options, LoweredPlan{}, 0};
  MIDAS_ASSIGN_OR_RETURN(size_t root, lowerer.Lower(*plan.root()));
  lowerer.out.root = root;
  lowerer.out.plan_nodes = lowerer.next_plan_index;
  return std::move(lowerer.out);
}

bool PredicatePassesInt(const CompiledPredicate& p, int64_t value) {
  return value <= p.int_threshold;
}

bool PredicatePassesDouble(const CompiledPredicate& p, double value) {
  return value <= p.double_threshold;
}

bool PredicatePassesString(const CompiledPredicate& p,
                           std::string_view value) {
  return HashBytes(value.data(), value.size()) <= p.hash_threshold;
}

}  // namespace exec
}  // namespace midas
