#ifndef MIDAS_EXEC_LOWER_H_
#define MIDAS_EXEC_LOWER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/column.h"
#include "query/plan.h"

namespace midas {
namespace exec {

/// \brief One predicate compiled to concrete executable form.
///
/// The repo's `Predicate` carries a *selectivity*, not a literal (TPC-H
/// templates are modelled by their reference selectivities). Lowering turns
/// that into a deterministic value test matched to the synthetic data
/// generator's domains, so both engines select the same concrete rows:
///   kInt    -> keep v <= round(s · D), the generator drawing uniformly
///              over [1, D] with D = the column's distinct_values
///   kDouble -> keep v <= lo + s · (hi − lo) over the generator's numeric
///              domain [1, 100000]
///   kString / kDate -> keep rows whose FNV-1a value hash falls in the
///              lowest s-fraction of the 64-bit hash space
/// The kept fraction approximates s; what matters is that the test is a
/// pure function of the cell value, identical in the vectorized engine and
/// the row-at-a-time oracle.
struct CompiledPredicate {
  size_t column = 0;  ///< index into the input schema
  ColumnType type = ColumnType::kInt;
  int64_t int_threshold = 0;
  double double_threshold = 0.0;
  uint64_t hash_threshold = 0;
  double selectivity = 1.0;  ///< the fraction the test was compiled from
};

/// \brief One operator of a lowered plan. The tree is stored as indices
/// into `LoweredPlan::ops` (children before parents), and every op
/// remembers which `QueryPlan::Nodes()` pre-order slot it came from so
/// measured per-operator costs can be attributed back to the annotated
/// plan node (site, engine, num_nodes).
struct LoweredOp {
  OperatorKind kind = OperatorKind::kScan;
  size_t plan_index = 0;         ///< index in QueryPlan::Nodes() pre-order
  std::vector<size_t> children;  ///< indices into LoweredPlan::ops
  ExecSchema schema;             ///< output schema

  // kScan
  std::string table;
  uint64_t scan_rows = 0;  ///< after scan_fraction and the row cap

  // kFilter
  std::vector<CompiledPredicate> predicates;

  // kProject: child column indices, in output order
  std::vector<size_t> projection;

  // kJoin: int64 equi-join key columns in the left/right child schemas
  size_t left_key = 0;
  size_t right_key = 0;

  // kAggregate: group = key column value mod num_groups (first kInt column
  // of the child; absent -> everything in group 0); one running sum per
  // kDouble child column plus a row count.
  uint64_t num_groups = 1;
  std::optional<size_t> group_key;
  std::vector<size_t> sum_columns;

  // kSort: ordered by the child's first column, ascending, stable
  size_t sort_key = 0;
};

/// \brief A QueryPlan lowered to executable operators: shared input of the
/// vectorized engine and the row-at-a-time oracle, so the two can only
/// differ in *how* they execute, never in what.
struct LoweredPlan {
  std::vector<LoweredOp> ops;  ///< children precede parents; root is back()
  size_t root = 0;
  size_t plan_nodes = 0;  ///< size of QueryPlan::Nodes() (stats vector span)
};

struct LowerOptions {
  /// Caps the rows materialized/scanned per base table (0 = the catalog
  /// cardinality). Applied before scan_fraction's pruning.
  uint64_t max_rows_per_table = 0;
};

/// Lowers `plan` against `catalog`. Fails (never crashes the engines) on
/// unknown tables/columns, non-int join keys, or malformed arities.
StatusOr<LoweredPlan> LowerPlan(const Catalog& catalog, const QueryPlan& plan,
                                const LowerOptions& options = LowerOptions());

/// True when `value` passes the compiled test — the single definition of
/// predicate semantics both engines share (the vectorized kernels inline
/// the same comparisons).
bool PredicatePassesInt(const CompiledPredicate& p, int64_t value);
bool PredicatePassesDouble(const CompiledPredicate& p, double value);
bool PredicatePassesString(const CompiledPredicate& p, std::string_view value);

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_LOWER_H_
