#include "exec/row_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/statistics.h"
#include "exec/stream.h"

namespace midas {
namespace exec {

namespace {

using RowCell = std::variant<int64_t, double, std::string>;
using Row = std::vector<RowCell>;
using RowStream = IStream<Row>;

double CellBytes(const RowCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return static_cast<double>(s->size()) + sizeof(uint32_t);
  }
  return 8.0;
}

double RowBytes(const Row& row) {
  double total = 0.0;
  for (const RowCell& c : row) total += CellBytes(c);
  return total;
}

void RecordRow(const Row& row, OpStats* stats) {
  stats->output_rows += 1;
  stats->output_bytes += RowBytes(row);
}

class RowScan : public RowStream {
 public:
  RowScan(std::shared_ptr<const ColumnTable> table, uint64_t limit,
          OpStats* stats)
      : table_(std::move(table)),
        limit_(std::min<uint64_t>(limit, table_->rows)),
        stats_(stats) {}

  std::optional<Row> Next() override {
    if (pos_ >= limit_) return std::nullopt;
    const size_t i = static_cast<size_t>(pos_++);
    Row row;
    row.reserve(table_->columns.size());
    for (const Column& col : table_->columns) {
      switch (col.type()) {
        case ColumnType::kInt:
          row.emplace_back(col.IntAt(i));
          break;
        case ColumnType::kDouble:
          row.emplace_back(col.DoubleAt(i));
          break;
        default:
          row.emplace_back(std::string(col.StringAt(i)));
          break;
      }
    }
    RecordRow(row, stats_);
    return row;
  }

 private:
  std::shared_ptr<const ColumnTable> table_;
  uint64_t limit_;
  OpStats* stats_;
  uint64_t pos_ = 0;
};

class RowFilter : public RowStream {
 public:
  RowFilter(std::unique_ptr<RowStream> child, const LoweredOp* op,
            OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Row> Next() override {
    while (auto row = child_->Next()) {
      bool passes = true;
      for (const CompiledPredicate& p : op_->predicates) {
        const RowCell& cell = (*row)[p.column];
        switch (p.type) {
          case ColumnType::kInt:
            passes = PredicatePassesInt(p, std::get<int64_t>(cell));
            break;
          case ColumnType::kDouble:
            passes = PredicatePassesDouble(p, std::get<double>(cell));
            break;
          default:
            passes = PredicatePassesString(p, std::get<std::string>(cell));
            break;
        }
        if (!passes) break;
      }
      if (!passes) continue;
      RecordRow(*row, stats_);
      return row;
    }
    return std::nullopt;
  }

 private:
  std::unique_ptr<RowStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
};

class RowProject : public RowStream {
 public:
  RowProject(std::unique_ptr<RowStream> child, const LoweredOp* op,
             OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Row> Next() override {
    auto row = child_->Next();
    if (!row.has_value()) return std::nullopt;
    Row out;
    out.reserve(op_->projection.size());
    for (size_t index : op_->projection) out.push_back((*row)[index]);
    RecordRow(out, stats_);
    return out;
  }

 private:
  std::unique_ptr<RowStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
};

/// Equi-join with the same ordering contract as the vectorized engine:
/// build rows (the right child) are buffered in arrival order, so each
/// key's match list is ascending; probes emit in left-child order.
class RowJoin : public RowStream {
 public:
  RowJoin(std::unique_ptr<RowStream> left, std::unique_ptr<RowStream> right,
          const LoweredOp* op, OpStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        op_(op),
        stats_(stats) {}

  std::optional<Row> Next() override {
    if (!built_) {
      while (auto row = right_->Next()) {
        const int64_t key = std::get<int64_t>((*row)[op_->right_key]);
        matches_[key].push_back(build_.size());
        build_.push_back(std::move(*row));
      }
      built_ = true;
    }
    while (true) {
      if (!pending_.empty()) {
        Row out = std::move(pending_.front());
        pending_.pop_front();
        RecordRow(out, stats_);
        return out;
      }
      auto probe = left_->Next();
      if (!probe.has_value()) return std::nullopt;
      const int64_t key = std::get<int64_t>((*probe)[op_->left_key]);
      auto it = matches_.find(key);
      if (it == matches_.end()) continue;
      for (size_t j : it->second) {
        Row out = *probe;
        const Row& right_row = build_[j];
        out.insert(out.end(), right_row.begin(), right_row.end());
        pending_.push_back(std::move(out));
      }
    }
  }

 private:
  std::unique_ptr<RowStream> left_;
  std::unique_ptr<RowStream> right_;
  const LoweredOp* op_;
  OpStats* stats_;
  bool built_ = false;
  std::vector<Row> build_;
  std::unordered_map<int64_t, std::vector<size_t>> matches_;
  std::deque<Row> pending_;
};

class RowAggregate : public RowStream {
 public:
  RowAggregate(std::unique_ptr<RowStream> child, const LoweredOp* op,
               OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Row> Next() override {
    if (!done_) {
      const size_t groups = static_cast<size_t>(op_->num_groups);
      counts_.assign(groups, 0);
      sums_.assign(op_->sum_columns.size(), std::vector<double>(groups, 0.0));
      while (auto row = child_->Next()) {
        size_t g = 0;
        if (op_->group_key.has_value()) {
          const int64_t key = std::get<int64_t>((*row)[*op_->group_key]);
          const int64_t m = key % static_cast<int64_t>(op_->num_groups);
          g = static_cast<size_t>(
              m < 0 ? m + static_cast<int64_t>(op_->num_groups) : m);
        }
        counts_[g] += 1;
        for (size_t s = 0; s < op_->sum_columns.size(); ++s) {
          sums_[s][g] += std::get<double>((*row)[op_->sum_columns[s]]);
        }
      }
      done_ = true;
    }
    while (emit_ < counts_.size() && counts_[emit_] == 0) ++emit_;
    if (emit_ >= counts_.size()) return std::nullopt;
    const size_t g = emit_++;
    Row out;
    out.reserve(2 + sums_.size());
    out.emplace_back(static_cast<int64_t>(g));
    out.emplace_back(counts_[g]);
    for (const auto& sums : sums_) out.emplace_back(sums[g]);
    RecordRow(out, stats_);
    return out;
  }

 private:
  std::unique_ptr<RowStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
  bool done_ = false;
  std::vector<int64_t> counts_;
  std::vector<std::vector<double>> sums_;
  size_t emit_ = 0;
};

class RowSort : public RowStream {
 public:
  RowSort(std::unique_ptr<RowStream> child, const LoweredOp* op,
          OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Row> Next() override {
    if (!sorted_) {
      while (auto row = child_->Next()) rows_.push_back(std::move(*row));
      const size_t key = op_->sort_key;
      std::stable_sort(rows_.begin(), rows_.end(),
                       [key](const Row& a, const Row& b) {
                         return a[key] < b[key];  // same-type variant compare
                       });
      sorted_ = true;
    }
    if (emit_ >= rows_.size()) return std::nullopt;
    Row out = std::move(rows_[emit_++]);
    RecordRow(out, stats_);
    return out;
  }

 private:
  std::unique_ptr<RowStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
  bool sorted_ = false;
  std::vector<Row> rows_;
  size_t emit_ = 0;
};

StatusOr<std::unique_ptr<RowStream>> BuildRowStream(
    const LoweredPlan& plan, size_t op_index, TableProvider* tables,
    std::vector<OpStats>* stats) {
  const LoweredOp& op = plan.ops[op_index];
  OpStats* op_stats = &(*stats)[op.plan_index];
  switch (op.kind) {
    case OperatorKind::kScan: {
      MIDAS_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> table,
                             tables->GetTable(op.table));
      if (table->columns.size() != op.schema.size()) {
        return Status::Internal("scan table/schema column count mismatch: " +
                                op.table);
      }
      return {
          std::make_unique<RowScan>(std::move(table), op.scan_rows, op_stats)};
    }
    case OperatorKind::kFilter: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child, BuildRowStream(plan, op.children[0], tables, stats));
      return {std::make_unique<RowFilter>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kProject: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child, BuildRowStream(plan, op.children[0], tables, stats));
      return {std::make_unique<RowProject>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kJoin: {
      MIDAS_ASSIGN_OR_RETURN(
          auto left, BuildRowStream(plan, op.children[0], tables, stats));
      MIDAS_ASSIGN_OR_RETURN(
          auto right, BuildRowStream(plan, op.children[1], tables, stats));
      return {std::make_unique<RowJoin>(std::move(left), std::move(right), &op,
                                        op_stats)};
    }
    case OperatorKind::kAggregate: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child, BuildRowStream(plan, op.children[0], tables, stats));
      return {std::make_unique<RowAggregate>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kSort: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child, BuildRowStream(plan, op.children[0], tables, stats));
      return {std::make_unique<RowSort>(std::move(child), &op, op_stats)};
    }
  }
  return Status::Internal("unhandled operator kind in BuildRowStream");
}

void AppendRowToTable(const Row& row, ColumnTable* out) {
  for (size_t c = 0; c < out->columns.size(); ++c) {
    Column& col = out->columns[c];
    switch (col.type()) {
      case ColumnType::kInt:
        col.AppendInt(std::get<int64_t>(row[c]));
        break;
      case ColumnType::kDouble:
        col.AppendDouble(std::get<double>(row[c]));
        break;
      default:
        col.AppendString(std::get<std::string>(row[c]));
        break;
    }
  }
  out->rows += 1;
}

}  // namespace

StatusOr<ExecResult> ExecuteRowOracle(const LoweredPlan& plan,
                                      TableProvider* tables,
                                      const ExecOptions& /*options*/) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("cannot execute empty lowered plan");
  }
  ExecResult result;
  result.stats.assign(plan.plan_nodes, OpStats{});
  MIDAS_ASSIGN_OR_RETURN(
      auto root, BuildRowStream(plan, plan.root, tables, &result.stats));

  const ExecSchema& schema = plan.ops[plan.root].schema;
  result.output.schema = schema;
  result.output.columns.reserve(schema.size());
  for (const Field& f : schema.fields()) {
    result.output.columns.emplace_back(f.type);
  }

  const double t0 = MonotonicSeconds();
  while (auto row = root->Next()) AppendRowToTable(*row, &result.output);
  result.total_seconds = MonotonicSeconds() - t0;
  result.stats[plan.ops[plan.root].plan_index].seconds = result.total_seconds;
  result.digest = ResultDigest(result.output);
  return result;
}

}  // namespace exec
}  // namespace midas
