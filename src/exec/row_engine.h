#ifndef MIDAS_EXEC_ROW_ENGINE_H_
#define MIDAS_EXEC_ROW_ENGINE_H_

#include "exec/engine.h"

namespace midas {
namespace exec {

/// \brief Row-at-a-time reference interpreter — the correctness oracle.
///
/// Walks the SAME lowered plan as the vectorized engine but pulls one
/// `std::variant`-cell row at a time through branchy per-row evaluation
/// (the textbook Volcano model the columnar engine is benchmarked
/// against). Output is value-identical to the vectorized engine by
/// construction: both share PredicatePasses* semantics, the join emits
/// matches in probe order with ascending build rows, and grouped sums
/// accumulate in global row order. Per-op stats carry rows/bytes; seconds
/// land on the root only (timing every row would measure the clock).
StatusOr<ExecResult> ExecuteRowOracle(const LoweredPlan& plan,
                                      TableProvider* tables,
                                      const ExecOptions& options);

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_ROW_ENGINE_H_
