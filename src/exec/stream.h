#ifndef MIDAS_EXEC_STREAM_H_
#define MIDAS_EXEC_STREAM_H_

#include <optional>

namespace midas {
namespace exec {

/// \brief Pull-based stream of work units — the operator protocol of the
/// vectorized engine (batches) and the row-at-a-time oracle (rows).
///
/// `Next()` returns the next unit or `std::nullopt` when the stream is
/// exhausted; once exhausted it stays exhausted. Operators that can fail do
/// so at *lowering* time (column resolution, type checks, table lookup), so
/// the runtime protocol carries no Status — a lowered plan executes
/// unconditionally.
template <typename T>
class IStream {
 public:
  virtual ~IStream() = default;
  virtual std::optional<T> Next() = 0;
};

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_STREAM_H_
