#include "exec/table_cache.h"

namespace midas {
namespace exec {

StatusOr<std::shared_ptr<const ColumnTable>> TableCache::GetOrMaterialize(
    const TableCacheKey& key, const Materializer& materialize) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.hits += 1;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
    return it->second->second;
  }
  stats_.misses += 1;
  MIDAS_ASSIGN_OR_RETURN(ColumnTable table, materialize());
  auto shared = std::make_shared<const ColumnTable>(std::move(table));
  stats_.resident_bytes += shared->ByteSize();
  lru_.emplace_front(key, shared);
  index_[key] = lru_.begin();
  stats_.entries = lru_.size();
  EvictOverBudgetLocked();
  return shared;
}

void TableCache::EvictOverBudgetLocked() {
  while (stats_.resident_bytes > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.resident_bytes -= victim.second->ByteSize();
    stats_.evictions += 1;
    index_.erase(victim.first);
    lru_.pop_back();
  }
  stats_.entries = lru_.size();
}

TableCacheStats TableCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace exec
}  // namespace midas
