#ifndef MIDAS_EXEC_TABLE_CACHE_H_
#define MIDAS_EXEC_TABLE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/column.h"

namespace midas {
namespace exec {

/// Identity of a materialized base table. The generator is deterministic in
/// (scale factor, seed), so two queries with equal keys see byte-identical
/// columns; `rows` is the applied row cap (0 = uncapped) because a capped
/// materialization is a different table than the full one.
struct TableCacheKey {
  std::string table;
  uint64_t scale_bits = 0;  ///< bit pattern of the scale-factor double
  uint64_t seed = 0;
  uint64_t rows = 0;

  bool operator==(const TableCacheKey& other) const {
    return table == other.table && scale_bits == other.scale_bits &&
           seed == other.seed && rows == other.rows;
  }
};

struct TableCacheKeyHash {
  size_t operator()(const TableCacheKey& k) const {
    size_t h = std::hash<std::string>()(k.table);
    h ^= std::hash<uint64_t>()(k.scale_bits) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    h ^= std::hash<uint64_t>()(k.seed) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    h ^= std::hash<uint64_t>()(k.rows) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    return h;
  }
};

struct TableCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t resident_bytes = 0;
  size_t entries = 0;
};

/// \brief Byte-budgeted LRU cache of materialized base tables.
///
/// Measured-mode execution would otherwise regenerate each table per query
/// — materialization dominates end-to-end wall time by orders of magnitude
/// at bench scale. Entries are shared_ptr snapshots, so eviction never
/// invalidates a table an in-flight pipeline still scans. Thread-safe; a
/// miss materializes under the lock (concurrent misses for the same key
/// would otherwise duplicate hundred-MB builds).
class TableCache {
 public:
  using Materializer = std::function<StatusOr<ColumnTable>()>;

  /// `capacity_bytes` caps resident (non-in-flight) bytes. The most
  /// recently materialized entry is always retained, even oversized ones —
  /// evicting the table a query is about to scan would thrash.
  explicit TableCache(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Returns the cached table for `key`, or runs `materialize`, caches the
  /// result, and returns it. Errors from `materialize` pass through and
  /// cache nothing.
  StatusOr<std::shared_ptr<const ColumnTable>> GetOrMaterialize(
      const TableCacheKey& key, const Materializer& materialize);

  TableCacheStats Stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  using Entry = std::pair<TableCacheKey, std::shared_ptr<const ColumnTable>>;

  void EvictOverBudgetLocked();

  const size_t capacity_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<TableCacheKey, std::list<Entry>::iterator,
                     TableCacheKeyHash>
      index_;
  TableCacheStats stats_;
};

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_TABLE_CACHE_H_
