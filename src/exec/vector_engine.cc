#include "exec/vector_engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/statistics.h"
#include "exec/batch.h"
#include "exec/kernels.h"
#include "exec/stream.h"

namespace midas {
namespace exec {

namespace {

using BatchStream = IStream<Batch>;

/// Gathers the selected rows of `src` into a freshly materialized column.
Column GatherColumnValue(const ColumnVector& src, const uint32_t* sel,
                         size_t n_sel) {
  Column out(src.type);
  switch (src.type) {
    case ColumnType::kInt: {
      out.Reserve(n_sel);
      for (size_t i = 0; i < n_sel; ++i) out.AppendInt(0);
      GatherInt64(src.ints, sel, n_sel, const_cast<int64_t*>(out.IntData()));
      break;
    }
    case ColumnType::kDouble: {
      out.Reserve(n_sel);
      for (size_t i = 0; i < n_sel; ++i) out.AppendDouble(0.0);
      GatherDouble(src.doubles, sel, n_sel,
                   const_cast<double*>(out.DoubleData()));
      break;
    }
    default: {
      size_t bytes = 0;
      for (size_t i = 0; i < n_sel; ++i) {
        bytes += src.offsets[sel[i] + 1] - src.offsets[sel[i]];
      }
      out.Reserve(n_sel, bytes);
      for (size_t i = 0; i < n_sel; ++i) out.AppendString(src.StringAt(sel[i]));
      break;
    }
  }
  return out;
}

std::shared_ptr<const Column> GatherColumn(const ColumnVector& src,
                                           const uint32_t* sel, size_t n_sel) {
  return std::make_shared<const Column>(GatherColumnValue(src, sel, n_sel));
}

/// Appends all rows of a batch column view to a materialized column.
void AppendVector(const ColumnVector& src, size_t rows, Column* dst) {
  switch (src.type) {
    case ColumnType::kInt:
      for (size_t i = 0; i < rows; ++i) dst->AppendInt(src.ints[i]);
      break;
    case ColumnType::kDouble:
      for (size_t i = 0; i < rows; ++i) dst->AppendDouble(src.doubles[i]);
      break;
    default:
      for (size_t i = 0; i < rows; ++i) dst->AppendString(src.StringAt(i));
      break;
  }
}

double TotalSelfSeconds(const std::vector<OpStats>& stats) {
  double total = 0.0;
  for (const OpStats& s : stats) total += s.seconds;
  return total;
}

/// Materializes a whole stream into a table with the given schema.
void DrainInto(BatchStream* stream, const ExecSchema& schema,
               ColumnTable* out) {
  out->schema = schema;
  out->columns.clear();
  out->columns.reserve(schema.size());
  for (const Field& f : schema.fields()) out->columns.emplace_back(f.type);
  out->rows = 0;
  while (auto batch = stream->Next()) {
    for (size_t c = 0; c < out->columns.size(); ++c) {
      AppendVector(batch->cols[c], batch->rows, &out->columns[c]);
    }
    out->rows += batch->rows;
  }
}

class ScanStream : public BatchStream {
 public:
  ScanStream(std::shared_ptr<const ColumnTable> table, uint64_t limit,
             size_t batch_rows, OpStats* stats)
      : table_(std::move(table)),
        limit_(std::min<uint64_t>(limit, table_->rows)),
        batch_rows_(batch_rows),
        stats_(stats) {}

  std::optional<Batch> Next() override {
    if (pos_ >= limit_) return std::nullopt;
    const double t0 = MonotonicSeconds();
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(batch_rows_, limit_ - pos_));
    Batch batch;
    batch.rows = n;
    batch.cols.reserve(table_->columns.size());
    for (const Column& col : table_->columns) {
      batch.cols.push_back(ColumnVector::Slice(col, static_cast<size_t>(pos_)));
    }
    batch.refs.push_back(table_);
    pos_ += n;
    stats_->seconds += MonotonicSeconds() - t0;
    stats_->output_rows += n;
    stats_->output_bytes += batch.PayloadBytes();
    return batch;
  }

 private:
  std::shared_ptr<const ColumnTable> table_;
  uint64_t limit_;
  size_t batch_rows_;
  OpStats* stats_;
  uint64_t pos_ = 0;
};

class FilterStream : public BatchStream {
 public:
  FilterStream(std::unique_ptr<BatchStream> child, const LoweredOp* op,
               OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Batch> Next() override {
    while (auto in = child_->Next()) {
      const double t0 = MonotonicSeconds();
      const size_t n = in->rows;
      sel_.resize(n);
      size_t k = n;
      bool first = true;
      for (const CompiledPredicate& p : op_->predicates) {
        const ColumnVector& cv = in->cols[p.column];
        switch (p.type) {
          case ColumnType::kInt:
            k = first ? SelectLeInt64(cv.ints, n, p.int_threshold, sel_.data())
                      : RefineLeInt64(cv.ints, sel_.data(), k, p.int_threshold,
                                      sel_.data());
            break;
          case ColumnType::kDouble:
            k = first
                    ? SelectLeDouble(cv.doubles, n, p.double_threshold,
                                     sel_.data())
                    : RefineLeDouble(cv.doubles, sel_.data(), k,
                                     p.double_threshold, sel_.data());
            break;
          default:
            k = first ? SelectHashLeString(cv.offsets, cv.arena, n,
                                           p.hash_threshold, sel_.data())
                      : RefineHashLeString(cv.offsets, cv.arena, sel_.data(),
                                           k, p.hash_threshold, sel_.data());
            break;
        }
        first = false;
        if (k == 0) break;
      }
      if (k == 0) {
        stats_->seconds += MonotonicSeconds() - t0;
        continue;  // nothing qualified; keep pulling
      }
      Batch out;
      if (k == n) {
        out = std::move(*in);  // every row qualified: pass the views through
      } else {
        out.rows = k;
        out.cols.reserve(in->cols.size());
        for (const ColumnVector& cv : in->cols) {
          out.AddOwned(GatherColumn(cv, sel_.data(), k));
        }
      }
      stats_->seconds += MonotonicSeconds() - t0;
      stats_->output_rows += out.rows;
      stats_->output_bytes += out.PayloadBytes();
      return out;
    }
    return std::nullopt;
  }

 private:
  std::unique_ptr<BatchStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
  std::vector<uint32_t> sel_;
};

class ProjectStream : public BatchStream {
 public:
  ProjectStream(std::unique_ptr<BatchStream> child, const LoweredOp* op,
                OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Batch> Next() override {
    auto in = child_->Next();
    if (!in.has_value()) return std::nullopt;
    const double t0 = MonotonicSeconds();
    Batch out;
    out.rows = in->rows;
    out.cols.reserve(op_->projection.size());
    for (size_t index : op_->projection) out.cols.push_back(in->cols[index]);
    out.refs = std::move(in->refs);  // views still point into the child's data
    stats_->seconds += MonotonicSeconds() - t0;
    stats_->output_rows += out.rows;
    stats_->output_bytes += out.PayloadBytes();
    return out;
  }

 private:
  std::unique_ptr<BatchStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
};

/// Order-preserving equi-join: materializes the right child as the build
/// side, then streams the left child as probes. Bucket chains are built by
/// reverse-order prepend so each chain lists build rows in ascending order,
/// and matches are emitted in probe order — output row order is therefore a
/// pure function of the input row order, independent of batch size.
class HashJoinStream : public BatchStream {
 public:
  HashJoinStream(std::unique_ptr<BatchStream> left,
                 std::unique_ptr<BatchStream> right,
                 const ExecSchema& right_schema, const LoweredOp* op,
                 OpStats* stats, const std::vector<OpStats>* all_stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        right_schema_(right_schema),
        op_(op),
        stats_(stats),
        all_stats_(all_stats) {}

  std::optional<Batch> Next() override {
    if (!built_) {
      Build();
      built_ = true;
    }
    while (auto probe = left_->Next()) {
      const double t0 = MonotonicSeconds();
      const ColumnVector& key_col = probe->cols[op_->left_key];
      const int64_t* build_keys = build_->columns[op_->right_key].IntData();
      left_rows_.clear();
      right_rows_.clear();
      for (size_t i = 0; i < probe->rows; ++i) {
        const int64_t key = key_col.ints[i];
        for (int64_t j = heads_[HashInt64(key) & mask_]; j >= 0;
             j = next_[static_cast<size_t>(j)]) {
          if (build_keys[j] == key) {
            left_rows_.push_back(static_cast<uint32_t>(i));
            right_rows_.push_back(static_cast<uint32_t>(j));
          }
        }
      }
      if (left_rows_.empty()) {
        stats_->seconds += MonotonicSeconds() - t0;
        continue;
      }
      Batch out;
      out.rows = left_rows_.size();
      out.cols.reserve(probe->cols.size() + build_->columns.size());
      for (const ColumnVector& cv : probe->cols) {
        out.AddOwned(GatherColumn(cv, left_rows_.data(), left_rows_.size()));
      }
      for (const Column& col : build_->columns) {
        out.AddOwned(GatherColumn(ColumnVector::Over(col), right_rows_.data(),
                                  right_rows_.size()));
      }
      stats_->seconds += MonotonicSeconds() - t0;
      stats_->output_rows += out.rows;
      stats_->output_bytes += out.PayloadBytes();
      return out;
    }
    return std::nullopt;
  }

 private:
  void Build() {
    build_ = std::make_shared<ColumnTable>();
    {
      // Draining the build side runs the child's kernels too; subtract the
      // self-time its operators recorded so the join is charged only for
      // materialization (self-time stays additive across the pipeline).
      const double children_before = TotalSelfSeconds(*all_stats_);
      const double t0 = MonotonicSeconds();
      DrainInto(right_.get(), right_schema_, build_.get());
      const double wall = MonotonicSeconds() - t0;
      const double children = TotalSelfSeconds(*all_stats_) - children_before;
      stats_->seconds += std::max(0.0, wall - children);
    }
    const double t0 = MonotonicSeconds();
    const size_t n = static_cast<size_t>(build_->rows);
    size_t buckets = 16;
    while (buckets < 2 * n) buckets <<= 1;
    mask_ = buckets - 1;
    heads_.assign(buckets, -1);
    next_.assign(n, -1);
    const int64_t* keys =
        n > 0 ? build_->columns[op_->right_key].IntData() : nullptr;
    for (size_t i = n; i-- > 0;) {
      const size_t b = HashInt64(keys[i]) & mask_;
      next_[i] = heads_[b];
      heads_[b] = static_cast<int64_t>(i);
    }
    stats_->seconds += MonotonicSeconds() - t0;
  }

  std::unique_ptr<BatchStream> left_;
  std::unique_ptr<BatchStream> right_;
  ExecSchema right_schema_;
  const LoweredOp* op_;
  OpStats* stats_;
  const std::vector<OpStats>* all_stats_;
  bool built_ = false;
  std::shared_ptr<ColumnTable> build_;
  std::vector<int64_t> heads_;
  std::vector<int64_t> next_;
  size_t mask_ = 0;
  std::vector<uint32_t> left_rows_;
  std::vector<uint32_t> right_rows_;
};

/// Dense grouped aggregation: group code = key mod num_groups, one count
/// and one running double sum per kDouble input column. Sums accumulate in
/// global row order (SumByGroup walks rows ascending and batches arrive in
/// order), so results are bit-identical across batch sizes and to the
/// row-at-a-time oracle. Emits non-empty groups ascending, as one batch.
class AggregateStream : public BatchStream {
 public:
  AggregateStream(std::unique_ptr<BatchStream> child, const LoweredOp* op,
                  OpStats* stats)
      : child_(std::move(child)), op_(op), stats_(stats) {}

  std::optional<Batch> Next() override {
    if (done_) return std::nullopt;
    done_ = true;
    const size_t groups = static_cast<size_t>(op_->num_groups);
    counts_.assign(groups, 0);
    sums_.assign(op_->sum_columns.size(), std::vector<double>(groups, 0.0));
    while (auto in = child_->Next()) {
      const double t0 = MonotonicSeconds();
      const size_t n = in->rows;
      codes_.resize(n);
      if (op_->group_key.has_value()) {
        GroupCodes(in->cols[*op_->group_key].ints, n, op_->num_groups,
                   codes_.data());
      } else {
        std::fill(codes_.begin(), codes_.end(), 0u);
      }
      CountByGroup(codes_.data(), n, counts_.data());
      for (size_t s = 0; s < op_->sum_columns.size(); ++s) {
        SumByGroup(in->cols[op_->sum_columns[s]].doubles, codes_.data(), n,
                   sums_[s].data());
      }
      stats_->seconds += MonotonicSeconds() - t0;
    }
    const double t0 = MonotonicSeconds();
    auto group_col = std::make_shared<Column>(ColumnType::kInt);
    auto count_col = std::make_shared<Column>(ColumnType::kInt);
    std::vector<std::shared_ptr<Column>> sum_cols;
    for (size_t s = 0; s < sums_.size(); ++s) {
      sum_cols.push_back(std::make_shared<Column>(ColumnType::kDouble));
    }
    for (size_t g = 0; g < groups; ++g) {
      if (counts_[g] == 0) continue;
      group_col->AppendInt(static_cast<int64_t>(g));
      count_col->AppendInt(counts_[g]);
      for (size_t s = 0; s < sums_.size(); ++s) {
        sum_cols[s]->AppendDouble(sums_[s][g]);
      }
    }
    Batch out;
    out.rows = group_col->size();
    out.AddOwned(group_col);
    out.AddOwned(count_col);
    for (auto& c : sum_cols) out.AddOwned(std::move(c));
    stats_->seconds += MonotonicSeconds() - t0;
    if (out.rows == 0) return std::nullopt;
    stats_->output_rows += out.rows;
    stats_->output_bytes += out.PayloadBytes();
    return out;
  }

 private:
  std::unique_ptr<BatchStream> child_;
  const LoweredOp* op_;
  OpStats* stats_;
  bool done_ = false;
  std::vector<int64_t> counts_;
  std::vector<std::vector<double>> sums_;
  std::vector<uint32_t> codes_;
};

/// Pipeline breaker: materializes the child, stable-sorts row indices by
/// the sort key (stability pins the order of equal keys to input order, the
/// batch-size-invariance requirement), then emits view batches over the
/// reordered materialization.
class SortStream : public BatchStream {
 public:
  SortStream(std::unique_ptr<BatchStream> child, const ExecSchema& schema,
             const LoweredOp* op, size_t batch_rows, OpStats* stats,
             const std::vector<OpStats>* all_stats)
      : child_(std::move(child)),
        schema_(schema),
        op_(op),
        batch_rows_(batch_rows),
        stats_(stats),
        all_stats_(all_stats) {}

  std::optional<Batch> Next() override {
    if (!sorted_) {
      Sort();
      sorted_ = true;
    }
    if (pos_ >= sorted_table_->rows) return std::nullopt;
    const double t0 = MonotonicSeconds();
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(batch_rows_, sorted_table_->rows - pos_));
    Batch out;
    out.rows = n;
    for (const Column& col : sorted_table_->columns) {
      out.cols.push_back(ColumnVector::Slice(col, static_cast<size_t>(pos_)));
    }
    out.refs.push_back(sorted_table_);
    pos_ += n;
    stats_->seconds += MonotonicSeconds() - t0;
    stats_->output_rows += n;
    stats_->output_bytes += out.PayloadBytes();
    return out;
  }

 private:
  void Sort() {
    ColumnTable staging;
    {
      // Same accounting as the join build: charge the sort only for the
      // materialization, not the child's own recorded self-time.
      const double children_before = TotalSelfSeconds(*all_stats_);
      const double t0 = MonotonicSeconds();
      DrainInto(child_.get(), schema_, &staging);
      const double wall = MonotonicSeconds() - t0;
      const double children = TotalSelfSeconds(*all_stats_) - children_before;
      stats_->seconds += std::max(0.0, wall - children);
    }
    const double t0 = MonotonicSeconds();
    const size_t n = static_cast<size_t>(staging.rows);
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    const Column& key = staging.columns[op_->sort_key];
    switch (key.type()) {
      case ColumnType::kInt:
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                           return key.IntAt(a) < key.IntAt(b);
                         });
        break;
      case ColumnType::kDouble:
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                           return key.DoubleAt(a) < key.DoubleAt(b);
                         });
        break;
      default:
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                           return key.StringAt(a) < key.StringAt(b);
                         });
        break;
    }
    auto sorted = std::make_shared<ColumnTable>();
    sorted->schema = staging.schema;
    sorted->rows = staging.rows;
    for (const Column& col : staging.columns) {
      sorted->columns.push_back(
          GatherColumnValue(ColumnVector::Over(col), order.data(), n));
    }
    sorted_table_ = std::move(sorted);
    stats_->seconds += MonotonicSeconds() - t0;
  }

  std::unique_ptr<BatchStream> child_;
  ExecSchema schema_;
  const LoweredOp* op_;
  size_t batch_rows_;
  OpStats* stats_;
  const std::vector<OpStats>* all_stats_;
  bool sorted_ = false;
  std::shared_ptr<const ColumnTable> sorted_table_;
  uint64_t pos_ = 0;
};

StatusOr<std::unique_ptr<BatchStream>> BuildStream(
    const LoweredPlan& plan, size_t op_index, TableProvider* tables,
    const ExecOptions& options, std::vector<OpStats>* stats) {
  const LoweredOp& op = plan.ops[op_index];
  OpStats* op_stats = &(*stats)[op.plan_index];
  switch (op.kind) {
    case OperatorKind::kScan: {
      MIDAS_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> table,
                             tables->GetTable(op.table));
      if (table->columns.size() != op.schema.size()) {
        return Status::Internal("scan table/schema column count mismatch: " +
                                op.table);
      }
      return {std::make_unique<ScanStream>(std::move(table), op.scan_rows,
                                           options.batch_rows, op_stats)};
    }
    case OperatorKind::kFilter: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child,
          BuildStream(plan, op.children[0], tables, options, stats));
      return {std::make_unique<FilterStream>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kProject: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child,
          BuildStream(plan, op.children[0], tables, options, stats));
      return {std::make_unique<ProjectStream>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kJoin: {
      MIDAS_ASSIGN_OR_RETURN(
          auto left, BuildStream(plan, op.children[0], tables, options, stats));
      MIDAS_ASSIGN_OR_RETURN(
          auto right,
          BuildStream(plan, op.children[1], tables, options, stats));
      return {std::make_unique<HashJoinStream>(
          std::move(left), std::move(right), plan.ops[op.children[1]].schema,
          &op, op_stats, stats)};
    }
    case OperatorKind::kAggregate: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child,
          BuildStream(plan, op.children[0], tables, options, stats));
      return {
          std::make_unique<AggregateStream>(std::move(child), &op, op_stats)};
    }
    case OperatorKind::kSort: {
      MIDAS_ASSIGN_OR_RETURN(
          auto child,
          BuildStream(plan, op.children[0], tables, options, stats));
      return {std::make_unique<SortStream>(
          std::move(child), plan.ops[op.children[0]].schema, &op,
          options.batch_rows, op_stats, stats)};
    }
  }
  return Status::Internal("unhandled operator kind in BuildStream");
}

}  // namespace

StatusOr<ExecResult> ExecuteVectorized(const LoweredPlan& plan,
                                       TableProvider* tables,
                                       const ExecOptions& options) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("cannot execute empty lowered plan");
  }
  if (options.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  ExecResult result;
  result.stats.assign(plan.plan_nodes, OpStats{});
  MIDAS_ASSIGN_OR_RETURN(
      auto root,
      BuildStream(plan, plan.root, tables, options, &result.stats));
  const double t0 = MonotonicSeconds();
  DrainInto(root.get(), plan.ops[plan.root].schema, &result.output);
  result.total_seconds = MonotonicSeconds() - t0;
  result.digest = ResultDigest(result.output);
  return result;
}

}  // namespace exec
}  // namespace midas
