#ifndef MIDAS_EXEC_VECTOR_ENGINE_H_
#define MIDAS_EXEC_VECTOR_ENGINE_H_

#include "exec/engine.h"

namespace midas {
namespace exec {

/// \brief Batch-at-a-time columnar execution of a lowered plan.
///
/// Builds a pull-based IStream<Batch> pipeline (Scan over materialized
/// columns, Filter via branch-free selection vectors, Project as zero-copy
/// column picks, order-preserving HashJoin, grouped Aggregate, stable
/// Sort) and drains the root into a materialized result. Per-operator
/// self-time, output rows and actual output bytes land in
/// ExecResult::stats[plan_index].
StatusOr<ExecResult> ExecuteVectorized(const LoweredPlan& plan,
                                       TableProvider* tables,
                                       const ExecOptions& options);

}  // namespace exec
}  // namespace midas

#endif  // MIDAS_EXEC_VECTOR_ENGINE_H_
