#include "federation/engine_kind.h"

namespace midas {

std::string EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHive:
      return "Hive";
    case EngineKind::kPostgres:
      return "PostgreSQL";
    case EngineKind::kSpark:
      return "Spark";
  }
  return "?";
}

StatusOr<EngineKind> EngineKindFromName(const std::string& name) {
  if (name == "Hive") return EngineKind::kHive;
  if (name == "PostgreSQL") return EngineKind::kPostgres;
  if (name == "Spark") return EngineKind::kSpark;
  return Status::NotFound("unknown engine: " + name);
}

}  // namespace midas
