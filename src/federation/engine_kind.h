#ifndef MIDAS_FEDERATION_ENGINE_KIND_H_
#define MIDAS_FEDERATION_ENGINE_KIND_H_

#include <string>

#include "common/status.h"

namespace midas {

/// \brief Database engines a federation site can host — the multi-engine
/// environment of the paper's evaluation (Hive + PostgreSQL, with Spark as
/// the third engine the MIDAS architecture diagram names).
enum class EngineKind {
  kHive = 0,
  kPostgres = 1,
  kSpark = 2,
};

inline constexpr int kNumEngineKinds = 3;

std::string EngineKindName(EngineKind kind);
StatusOr<EngineKind> EngineKindFromName(const std::string& name);

}  // namespace midas

#endif  // MIDAS_FEDERATION_ENGINE_KIND_H_
