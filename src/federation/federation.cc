#include "federation/federation.h"

namespace midas {

StatusOr<SiteId> Federation::AddSite(SiteConfig config) {
  for (const CloudSite& s : sites_) {
    if (s.name() == config.name) {
      return Status::AlreadyExists("duplicate site name: " + config.name);
    }
  }
  const SiteId id = sites_.size();
  sites_.emplace_back(id, std::move(config));
  network_.Resize(sites_.size());
  return id;
}

StatusOr<const CloudSite*> Federation::site(SiteId id) const {
  if (id >= sites_.size()) return Status::OutOfRange("bad site id");
  return &sites_[id];
}

StatusOr<SiteId> Federation::FindSiteByName(const std::string& name) const {
  for (const CloudSite& s : sites_) {
    if (s.name() == name) return s.id();
  }
  return Status::NotFound("no site named " + name);
}

Status Federation::PlaceTable(const std::string& table, SiteId site_id,
                              EngineKind engine) {
  MIDAS_ASSIGN_OR_RETURN(const CloudSite* s, site(site_id));
  if (!s->HostsEngine(engine)) {
    return Status::InvalidArgument("site " + s->name() + " does not host " +
                                   EngineKindName(engine));
  }
  placements_[table] = Placement{site_id, engine};
  return Status::OK();
}

StatusOr<Federation::Placement> Federation::TablePlacement(
    const std::string& table) const {
  auto it = placements_.find(table);
  if (it == placements_.end()) {
    return Status::NotFound("table has no placement: " + table);
  }
  return it->second;
}

std::vector<SiteId> Federation::SitesWithEngine(EngineKind kind) const {
  std::vector<SiteId> out;
  for (const CloudSite& s : sites_) {
    if (s.HostsEngine(kind)) out.push_back(s.id());
  }
  return out;
}

Federation Federation::PaperFederation() {
  Federation fed;
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();

  SiteConfig cloud_a;
  cloud_a.name = "cloud-A";
  cloud_a.provider = ProviderKind::kAmazon;
  cloud_a.engines = {EngineKind::kHive, EngineKind::kSpark};
  cloud_a.node_type = catalog.Find("a1.xlarge").ValueOrDie();
  cloud_a.max_nodes = 16;
  const SiteId a = fed.AddSite(cloud_a).ValueOrDie();

  SiteConfig cloud_b;
  cloud_b.name = "cloud-B";
  cloud_b.provider = ProviderKind::kMicrosoft;
  cloud_b.engines = {EngineKind::kPostgres};
  cloud_b.node_type = catalog.Find("B2S").ValueOrDie();
  cloud_b.max_nodes = 8;
  const SiteId b = fed.AddSite(cloud_b).ValueOrDie();

  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.latency_ms = 40.0;
  wan.egress_price_per_gib = 0.09;  // AWS inter-region egress tier
  fed.network().SetLink(a, b, wan).CheckOK();
  wan.egress_price_per_gib = 0.087;  // Azure outbound tier
  fed.network().SetLink(b, a, wan).CheckOK();
  return fed;
}

Federation Federation::ThreeCloudFederation() {
  Federation fed = PaperFederation();
  const InstanceCatalog catalog = InstanceCatalog::ExtendedThreeProviders();

  SiteConfig cloud_c;
  cloud_c.name = "cloud-C";
  cloud_c.provider = ProviderKind::kGoogle;
  cloud_c.engines = {EngineKind::kSpark, EngineKind::kPostgres};
  cloud_c.node_type = catalog.Find("e2-medium").ValueOrDie();
  cloud_c.max_nodes = 16;
  const SiteId c = fed.AddSite(cloud_c).ValueOrDie();

  const SiteId a = fed.FindSiteByName("cloud-A").ValueOrDie();
  const SiteId b = fed.FindSiteByName("cloud-B").ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 150.0;
  wan.latency_ms = 30.0;
  wan.egress_price_per_gib = 0.09;  // AWS egress
  fed.network().SetLink(a, c, wan).CheckOK();
  wan.egress_price_per_gib = 0.087;  // Azure egress
  fed.network().SetLink(b, c, wan).CheckOK();
  wan.egress_price_per_gib = 0.12;  // GCP premium-tier egress
  fed.network().SetLink(c, a, wan).CheckOK();
  fed.network().SetLink(c, b, wan).CheckOK();
  return fed;
}

Federation Federation::PaperPrivateCloud() {
  Federation fed;
  // §4.1: three machines, 4 x 2.4 GHz CPU, 8 GiB memory, 80 GiB disk each.
  InstanceType node;
  node.provider = ProviderKind::kPrivate;
  node.name = "galactica-node";
  node.vcpu = 4;
  node.memory_gib = 8.0;
  node.storage_gib = 80.0;
  // A private cluster has no rental price; we assign the amortised
  // cost-equivalent of the closest public shape (a1.xlarge) so that the
  // monetary metric stays meaningful.
  node.price_per_hour = 0.0197;

  SiteConfig cfg;
  cfg.name = "galactica";
  cfg.provider = ProviderKind::kPrivate;
  cfg.engines = {EngineKind::kHive, EngineKind::kPostgres, EngineKind::kSpark};
  cfg.node_type = node;
  cfg.max_nodes = 3;
  fed.AddSite(cfg).ValueOrDie();
  return fed;
}

}  // namespace midas
