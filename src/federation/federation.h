#ifndef MIDAS_FEDERATION_FEDERATION_H_
#define MIDAS_FEDERATION_FEDERATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/network.h"
#include "federation/site.h"

namespace midas {

/// \brief The cloud federation: the set of interconnected sites, their
/// network, and the placement of base tables onto sites/engines.
///
/// This is the environment every query plan is annotated against and the
/// execution simulator runs in.
class Federation {
 public:
  Federation() = default;

  /// Adds a site and returns its id. Site names must be unique.
  StatusOr<SiteId> AddSite(SiteConfig config);

  size_t num_sites() const { return sites_.size(); }
  StatusOr<const CloudSite*> site(SiteId id) const;
  StatusOr<SiteId> FindSiteByName(const std::string& name) const;
  const std::vector<CloudSite>& sites() const { return sites_; }

  NetworkModel& network() { return network_; }
  const NetworkModel& network() const { return network_; }

  /// Records that a base table lives at `site` inside `engine`. A table has
  /// exactly one home in this model (the paper's scenario: Patient on
  /// cloud A in Hive, GeneralInfo on cloud B in PostgreSQL).
  Status PlaceTable(const std::string& table, SiteId site, EngineKind engine);

  struct Placement {
    SiteId site;
    EngineKind engine;
  };
  StatusOr<Placement> TablePlacement(const std::string& table) const;

  /// All sites hosting a given engine.
  std::vector<SiteId> SitesWithEngine(EngineKind kind) const;

  /// Two-provider medical federation of the paper's running example:
  /// cloud-A = Amazon (Hive + Spark, a1.xlarge nodes),
  /// cloud-B = Microsoft (PostgreSQL, B2S nodes),
  /// 100 Mbps WAN with published egress prices.
  static Federation PaperFederation();

  /// The private 3-node cluster of §4.1 (one site, Hive + PostgreSQL +
  /// Spark), used for the TPC-H experiments.
  static Federation PaperPrivateCloud();

  /// Paper §5 future work — a third provider: cloud-A (Amazon, Hive +
  /// Spark), cloud-B (Microsoft, PostgreSQL), cloud-C (Google, Spark +
  /// PostgreSQL), fully meshed WAN with per-provider egress prices.
  static Federation ThreeCloudFederation();

 private:
  std::vector<CloudSite> sites_;
  NetworkModel network_;
  std::map<std::string, Placement> placements_;
};

}  // namespace midas

#endif  // MIDAS_FEDERATION_FEDERATION_H_
