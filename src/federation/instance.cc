#include "federation/instance.h"

#include <limits>

namespace midas {

std::string ProviderKindName(ProviderKind kind) {
  switch (kind) {
    case ProviderKind::kAmazon:
      return "Amazon";
    case ProviderKind::kMicrosoft:
      return "Microsoft";
    case ProviderKind::kGoogle:
      return "Google";
    case ProviderKind::kPrivate:
      return "Private";
  }
  return "?";
}

InstanceCatalog InstanceCatalog::PaperTable1() {
  InstanceCatalog catalog;
  // Amazon a1 family — "EBS-Only" means no bundled storage.
  catalog.Add({ProviderKind::kAmazon, "a1.medium", 1, 2.0, 0.0, 0.0049});
  catalog.Add({ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098});
  catalog.Add({ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197});
  catalog.Add({ProviderKind::kAmazon, "a1.2xlarge", 8, 16.0, 0.0, 0.0394});
  catalog.Add({ProviderKind::kAmazon, "a1.4xlarge", 16, 32.0, 0.0, 0.0788});
  // Microsoft B family — storage bundled.
  catalog.Add({ProviderKind::kMicrosoft, "B1S", 1, 1.0, 2.0, 0.011});
  catalog.Add({ProviderKind::kMicrosoft, "B1MS", 1, 2.0, 4.0, 0.021});
  catalog.Add({ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042});
  catalog.Add({ProviderKind::kMicrosoft, "B2MS", 2, 8.0, 16.0, 0.084});
  catalog.Add({ProviderKind::kMicrosoft, "B4MS", 4, 16.0, 32.0, 0.166});
  catalog.Add({ProviderKind::kMicrosoft, "B8MS", 8, 32.0, 64.0, 0.333});
  return catalog;
}

InstanceCatalog InstanceCatalog::ExtendedThreeProviders() {
  InstanceCatalog catalog = PaperTable1();
  // Google e2 family, on-demand (storage unbundled like Amazon's EBS).
  catalog.Add({ProviderKind::kGoogle, "e2-micro", 2, 1.0, 0.0, 0.0084});
  catalog.Add({ProviderKind::kGoogle, "e2-small", 2, 2.0, 0.0, 0.0168});
  catalog.Add({ProviderKind::kGoogle, "e2-medium", 2, 4.0, 0.0, 0.0335});
  catalog.Add({ProviderKind::kGoogle, "e2-standard-4", 4, 16.0, 0.0, 0.134});
  catalog.Add({ProviderKind::kGoogle, "e2-standard-8", 8, 32.0, 0.0, 0.268});
  return catalog;
}

void InstanceCatalog::Add(InstanceType type) {
  types_.push_back(std::move(type));
}

StatusOr<InstanceType> InstanceCatalog::Find(const std::string& name) const {
  for (const InstanceType& t : types_) {
    if (t.name == name) return t;
  }
  return Status::NotFound("instance type not in catalogue: " + name);
}

std::vector<InstanceType> InstanceCatalog::ByProvider(
    ProviderKind provider) const {
  std::vector<InstanceType> out;
  for (const InstanceType& t : types_) {
    if (t.provider == provider) out.push_back(t);
  }
  return out;
}

StatusOr<InstanceType> InstanceCatalog::CheapestSatisfying(
    int min_vcpu, double min_memory_gib,
    std::optional<ProviderKind> provider) const {
  const InstanceType* best = nullptr;
  for (const InstanceType& t : types_) {
    if (provider.has_value() && t.provider != *provider) continue;
    if (t.vcpu < min_vcpu || t.memory_gib < min_memory_gib) continue;
    if (best == nullptr || t.price_per_hour < best->price_per_hour) {
      best = &t;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no instance satisfies the resource request");
  }
  return *best;
}

}  // namespace midas
