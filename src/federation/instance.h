#ifndef MIDAS_FEDERATION_INSTANCE_H_
#define MIDAS_FEDERATION_INSTANCE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace midas {

/// \brief Cloud service provider selling VM instances.
enum class ProviderKind {
  kAmazon = 0,
  kMicrosoft = 1,
  kGoogle = 2,
  kPrivate = 3,
};

std::string ProviderKindName(ProviderKind kind);

/// \brief One purchasable VM shape — a row of the paper's Table 1.
struct InstanceType {
  ProviderKind provider = ProviderKind::kAmazon;
  std::string name;
  int vcpu = 1;
  double memory_gib = 1.0;
  /// 0 means storage is not bundled (Amazon "EBS-Only").
  double storage_gib = 0.0;
  double price_per_hour = 0.0;
};

/// \brief Catalogue of instance types offered across providers.
class InstanceCatalog {
 public:
  InstanceCatalog() = default;

  /// The exact pricing table of the paper (Table 1): Amazon a1.medium …
  /// a1.4xlarge and Microsoft B1S … B8MS.
  static InstanceCatalog PaperTable1();

  /// Table 1 extended with a third provider (paper §5's future work:
  /// "validate our proposal with more cloud providers"): Google Cloud
  /// e2 shapes at their on-demand prices.
  static InstanceCatalog ExtendedThreeProviders();

  void Add(InstanceType type);

  size_t size() const { return types_.size(); }
  const std::vector<InstanceType>& types() const { return types_; }

  /// Lookup by instance name ("a1.large"). NotFound when missing.
  StatusOr<InstanceType> Find(const std::string& name) const;

  std::vector<InstanceType> ByProvider(ProviderKind provider) const;

  /// Cheapest instance with at least the requested vCPU and memory,
  /// optionally restricted to one provider. NotFound when nothing fits.
  StatusOr<InstanceType> CheapestSatisfying(
      int min_vcpu, double min_memory_gib,
      std::optional<ProviderKind> provider = std::nullopt) const;

 private:
  std::vector<InstanceType> types_;
};

}  // namespace midas

#endif  // MIDAS_FEDERATION_INSTANCE_H_
