#include "federation/network.h"

#include <algorithm>

namespace midas {

namespace {
constexpr double kBitsPerMegabit = 1e6;
constexpr double kBytesPerGib = 1024.0 * 1024.0 * 1024.0;
}  // namespace

NetworkModel::NetworkModel(size_t num_sites) { Resize(num_sites); }

void NetworkModel::Resize(size_t num_sites) {
  // Preserve already-configured links (a federation grows one site at a
  // time after links may have been set).
  std::vector<NetworkLink> grown(num_sites * num_sites, NetworkLink{});
  const size_t keep = std::min(num_sites, num_sites_);
  for (size_t i = 0; i < keep; ++i) {
    for (size_t j = 0; j < keep; ++j) {
      grown[i * num_sites + j] = links_[i * num_sites_ + j];
    }
  }
  num_sites_ = num_sites;
  links_ = std::move(grown);
}

Status NetworkModel::CheckIds(SiteId a, SiteId b) const {
  if (a >= num_sites_ || b >= num_sites_) {
    return Status::OutOfRange("site id out of range");
  }
  return Status::OK();
}

Status NetworkModel::SetLink(SiteId a, SiteId b, NetworkLink link) {
  MIDAS_RETURN_IF_ERROR(CheckIds(a, b));
  if (link.bandwidth_mbps <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  links_[a * num_sites_ + b] = link;
  return Status::OK();
}

Status NetworkModel::SetSymmetricLink(SiteId a, SiteId b, NetworkLink link) {
  MIDAS_RETURN_IF_ERROR(SetLink(a, b, link));
  return SetLink(b, a, link);
}

StatusOr<NetworkLink> NetworkModel::Link(SiteId a, SiteId b) const {
  MIDAS_RETURN_IF_ERROR(CheckIds(a, b));
  return links_[a * num_sites_ + b];
}

StatusOr<double> NetworkModel::TransferSeconds(SiteId a, SiteId b,
                                               double bytes) const {
  MIDAS_RETURN_IF_ERROR(CheckIds(a, b));
  if (bytes < 0.0) return Status::InvalidArgument("negative byte count");
  if (a == b) return 0.0;
  const NetworkLink& link = links_[a * num_sites_ + b];
  return link.latency_ms / 1000.0 +
         bytes * 8.0 / (link.bandwidth_mbps * kBitsPerMegabit);
}

StatusOr<double> NetworkModel::TransferCost(SiteId a, SiteId b,
                                            double bytes) const {
  MIDAS_RETURN_IF_ERROR(CheckIds(a, b));
  if (bytes < 0.0) return Status::InvalidArgument("negative byte count");
  if (a == b) return 0.0;
  const NetworkLink& link = links_[a * num_sites_ + b];
  return link.egress_price_per_gib * bytes / kBytesPerGib;
}

}  // namespace midas
