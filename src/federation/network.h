#ifndef MIDAS_FEDERATION_NETWORK_H_
#define MIDAS_FEDERATION_NETWORK_H_

#include <vector>

#include "common/status.h"
#include "federation/site.h"

namespace midas {

/// \brief Characteristics of one directed inter-site link. Wide-range
/// communications are a core source of federation variance (§1).
struct NetworkLink {
  double bandwidth_mbps = 1000.0;
  double latency_ms = 1.0;
  /// What the *source* provider charges per GiB leaving its cloud.
  double egress_price_per_gib = 0.0;
};

/// \brief Pairwise inter-site network model: bandwidth, latency and egress
/// pricing between every pair of federation sites.
class NetworkModel {
 public:
  explicit NetworkModel(size_t num_sites = 0);

  void Resize(size_t num_sites);
  size_t num_sites() const { return num_sites_; }

  /// Sets the directed link a -> b.
  Status SetLink(SiteId a, SiteId b, NetworkLink link);
  /// Sets both directions with the same characteristics.
  Status SetSymmetricLink(SiteId a, SiteId b, NetworkLink link);

  StatusOr<NetworkLink> Link(SiteId a, SiteId b) const;

  /// Seconds to move `bytes` from a to b (latency + bytes/bandwidth);
  /// 0 for an intra-site move.
  StatusOr<double> TransferSeconds(SiteId a, SiteId b, double bytes) const;

  /// Egress dollars to move `bytes` from a to b; 0 intra-site.
  StatusOr<double> TransferCost(SiteId a, SiteId b, double bytes) const;

 private:
  Status CheckIds(SiteId a, SiteId b) const;

  size_t num_sites_ = 0;
  std::vector<NetworkLink> links_;  // row-major num_sites x num_sites
};

}  // namespace midas

#endif  // MIDAS_FEDERATION_NETWORK_H_
