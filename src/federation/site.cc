#include "federation/site.h"

#include <algorithm>

namespace midas {

bool CloudSite::HostsEngine(EngineKind kind) const {
  return std::find(config_.engines.begin(), config_.engines.end(), kind) !=
         config_.engines.end();
}

StatusOr<double> CloudSite::VmCost(int nodes, double seconds) const {
  if (nodes <= 0) {
    return Status::InvalidArgument("node count must be positive");
  }
  if (nodes > config_.max_nodes) {
    return Status::OutOfRange("site " + config_.name + " caps at " +
                              std::to_string(config_.max_nodes) + " nodes");
  }
  if (seconds < 0.0) {
    return Status::InvalidArgument("negative duration");
  }
  return config_.node_type.price_per_hour * nodes * seconds / 3600.0;
}

}  // namespace midas
