#ifndef MIDAS_FEDERATION_SITE_H_
#define MIDAS_FEDERATION_SITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "federation/engine_kind.h"
#include "federation/instance.h"

namespace midas {

/// Index of a site within its Federation.
using SiteId = size_t;

/// \brief Static description of one cloud site participating in the
/// federation: a provider region (or a private cloud) that hosts database
/// engines and rents VMs of one instance family.
struct SiteConfig {
  std::string name;
  ProviderKind provider = ProviderKind::kAmazon;
  /// Engines deployed at this site.
  std::vector<EngineKind> engines;
  /// VM shape worker nodes are rented as.
  InstanceType node_type;
  /// Upper bound on rentable nodes (elasticity limit).
  int max_nodes = 16;
};

/// \brief A site instantiated inside a Federation.
class CloudSite {
 public:
  CloudSite(SiteId id, SiteConfig config)
      : id_(id), config_(std::move(config)) {}

  SiteId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  ProviderKind provider() const { return config_.provider; }
  const InstanceType& node_type() const { return config_.node_type; }
  int max_nodes() const { return config_.max_nodes; }
  const std::vector<EngineKind>& engines() const { return config_.engines; }

  bool HostsEngine(EngineKind kind) const;

  /// Pay-as-you-go VM rental for `nodes` nodes held for `seconds`
  /// (per-second billing, the granularity modern providers bill at).
  StatusOr<double> VmCost(int nodes, double seconds) const;

 private:
  SiteId id_;
  SiteConfig config_;
};

}  // namespace midas

#endif  // MIDAS_FEDERATION_SITE_H_
