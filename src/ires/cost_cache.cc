#include "ires/cost_cache.h"

#include <mutex>
#include <utility>

namespace midas {

std::optional<Vector> FeatureCostCache::Lookup(const Vector& features) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(features);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void FeatureCostCache::Insert(const Vector& features, Vector cost) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.emplace(features, std::move(cost));
}

size_t FeatureCostCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

void FeatureCostCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace midas
