#include "ires/cost_cache.h"

#include <mutex>
#include <utility>

namespace midas {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FeatureCostCache::FeatureCostCache(size_t num_shards)
    : shards_(RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards)),
      shard_mask_(shards_.size() - 1) {}

FeatureCostCache::Shard& FeatureCostCache::ShardFor(
    const Vector& features, uint64_t epoch, uint64_t cache_namespace) const {
  // Upper hash bits pick the shard so the shard index stays independent of
  // the map's own bucket choice (which consumes the low bits).
  const size_t h = KeyHash::Hash(cache_namespace, epoch, features);
  return shards_[(h >> 48) & shard_mask_];
}

std::optional<Vector> FeatureCostCache::Lookup(
    const Vector& features, uint64_t epoch, uint64_t cache_namespace) const {
  Shard& shard = ShardFor(features, epoch, cache_namespace);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const auto it = shard.entries.find(Key{cache_namespace, epoch, features});
  if (it == shard.entries.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void FeatureCostCache::Insert(const Vector& features, Vector cost,
                              uint64_t epoch, uint64_t cache_namespace) {
  Shard& shard = ShardFor(features, epoch, cache_namespace);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  shard.entries.emplace(Key{cache_namespace, epoch, features},
                        std::move(cost));
}

size_t FeatureCostCache::PruneOtherEpochs(uint64_t keep) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    size_t shard_evicted = 0;
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.epoch != keep) {
        it = shard.entries.erase(it);
        ++shard_evicted;
      } else {
        ++it;
      }
    }
    if (shard_evicted != 0) {
      shard.pruned.fetch_add(shard_evicted, std::memory_order_relaxed);
      evicted += shard_evicted;
    }
  }
  return evicted;
}

size_t FeatureCostCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

uint64_t FeatureCostCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.hits.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FeatureCostCache::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.misses.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FeatureCostCache::pruned() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.pruned.load(std::memory_order_relaxed);
  }
  return total;
}

void FeatureCostCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.pruned.store(0, std::memory_order_relaxed);
  }
}

}  // namespace midas
