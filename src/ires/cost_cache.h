#ifndef MIDAS_IRES_COST_CACHE_H_
#define MIDAS_IRES_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief Concurrent memo table for predicted cost vectors, keyed by the
/// plan's extracted feature vector (Example 2.1's variables).
///
/// A federation's QEP space maps many plans onto the same features — every
/// commuted join that scans the same bytes with the same VM counts — so the
/// estimator only needs to run once per distinct feature vector
/// (Example 3.1's 18,200 configurations collapse to the distinct VM-count
/// combinations).
///
/// The table is lock-striped: keys are spread over `num_shards` independent
/// shards by the upper bits of their VectorHash, each shard owning its own
/// shared_mutex, map and hit/miss counters. Warm parallel lookups therefore
/// contend only when two threads land on the same shard, instead of
/// funnelling every reader through one global lock. hits()/misses()/size()
/// aggregate across shards.
///
/// Correctness requires the predictor to be a pure function of the
/// features; predictors that read other plan structure (e.g. the raw
/// simulator, whose transfer costs depend on join shape) must not be
/// cached.
class FeatureCostCache {
 public:
  /// Default stripe count: enough shards that 8-16 threads rarely collide,
  /// small enough that size()/Clear() stay cheap.
  static constexpr size_t kDefaultShards = 16;

  /// \param num_shards rounded up to the next power of two, at least 1.
  explicit FeatureCostCache(size_t num_shards = kDefaultShards);

  /// Returns the cached cost for `features`, counting a hit or a miss.
  std::optional<Vector> Lookup(const Vector& features) const;

  /// Stores the cost for `features` (first writer wins on a race).
  void Insert(const Vector& features, Vector cost);

  /// Entry count summed over all shards.
  size_t size() const;
  /// Hit/miss totals aggregated over the per-shard counters.
  uint64_t hits() const;
  uint64_t misses() const;

  size_t num_shards() const { return shards_.size(); }

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Vector, Vector, VectorHash> entries;
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
  };

  Shard& ShardFor(const Vector& features) const;

  // Fixed at construction; Shard is neither copyable nor movable, so the
  // vector is sized once and never reallocated.
  mutable std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace midas

#endif  // MIDAS_IRES_COST_CACHE_H_
