#ifndef MIDAS_IRES_COST_CACHE_H_
#define MIDAS_IRES_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief Concurrent memo table for predicted cost vectors, keyed by the
/// plan's extracted feature vector (Example 2.1's variables).
///
/// A federation's QEP space maps many plans onto the same features — every
/// commuted join that scans the same bytes with the same VM counts — so the
/// estimator only needs to run once per distinct feature vector
/// (Example 3.1's 18,200 configurations collapse to the distinct VM-count
/// combinations).
///
/// The table is lock-striped: keys are spread over `num_shards` independent
/// shards by the upper bits of their VectorHash, each shard owning its own
/// shared_mutex, map and hit/miss counters. Warm parallel lookups therefore
/// contend only when two threads land on the same shard, instead of
/// funnelling every reader through one global lock. hits()/misses()/size()
/// aggregate across shards.
///
/// Entries are additionally keyed by the snapshot *epoch* the cost was
/// predicted against: a cost computed from an epoch-N estimator snapshot
/// is never served to an optimization pinned to epoch N+1, even when both
/// run concurrently over a shared cache. Callers that don't version their
/// estimator state use the default epoch 0 and get the old behaviour.
/// PruneOtherEpochs evicts superseded epochs without resetting counters.
///
/// Entries also carry a caller-chosen *namespace* (default 0): predictors
/// that are pure in the features only within some context — e.g. a
/// per-tenant history scope, where two tenants' estimators map the same
/// feature vector to different costs — pass a namespace derived from that
/// context so tenants sharing one epoch never read each other's entries.
///
/// Correctness requires the predictor to be a pure function of the
/// features (at a fixed epoch, within a namespace); predictors that read
/// other plan structure (e.g. the raw simulator, whose transfer costs
/// depend on join shape) must not be cached.
class FeatureCostCache {
 public:
  /// Default stripe count: enough shards that 8-16 threads rarely collide,
  /// small enough that size()/Clear() stay cheap.
  static constexpr size_t kDefaultShards = 16;

  /// \param num_shards rounded up to the next power of two, at least 1.
  explicit FeatureCostCache(size_t num_shards = kDefaultShards);

  /// Returns the cost cached for `features` under `epoch` and
  /// `cache_namespace`, counting a hit or a miss. An entry inserted under
  /// a different epoch or namespace never matches.
  std::optional<Vector> Lookup(const Vector& features, uint64_t epoch = 0,
                               uint64_t cache_namespace = 0) const;

  /// Stores the cost for `features` under `epoch` and `cache_namespace`
  /// (first writer wins on a race).
  void Insert(const Vector& features, Vector cost, uint64_t epoch = 0,
              uint64_t cache_namespace = 0);

  /// Evicts every entry whose epoch differs from `keep` and returns how
  /// many were dropped. Hit/miss counters are cumulative across the
  /// cache's lifetime and are NOT reset; the evictions add to the
  /// cumulative pruned() counter (how a long-lived server audits that its
  /// cache memory stays bounded across publications).
  size_t PruneOtherEpochs(uint64_t keep);

  /// Entry count summed over all shards.
  size_t size() const;
  /// Hit/miss totals aggregated over the per-shard counters.
  uint64_t hits() const;
  uint64_t misses() const;
  /// Cumulative entries evicted by PruneOtherEpochs over the cache's
  /// lifetime (Clear resets it along with the other counters).
  uint64_t pruned() const;

  size_t num_shards() const { return shards_.size(); }

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  /// (namespace, epoch, features) composite key.
  struct Key {
    uint64_t ns;
    uint64_t epoch;
    Vector features;
    bool operator==(const Key& other) const {
      return ns == other.ns && epoch == other.epoch &&
             features == other.features;
    }
  };

  struct KeyHash {
    static uint64_t Mix(uint64_t x) {
      // splitmix64-style scramble; consecutive epochs must not land in
      // adjacent buckets.
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }
    static size_t Hash(uint64_t ns, uint64_t epoch, const Vector& features) {
      return VectorHash()(features) ^
             static_cast<size_t>(Mix(epoch ^ Mix(ns)));
    }
    size_t operator()(const Key& key) const {
      return Hash(key.ns, key.epoch, key.features);
    }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, Vector, KeyHash> entries;
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
    mutable std::atomic<uint64_t> pruned{0};
  };

  Shard& ShardFor(const Vector& features, uint64_t epoch,
                  uint64_t cache_namespace) const;

  // Fixed at construction; Shard is neither copyable nor movable, so the
  // vector is sized once and never reallocated.
  mutable std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace midas

#endif  // MIDAS_IRES_COST_CACHE_H_
