#ifndef MIDAS_IRES_COST_CACHE_H_
#define MIDAS_IRES_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "linalg/matrix.h"

namespace midas {

/// \brief Concurrent memo table for predicted cost vectors, keyed by the
/// plan's extracted feature vector (Example 2.1's variables).
///
/// A federation's QEP space maps many plans onto the same features — every
/// commuted join that scans the same bytes with the same VM counts — so the
/// estimator only needs to run once per distinct feature vector
/// (Example 3.1's 18,200 configurations collapse to the distinct VM-count
/// combinations). Readers take a shared lock; inserts take an exclusive
/// one. Hit/miss counters are atomics so concurrent lookups stay cheap.
///
/// Correctness requires the predictor to be a pure function of the
/// features; predictors that read other plan structure (e.g. the raw
/// simulator, whose transfer costs depend on join shape) must not be
/// cached.
class FeatureCostCache {
 public:
  FeatureCostCache() = default;

  /// Returns the cached cost for `features`, counting a hit or a miss.
  std::optional<Vector> Lookup(const Vector& features) const;

  /// Stores the cost for `features` (first writer wins on a race).
  void Insert(const Vector& features, Vector cost);

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<Vector, Vector, VectorHash> entries_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace midas

#endif  // MIDAS_IRES_COST_CACHE_H_
