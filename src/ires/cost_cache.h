#ifndef MIDAS_IRES_COST_CACHE_H_
#define MIDAS_IRES_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief Concurrent memo table for predicted cost vectors, keyed by the
/// plan's extracted feature vector (Example 2.1's variables).
///
/// A federation's QEP space maps many plans onto the same features — every
/// commuted join that scans the same bytes with the same VM counts — so the
/// estimator only needs to run once per distinct feature vector
/// (Example 3.1's 18,200 configurations collapse to the distinct VM-count
/// combinations).
///
/// The table is lock-striped: keys are spread over `num_shards` independent
/// shards by the upper bits of their VectorHash, each shard owning its own
/// shared_mutex, map and hit/miss counters. Warm parallel lookups therefore
/// contend only when two threads land on the same shard, instead of
/// funnelling every reader through one global lock. hits()/misses()/size()
/// aggregate across shards.
///
/// Entries are additionally keyed by the snapshot *epoch* the cost was
/// predicted against: a cost computed from an epoch-N estimator snapshot
/// is never served to an optimization pinned to epoch N+1, even when both
/// run concurrently over a shared cache. Callers that don't version their
/// estimator state use the default epoch 0 and get the old behaviour.
/// PruneOtherEpochs evicts superseded epochs without resetting counters.
///
/// Correctness requires the predictor to be a pure function of the
/// features (at a fixed epoch); predictors that read other plan structure
/// (e.g. the raw simulator, whose transfer costs depend on join shape)
/// must not be cached.
class FeatureCostCache {
 public:
  /// Default stripe count: enough shards that 8-16 threads rarely collide,
  /// small enough that size()/Clear() stay cheap.
  static constexpr size_t kDefaultShards = 16;

  /// \param num_shards rounded up to the next power of two, at least 1.
  explicit FeatureCostCache(size_t num_shards = kDefaultShards);

  /// Returns the cost cached for `features` under `epoch`, counting a hit
  /// or a miss. An entry inserted under a different epoch never matches.
  std::optional<Vector> Lookup(const Vector& features,
                               uint64_t epoch = 0) const;

  /// Stores the cost for `features` under `epoch` (first writer wins on a
  /// race).
  void Insert(const Vector& features, Vector cost, uint64_t epoch = 0);

  /// Evicts every entry whose epoch differs from `keep`. Hit/miss counters
  /// are cumulative across the cache's lifetime and are NOT reset.
  void PruneOtherEpochs(uint64_t keep);

  /// Entry count summed over all shards.
  size_t size() const;
  /// Hit/miss totals aggregated over the per-shard counters.
  uint64_t hits() const;
  uint64_t misses() const;

  size_t num_shards() const { return shards_.size(); }

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  /// (epoch, features) composite key.
  struct Key {
    uint64_t epoch;
    Vector features;
    bool operator==(const Key& other) const {
      return epoch == other.epoch && features == other.features;
    }
  };

  struct KeyHash {
    // splitmix64-style scramble of the epoch folded into the feature
    // hash; consecutive epochs must not land in adjacent buckets.
    static size_t Hash(uint64_t epoch, const Vector& features) {
      uint64_t e = epoch + 0x9e3779b97f4a7c15ULL;
      e = (e ^ (e >> 30)) * 0xbf58476d1ce4e5b9ULL;
      e = (e ^ (e >> 27)) * 0x94d049bb133111ebULL;
      e ^= e >> 31;
      return VectorHash()(features) ^ static_cast<size_t>(e);
    }
    size_t operator()(const Key& key) const {
      return Hash(key.epoch, key.features);
    }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, Vector, KeyHash> entries;
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
  };

  Shard& ShardFor(const Vector& features, uint64_t epoch) const;

  // Fixed at construction; Shard is neither copyable nor movable, so the
  // vector is sized once and never reallocated.
  mutable std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace midas

#endif  // MIDAS_IRES_COST_CACHE_H_
