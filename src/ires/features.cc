#include "ires/features.h"

#include <algorithm>

namespace midas {

namespace {

constexpr double kBytesPerMib = 1024.0 * 1024.0;

// Bytes each scan reads at its site (post partition pruning).
void AccumulateScannedBytes(const PlanNode& node,
                            std::vector<double>* per_site) {
  if (node.kind == OperatorKind::kScan && node.site.has_value()) {
    if (*node.site < per_site->size()) {
      (*per_site)[*node.site] += node.output_bytes;
    }
  }
  for (const auto& child : node.children) {
    AccumulateScannedBytes(*child, per_site);
  }
}

}  // namespace

StatusOr<Vector> ExtractFeatures(const Federation& federation,
                                 const QueryPlan& plan) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  const size_t n_sites = federation.num_sites();
  std::vector<double> data_bytes(n_sites, 0.0);
  std::vector<double> nodes(n_sites, 0.0);

  for (const PlanNode* node : plan.Nodes()) {
    if (!node->site.has_value() || !node->engine.has_value()) {
      return Status::InvalidArgument(
          "plan lacks physical annotations; enumerate first");
    }
    if (*node->site >= n_sites) {
      return Status::OutOfRange("plan references unknown site");
    }
    nodes[*node->site] =
        std::max(nodes[*node->site], static_cast<double>(node->num_nodes));
  }
  AccumulateScannedBytes(*plan.root(), &data_bytes);

  Vector features;
  features.reserve(2 * n_sites);
  for (size_t s = 0; s < n_sites; ++s) {
    features.push_back(data_bytes[s] / kBytesPerMib);
    features.push_back(nodes[s]);
  }
  return features;
}

std::vector<std::string> FeatureNames(const Federation& federation) {
  std::vector<std::string> names;
  names.reserve(2 * federation.num_sites());
  for (const CloudSite& site : federation.sites()) {
    names.push_back("data_mib_" + site.name());
    names.push_back("nodes_" + site.name());
  }
  return names;
}

}  // namespace midas
