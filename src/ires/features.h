#ifndef MIDAS_IRES_FEATURES_H_
#define MIDAS_IRES_FEATURES_H_

#include <string>
#include <vector>

#include "federation/federation.h"
#include "linalg/matrix.h"
#include "query/plan.h"

namespace midas {

/// \brief Regression features of a physical plan — exactly Example 2.1's
/// variables, generalised per federation site:
///   data_mib_<site> — MiB of base data the plan scans at the site (after
///                     partition pruning): the x_Pa / x_Ge "size of data"
///                     variables;
///   nodes_<site>    — VMs the plan holds there: x_nodeA / x_nodeB.
///
/// Arity is fixed at 2 × num_sites for a given federation, so one MLR can
/// be fitted per query template ("our cost functions are functions of the
/// size of data", §3). Constant columns (a table whose size never varies)
/// are harmless: the OLS fit is rank-revealing.
///
/// Requires the plan's cardinalities to be estimated and its physical
/// annotations set (the enumerator produces both).
StatusOr<Vector> ExtractFeatures(const Federation& federation,
                                 const QueryPlan& plan);

/// Names matching ExtractFeatures' layout.
std::vector<std::string> FeatureNames(const Federation& federation);

}  // namespace midas

#endif  // MIDAS_IRES_FEATURES_H_
