#include "ires/history.h"

namespace midas {

History::History(std::vector<std::string> feature_names,
                 std::vector<std::string> metric_names)
    : feature_names_(std::move(feature_names)),
      metric_names_(std::move(metric_names)) {}

Status History::Record(const std::string& scope, Observation observation) {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) {
    it = scopes_.emplace(scope, TrainingSet(feature_names_, metric_names_))
             .first;
  }
  return it->second.Add(std::move(observation));
}

StatusOr<const TrainingSet*> History::Get(const std::string& scope) const {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) {
    return Status::NotFound("no history for scope: " + scope);
  }
  return &it->second;
}

size_t History::SizeOf(const std::string& scope) const {
  auto it = scopes_.find(scope);
  return it == scopes_.end() ? 0 : it->second.size();
}

std::vector<std::string> History::Scopes() const {
  std::vector<std::string> out;
  out.reserve(scopes_.size());
  for (const auto& [name, unused] : scopes_) out.push_back(name);
  return out;
}

void History::TrimAll(size_t keep) {
  for (auto& [name, set] : scopes_) set.TrimToNewest(keep);
}

}  // namespace midas
