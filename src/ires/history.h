#ifndef MIDAS_IRES_HISTORY_H_
#define MIDAS_IRES_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "regression/training_set.h"

namespace midas {

/// \brief Store of historical cost measurements, keyed by model scope.
///
/// IReS keeps one cost model per operator/engine combination; in this
/// library the scope key is chosen by the caller (the MIDAS system keys by
/// query template, e.g., "tpch-q12"). Each scope holds a timestamp-ordered
/// TrainingSet over a fixed feature/metric schema.
class History {
 public:
  History(std::vector<std::string> feature_names,
          std::vector<std::string> metric_names);

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Appends one observation to a scope (creating the scope on first use).
  Status Record(const std::string& scope, Observation observation);

  /// The scope's training set; NotFound before the first Record.
  StatusOr<const TrainingSet*> Get(const std::string& scope) const;

  /// Number of observations in a scope (0 when absent).
  size_t SizeOf(const std::string& scope) const;

  std::vector<std::string> Scopes() const;

  /// Prunes every scope to its newest `keep` observations.
  void TrimAll(size_t keep);

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> metric_names_;
  std::map<std::string, TrainingSet> scopes_;
};

}  // namespace midas

#endif  // MIDAS_IRES_HISTORY_H_
