#include "ires/modelling.h"

#include <algorithm>

namespace midas {

namespace {

/// Costs are physical quantities; an extrapolating model can go negative
/// on out-of-hull feature points, which no caller can use.
void ClampCosts(Vector* costs) {
  for (double& c : *costs) c = std::max(0.0, c);
}

void ClampCosts(Matrix* costs) {
  for (size_t r = 0; r < costs->rows(); ++r) {
    for (size_t m = 0; m < costs->cols(); ++m) {
      (*costs)(r, m) = std::max(0.0, (*costs)(r, m));
    }
  }
}

}  // namespace

EstimatorConfig EstimatorConfig::DreamDefault() {
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kDream;
  return cfg;
}

EstimatorConfig EstimatorConfig::Bml(WindowPolicy window) {
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kBml;
  cfg.window = window;
  return cfg;
}

std::string EstimatorName(const EstimatorConfig& config) {
  if (config.kind == EstimatorKind::kDream) return "DREAM";
  return WindowPolicyName(config.window);
}

Modelling::Modelling(std::vector<std::string> feature_names,
                     std::vector<std::string> metric_names, uint64_t seed)
    : publisher_(std::move(feature_names), std::move(metric_names)) {
  selector_.AddDefaultCandidates(seed);
}

Status Modelling::Record(const std::string& scope, Observation observation) {
  return publisher_.Record(scope, std::move(observation));
}

Status Modelling::RecordBatch(
    std::vector<SnapshotPublisher::ScopedObservation> batch,
    uint64_t* published_epoch) {
  return publisher_.RecordBatch(std::move(batch), published_epoch);
}

StatusOr<Vector> Modelling::Predict(const std::string& scope, const Vector& x,
                                    const EstimatorConfig& config) const {
  MIDAS_ASSIGN_OR_RETURN(const TrainingSet* set, history().Get(scope));
  if (x.size() != num_features()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  StatusOr<Vector> prediction =
      config.kind == EstimatorKind::kDream
          ? [&]() -> StatusOr<Vector> {
              Dream dream(config.dream);
              return dream.PredictCosts(*set, x);
            }()
          : PredictBml(*set, x, config.window);
  if (!prediction.ok()) return prediction;
  ClampCosts(&*prediction);
  return prediction;
}

StatusOr<Vector> Modelling::Predict(const EstimatorSnapshot& snapshot,
                                    const std::string& scope, const Vector& x,
                                    const EstimatorConfig& config) const {
  if (x.size() != snapshot.num_features()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  StatusOr<Vector> prediction = [&]() -> StatusOr<Vector> {
    if (config.kind == EstimatorKind::kDream) {
      MIDAS_ASSIGN_OR_RETURN(std::shared_ptr<const DreamEstimate> fit,
                             snapshot.DreamFit(scope, config.dream));
      return fit->Predict(x);
    }
    MIDAS_ASSIGN_OR_RETURN(
        std::shared_ptr<const BmlScopeFit> fit,
        snapshot.BmlFit(scope, WindowPolicyName(config.window),
                        [&](const TrainingSet& set) {
                          return FitBml(set, config.window);
                        }));
    Vector out(snapshot.num_metrics(), 0.0);
    for (size_t metric = 0; metric < fit->learners.size(); ++metric) {
      MIDAS_ASSIGN_OR_RETURN(out[metric], fit->learners[metric]->Predict(x));
    }
    return out;
  }();
  if (!prediction.ok()) return prediction;
  ClampCosts(&*prediction);
  return prediction;
}

StatusOr<Matrix> Modelling::PredictBatch(const std::string& scope,
                                         const Matrix& X,
                                         const EstimatorConfig& config) const {
  MIDAS_ASSIGN_OR_RETURN(const TrainingSet* set, history().Get(scope));
  if (X.cols() != num_features()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  StatusOr<Matrix> prediction =
      config.kind == EstimatorKind::kDream
          ? [&]() -> StatusOr<Matrix> {
              Dream dream(config.dream);
              return dream.PredictCostsBatch(*set, X);
            }()
          : PredictBmlBatch(*set, X, config.window);
  if (!prediction.ok()) return prediction;
  ClampCosts(&*prediction);
  return prediction;
}

StatusOr<Matrix> Modelling::PredictBatch(const EstimatorSnapshot& snapshot,
                                         const std::string& scope,
                                         const Matrix& X,
                                         const EstimatorConfig& config) const {
  if (X.cols() != snapshot.num_features()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  StatusOr<Matrix> prediction = [&]() -> StatusOr<Matrix> {
    if (config.kind == EstimatorKind::kDream) {
      MIDAS_ASSIGN_OR_RETURN(std::shared_ptr<const DreamEstimate> fit,
                             snapshot.DreamFit(scope, config.dream));
      // Serving path: the stacked-coefficient scratch is thread-local so
      // each concurrent shard pipeline reuses its own buffer across the
      // batches it costs.
      thread_local Matrix coeffs_scratch;
      Matrix out;
      MIDAS_RETURN_IF_ERROR(fit->PredictBatchInto(X, &coeffs_scratch, &out));
      return out;
    }
    MIDAS_ASSIGN_OR_RETURN(
        std::shared_ptr<const BmlScopeFit> fit,
        snapshot.BmlFit(scope, WindowPolicyName(config.window),
                        [&](const TrainingSet& set) {
                          return FitBml(set, config.window);
                        }));
    // Serving path: per-thread column and learner workspace, reused
    // across batches and metrics.
    thread_local Vector column;
    thread_local PredictWorkspace workspace;
    Matrix out(X.rows(), snapshot.num_metrics());
    for (size_t metric = 0; metric < fit->learners.size(); ++metric) {
      MIDAS_RETURN_IF_ERROR(
          fit->learners[metric]->PredictBatch(X, &column, &workspace));
      for (size_t r = 0; r < X.rows(); ++r) out(r, metric) = column[r];
    }
    return out;
  }();
  if (!prediction.ok()) return prediction;
  ClampCosts(&*prediction);
  return prediction;
}

StatusOr<Vector> Modelling::PredictBml(const TrainingSet& set, const Vector& x,
                                       WindowPolicy window) const {
  const size_t m =
      WindowSizeFor(window, BaseWindow(), set.size());
  if (m < BaseWindow()) {
    return Status::FailedPrecondition(
        "history smaller than the base window N");
  }
  MIDAS_ASSIGN_OR_RETURN(std::vector<Vector> xs, set.RecentFeatures(m));
  Vector prediction(num_metrics(), 0.0);
  // IReS trains one model per metric; the best learner may differ between
  // execution time and money.
  for (size_t metric = 0; metric < num_metrics(); ++metric) {
    MIDAS_ASSIGN_OR_RETURN(Vector ys, set.RecentCosts(m, metric));
    MIDAS_ASSIGN_OR_RETURN(SelectedModel model, selector_.SelectBest(xs, ys));
    MIDAS_ASSIGN_OR_RETURN(prediction[metric], model.learner->Predict(x));
  }
  return prediction;
}

StatusOr<Matrix> Modelling::PredictBmlBatch(const TrainingSet& set,
                                            const Matrix& X,
                                            WindowPolicy window) const {
  const size_t m = WindowSizeFor(window, BaseWindow(), set.size());
  if (m < BaseWindow()) {
    return Status::FailedPrecondition(
        "history smaller than the base window N");
  }
  MIDAS_ASSIGN_OR_RETURN(std::vector<Vector> xs, set.RecentFeatures(m));
  Matrix prediction(X.rows(), num_metrics());
  // One selection per metric for the whole batch; selection is
  // deterministic, so the winner matches the per-row path's. The column
  // and learner workspace are hoisted out of the metric loop.
  Vector column;
  PredictWorkspace workspace;
  for (size_t metric = 0; metric < num_metrics(); ++metric) {
    MIDAS_ASSIGN_OR_RETURN(Vector ys, set.RecentCosts(m, metric));
    MIDAS_ASSIGN_OR_RETURN(SelectedModel model, selector_.SelectBest(xs, ys));
    MIDAS_RETURN_IF_ERROR(model.learner->PredictBatch(X, &column, &workspace));
    for (size_t r = 0; r < X.rows(); ++r) prediction(r, metric) = column[r];
  }
  return prediction;
}

StatusOr<BmlScopeFit> Modelling::FitBml(const TrainingSet& set,
                                        WindowPolicy window) const {
  const size_t base = set.num_features() + 2;
  const size_t m = WindowSizeFor(window, base, set.size());
  if (m < base) {
    return Status::FailedPrecondition(
        "history smaller than the base window N");
  }
  MIDAS_ASSIGN_OR_RETURN(std::vector<Vector> xs, set.RecentFeatures(m));
  BmlScopeFit fit;
  fit.learners.reserve(set.num_metrics());
  fit.names.reserve(set.num_metrics());
  for (size_t metric = 0; metric < set.num_metrics(); ++metric) {
    MIDAS_ASSIGN_OR_RETURN(Vector ys, set.RecentCosts(m, metric));
    MIDAS_ASSIGN_OR_RETURN(SelectedModel model, selector_.SelectBest(xs, ys));
    fit.learners.emplace_back(std::move(model.learner));
    fit.names.push_back(std::move(model.name));
  }
  return fit;
}

StatusOr<DreamEstimate> Modelling::DreamDiagnostics(
    const std::string& scope, const DreamOptions& options) const {
  MIDAS_ASSIGN_OR_RETURN(const TrainingSet* set, history().Get(scope));
  Dream dream(options);
  return dream.EstimateCostValue(*set);
}

StatusOr<DreamEstimate> Modelling::DreamDiagnostics(
    const EstimatorSnapshot& snapshot, const std::string& scope,
    const DreamOptions& options) const {
  MIDAS_ASSIGN_OR_RETURN(std::shared_ptr<const DreamEstimate> fit,
                         snapshot.DreamFit(scope, options));
  return *fit;
}

}  // namespace midas
