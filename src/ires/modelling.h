#ifndef MIDAS_IRES_MODELLING_H_
#define MIDAS_IRES_MODELLING_H_

#include <string>
#include <vector>

#include "ires/history.h"
#include "ml/model_selection.h"
#include "regression/dream.h"

namespace midas {

/// Which estimator the Modelling module uses for a prediction.
enum class EstimatorKind {
  /// The paper's contribution: incremental MLR window sized by R².
  kDream,
  /// IReS baseline: Best-ML model over an observation window.
  kBml,
};

/// \brief Configuration of one prediction request.
struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kDream;
  /// DREAM parameters (kind == kDream).
  DreamOptions dream;
  /// BML observation window (kind == kBml); the base window N is L + 2.
  WindowPolicy window = WindowPolicy::kAll;

  static EstimatorConfig DreamDefault();
  static EstimatorConfig Bml(WindowPolicy window);
};

/// Human-readable estimator label ("DREAM", "BML_N", ...).
std::string EstimatorName(const EstimatorConfig& config);

/// \brief The IReS Modelling module with DREAM integrated (Figure 2):
/// stores execution feedback per scope and answers multi-metric cost
/// predictions with either DREAM or the BML baseline.
class Modelling {
 public:
  /// \param feature_names regression variables (see ires/features.h)
  /// \param metric_names cost metrics, e.g., {"seconds", "dollars"}
  Modelling(std::vector<std::string> feature_names,
            std::vector<std::string> metric_names, uint64_t seed = 31);

  History& history() { return history_; }
  const History& history() const { return history_; }

  size_t num_metrics() const { return history_.metric_names().size(); }
  size_t num_features() const { return history_.feature_names().size(); }

  /// The smallest statistically valid window N = L + 2.
  size_t BaseWindow() const { return num_features() + 2; }

  /// Records one execution observation for a scope.
  Status Record(const std::string& scope, Observation observation);

  /// Predicts the full cost vector of feature point `x` for `scope`.
  StatusOr<Vector> Predict(const std::string& scope, const Vector& x,
                           const EstimatorConfig& config) const;

  /// Batched Predict: one cost row per feature row of X (columns in metric
  /// order). Row r equals Predict(scope, X.Row(r), config) bit-for-bit,
  /// but the estimator is fitted *once* for the whole batch — DREAM runs
  /// Algorithm 1 once and scores the batch as a GEMM, BML selects each
  /// metric's best model once and calls its vectorised PredictBatch —
  /// instead of refitting per candidate as the per-row path does.
  StatusOr<Matrix> PredictBatch(const std::string& scope, const Matrix& X,
                                const EstimatorConfig& config) const;

  /// DREAM diagnostic: the estimate (window size, per-metric R²) that a
  /// kDream prediction for this scope would use right now.
  StatusOr<DreamEstimate> DreamDiagnostics(const std::string& scope,
                                           const DreamOptions& options) const;

 private:
  StatusOr<Vector> PredictBml(const TrainingSet& set, const Vector& x,
                              WindowPolicy window) const;
  StatusOr<Matrix> PredictBmlBatch(const TrainingSet& set, const Matrix& X,
                                   WindowPolicy window) const;

  History history_;
  ModelSelector selector_;
};

}  // namespace midas

#endif  // MIDAS_IRES_MODELLING_H_
