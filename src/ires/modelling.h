#ifndef MIDAS_IRES_MODELLING_H_
#define MIDAS_IRES_MODELLING_H_

#include <memory>
#include <string>
#include <vector>

#include "ires/history.h"
#include "ires/snapshot.h"
#include "ml/model_selection.h"
#include "regression/dream.h"

namespace midas {

/// Which estimator the Modelling module uses for a prediction.
enum class EstimatorKind {
  /// The paper's contribution: incremental MLR window sized by R².
  kDream,
  /// IReS baseline: Best-ML model over an observation window.
  kBml,
};

/// \brief Configuration of one prediction request.
struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kDream;
  /// DREAM parameters (kind == kDream).
  DreamOptions dream;
  /// BML observation window (kind == kBml); the base window N is L + 2.
  WindowPolicy window = WindowPolicy::kAll;

  static EstimatorConfig DreamDefault();
  static EstimatorConfig Bml(WindowPolicy window);
};

/// Human-readable estimator label ("DREAM", "BML_N", ...).
std::string EstimatorName(const EstimatorConfig& config);

/// \brief The IReS Modelling module with DREAM integrated (Figure 2):
/// stores execution feedback per scope and answers multi-metric cost
/// predictions with either DREAM or the BML baseline.
///
/// Storage is owned by a SnapshotPublisher, splitting the read path from
/// the write path: Record applies feedback through the publisher (one
/// published epoch per batch), while concurrent readers pin an immutable
/// EstimatorSnapshot via Snapshot() and predict against it with the
/// snapshot-taking Predict/PredictBatch overloads. The snapshot-less
/// overloads read the writer-side live history directly — the legacy
/// single-threaded path, bit-identical to predicting against a snapshot
/// pinned at the same point.
class Modelling {
 public:
  /// \param feature_names regression variables (see ires/features.h)
  /// \param metric_names cost metrics, e.g., {"seconds", "dollars"}
  Modelling(std::vector<std::string> feature_names,
            std::vector<std::string> metric_names, uint64_t seed = 31);

  /// Writer-side live history. The non-const accessor marks the published
  /// snapshot stale, so direct maintenance (pruning, manual inserts) is
  /// folded into a fresh epoch on the next Snapshot()/Acquire.
  History& history() { return publisher_.MutableHistory(); }
  const History& history() const { return publisher_.history(); }

  /// The estimator state's publication point (epoch inspection, batched
  /// Record, reader pinning).
  SnapshotPublisher& publisher() { return publisher_; }
  const SnapshotPublisher& publisher() const { return publisher_; }

  /// Pins the current estimator snapshot for one optimization pass.
  std::shared_ptr<const EstimatorSnapshot> Snapshot() const {
    return publisher_.Acquire();
  }

  size_t num_metrics() const { return history().metric_names().size(); }
  size_t num_features() const { return history().feature_names().size(); }

  /// The smallest statistically valid window N = L + 2.
  size_t BaseWindow() const { return num_features() + 2; }

  /// Records one execution observation for a scope and publishes the
  /// successor snapshot (epoch + 1).
  Status Record(const std::string& scope, Observation observation);

  /// Records a whole feedback batch under ONE published epoch; when
  /// `published_epoch` is non-null it receives the epoch the batch is
  /// visible under (see SnapshotPublisher::RecordBatch).
  Status RecordBatch(std::vector<SnapshotPublisher::ScopedObservation> batch,
                     uint64_t* published_epoch = nullptr);

  /// Predicts the full cost vector of feature point `x` for `scope`
  /// against the writer-side live history (single-threaded legacy path).
  StatusOr<Vector> Predict(const std::string& scope, const Vector& x,
                           const EstimatorConfig& config) const;

  /// Predicts against a pinned snapshot: safe under concurrent Record
  /// traffic and bit-identical to the live path at the same state. Fits
  /// are memoised inside the snapshot, so thousands of predictions per
  /// epoch fit DREAM/BML once.
  StatusOr<Vector> Predict(const EstimatorSnapshot& snapshot,
                           const std::string& scope, const Vector& x,
                           const EstimatorConfig& config) const;

  /// Batched Predict: one cost row per feature row of X (columns in metric
  /// order). Row r equals Predict(scope, X.Row(r), config) bit-for-bit,
  /// but the estimator is fitted *once* for the whole batch — DREAM runs
  /// Algorithm 1 once and scores the batch as a GEMM, BML selects each
  /// metric's best model once and calls its vectorised PredictBatch —
  /// instead of refitting per candidate as the per-row path does.
  StatusOr<Matrix> PredictBatch(const std::string& scope, const Matrix& X,
                                const EstimatorConfig& config) const;

  /// Snapshot-taking batched Predict (see the scalar overload above).
  StatusOr<Matrix> PredictBatch(const EstimatorSnapshot& snapshot,
                                const std::string& scope, const Matrix& X,
                                const EstimatorConfig& config) const;

  /// DREAM diagnostic: the estimate (window size, per-metric R²) that a
  /// kDream prediction for this scope would use right now.
  StatusOr<DreamEstimate> DreamDiagnostics(const std::string& scope,
                                           const DreamOptions& options) const;

  /// Snapshot-taking diagnostic variant (reads the frozen window).
  StatusOr<DreamEstimate> DreamDiagnostics(const EstimatorSnapshot& snapshot,
                                           const std::string& scope,
                                           const DreamOptions& options) const;

 private:
  StatusOr<Vector> PredictBml(const TrainingSet& set, const Vector& x,
                              WindowPolicy window) const;
  StatusOr<Matrix> PredictBmlBatch(const TrainingSet& set, const Matrix& X,
                                   WindowPolicy window) const;

  /// Deterministic BML fit over the set's window — the snapshot memo's
  /// fitter (selection matches PredictBml's winner exactly).
  StatusOr<BmlScopeFit> FitBml(const TrainingSet& set,
                               WindowPolicy window) const;

  SnapshotPublisher publisher_;
  ModelSelector selector_;
};

}  // namespace midas

#endif  // MIDAS_IRES_MODELLING_H_
