#include "ires/moo_optimizer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/statistics.h"
#include "common/thread_pool.h"
#include "ires/features.h"
#include "optimizer/configuration_problem.h"
#include "optimizer/pareto.h"
#include "optimizer/pareto_archive.h"
#include "optimizer/wsm.h"

namespace midas {

std::string MoqpAlgorithmName(MoqpAlgorithm algorithm) {
  switch (algorithm) {
    case MoqpAlgorithm::kExhaustivePareto:
      return "exhaustive-pareto";
    case MoqpAlgorithm::kNsga2:
      return "nsga2";
    case MoqpAlgorithm::kNsgaG:
      return "nsga-g";
    case MoqpAlgorithm::kWsm:
      return "wsm";
  }
  return "?";
}

MultiObjectiveOptimizer::MultiObjectiveOptimizer(const Federation* federation,
                                                 const Catalog* catalog,
                                                 MoqpOptions options)
    : federation_(federation),
      catalog_(catalog),
      options_(std::move(options)),
      cache_(std::make_shared<FeatureCostCache>(options_.cache_shards)) {}

StatusOr<MoqpResult> MultiObjectiveOptimizer::FromCandidates(
    std::vector<QueryPlan> plans, std::vector<Vector> costs,
    const QueryPolicy& policy) const {
  MoqpResult result;
  result.candidates_examined = plans.size();
  const std::vector<size_t> front =
      ParetoFrontIndices(costs, options_.threads);
  result.pareto_plans.reserve(front.size());
  result.pareto_costs.reserve(front.size());
  // Equivalent QEPs can share identical predicted costs (e.g., commuted
  // joins over the same features); keep one representative per cost point.
  std::unordered_set<Vector, VectorHash> seen_costs;
  seen_costs.reserve(front.size());
  for (size_t idx : front) {
    if (!seen_costs.insert(costs[idx]).second) continue;
    result.pareto_plans.push_back(std::move(plans[idx]));
    result.pareto_costs.push_back(std::move(costs[idx]));
  }
  MIDAS_ASSIGN_OR_RETURN(result.chosen,
                         BestInPareto(result.pareto_costs, policy));
  return result;
}

void MultiObjectiveOptimizer::OnSnapshotPublished(uint64_t epoch) const {
  PruneStaleEpochs(epoch);
}

void MultiObjectiveOptimizer::PruneStaleEpochs(uint64_t snapshot_epoch) const {
  // A concurrent optimize still pinned to an older epoch only loses warm
  // entries (it re-predicts); correctness comes from the epoch keying.
  if (options_.cache_predictions && snapshot_epoch != 0) {
    cache_->PruneOtherEpochs(snapshot_epoch);
  }
}

StatusOr<std::vector<Vector>> MultiObjectiveOptimizer::PredictCandidateCosts(
    const std::vector<QueryPlan>& plans, const CostPredictor& predictor,
    size_t arity, uint64_t epoch, uint64_t cache_namespace,
    PredictionStats* stats) const {
  ParallelForOptions parallel;
  parallel.threads = options_.threads;
  std::vector<Vector> costs(plans.size());

  if (!options_.cache_predictions) {
    MIDAS_RETURN_IF_ERROR(ParallelFor(
        plans.size(),
        [&](size_t i) -> Status {
          MIDAS_ASSIGN_OR_RETURN(Vector c, predictor(plans[i]));
          if (c.size() != arity) {
            return Status::InvalidArgument(
                "predictor/policy arity mismatch");
          }
          costs[i] = std::move(c);
          return Status::OK();
        },
        parallel));
    stats->predictor_calls = plans.size();
    return costs;
  }

  // Feature-keyed memoisation: commuted-join QEPs that map onto the same
  // feature vector are predicted once (Example 3.1's equivalent
  // configurations collapse to the distinct VM-count combinations), and
  // the persistent cache carries estimates across Optimize calls.
  std::vector<Vector> keys(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    MIDAS_ASSIGN_OR_RETURN(keys[i], ExtractFeatures(*federation_, plans[i]));
  }
  std::unordered_map<Vector, size_t, VectorHash> slot_by_feature;
  slot_by_feature.reserve(plans.size());
  std::vector<size_t> representative;  // first plan index per unique slot
  std::vector<size_t> slot_of_plan(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const auto [it, inserted] =
        slot_by_feature.emplace(keys[i], representative.size());
    if (inserted) representative.push_back(i);
    slot_of_plan[i] = it->second;
  }

  std::vector<Vector> unique_costs(representative.size());
  std::vector<size_t> to_predict;
  for (size_t s = 0; s < representative.size(); ++s) {
    if (auto cached =
            cache_->Lookup(keys[representative[s]], epoch, cache_namespace)) {
      unique_costs[s] = std::move(*cached);
      ++stats->cache_hits;
    } else {
      to_predict.push_back(s);
      ++stats->cache_misses;
    }
  }
  MIDAS_RETURN_IF_ERROR(ParallelFor(
      to_predict.size(),
      [&](size_t k) -> Status {
        const size_t s = to_predict[k];
        MIDAS_ASSIGN_OR_RETURN(Vector c, predictor(plans[representative[s]]));
        unique_costs[s] = std::move(c);
        return Status::OK();
      },
      parallel));
  stats->predictor_calls = to_predict.size();
  for (size_t s : to_predict) {
    cache_->Insert(keys[representative[s]], unique_costs[s], epoch,
                   cache_namespace);
  }

  for (size_t s = 0; s < unique_costs.size(); ++s) {
    // Checked after the fact so cached entries from an earlier predictor
    // arity are rejected too.
    if (unique_costs[s].size() != arity) {
      return Status::InvalidArgument("predictor/policy arity mismatch");
    }
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    costs[i] = unique_costs[slot_of_plan[i]];
  }
  return costs;
}

StatusOr<std::vector<Vector>>
MultiObjectiveOptimizer::PredictCandidateCostsBatched(
    const std::vector<QueryPlan>& plans, const BatchCostPredictor& predictor,
    size_t arity, uint64_t epoch, uint64_t cache_namespace, size_t threads,
    PredictionStats* stats) const {
  ParallelForOptions parallel;
  parallel.threads = threads;
  std::vector<Vector> costs(plans.size());
  if (plans.empty()) return costs;

  // One ExtractFeatures pass over every candidate, in stable candidate
  // order (each index writes its own slot, so the parallel pass is
  // bit-identical to a serial one).
  std::vector<Vector> features(plans.size());
  MIDAS_RETURN_IF_ERROR(ParallelFor(
      plans.size(),
      [&](size_t i) -> Status {
        MIDAS_ASSIGN_OR_RETURN(features[i],
                               ExtractFeatures(*federation_, plans[i]));
        return Status::OK();
      },
      parallel));
  const size_t n_features = features[0].size();

  // Output slots: without the cache every candidate owns one; with it,
  // candidates sharing a feature vector collapse onto one slot and only
  // the slots absent from the cache reach the predictor.
  std::vector<size_t> slot_of_plan(plans.size());
  std::vector<size_t> representative;  // first feature-row index per slot
  std::vector<size_t> to_predict;      // slots that need scoring
  std::vector<Vector> unique_costs;
  if (!options_.cache_predictions) {
    representative.resize(plans.size());
    to_predict.resize(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      slot_of_plan[i] = representative[i] = to_predict[i] = i;
    }
    unique_costs.resize(plans.size());
  } else {
    std::unordered_map<Vector, size_t, VectorHash> slot_by_feature;
    slot_by_feature.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      const auto [it, inserted] =
          slot_by_feature.emplace(features[i], representative.size());
      if (inserted) representative.push_back(i);
      slot_of_plan[i] = it->second;
    }
    unique_costs.resize(representative.size());
    for (size_t s = 0; s < representative.size(); ++s) {
      if (auto cached = cache_->Lookup(features[representative[s]], epoch,
                                       cache_namespace)) {
        unique_costs[s] = std::move(*cached);
        ++stats->cache_hits;
      } else {
        to_predict.push_back(s);
        ++stats->cache_misses;
      }
    }
  }

  // Score batch_size-row chunks concurrently. Each chunk gathers its
  // feature rows into one SoA matrix and receives one cost row per
  // feature row; chunk boundaries never affect the scored values, only
  // how often the predictor amortises its per-batch setup.
  const size_t rows = to_predict.size();
  size_t chunk_rows = options_.batch_size;
  if (chunk_rows == 0) {
    const size_t t = parallel.threads == 0 ? ThreadPool::DefaultThreadCount()
                                           : parallel.threads;
    chunk_rows = (rows + t - 1) / t;
  }
  chunk_rows = std::max<size_t>(1, chunk_rows);
  const size_t n_chunks = (rows + chunk_rows - 1) / chunk_rows;
  MIDAS_RETURN_IF_ERROR(ParallelFor(
      n_chunks,
      [&](size_t c) -> Status {
        const size_t begin = c * chunk_rows;
        const size_t end = std::min(begin + chunk_rows, rows);
        Matrix x(end - begin, n_features);
        for (size_t r = begin; r < end; ++r) {
          x.SetRow(r - begin, features[representative[to_predict[r]]]);
        }
        Matrix scored;
        MIDAS_RETURN_IF_ERROR(predictor(x, &scored));
        if (scored.rows() != x.rows()) {
          return Status::InvalidArgument(
              "batch predictor returned a wrong-sized batch");
        }
        if (scored.cols() != arity) {
          return Status::InvalidArgument("predictor/policy arity mismatch");
        }
        for (size_t r = begin; r < end; ++r) {
          unique_costs[to_predict[r]] = scored.Row(r - begin);
        }
        return Status::OK();
      },
      parallel));
  stats->predictor_calls = rows;

  if (options_.cache_predictions) {
    for (size_t s : to_predict) {
      cache_->Insert(features[representative[s]], unique_costs[s], epoch,
                     cache_namespace);
    }
    // Checked after the fact so cached entries from an earlier predictor
    // arity are rejected too.
    for (const Vector& cost : unique_costs) {
      if (cost.size() != arity) {
        return Status::InvalidArgument("predictor/policy arity mismatch");
      }
    }
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    costs[i] = unique_costs[slot_of_plan[i]];
  }
  return costs;
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::RunAlgorithm(
    std::vector<QueryPlan> plans, std::vector<Vector> costs,
    const QueryPolicy& policy) const {
  switch (options_.algorithm) {
    case MoqpAlgorithm::kExhaustivePareto:
      return FromCandidates(std::move(plans), std::move(costs), policy);

    case MoqpAlgorithm::kWsm: {
      // Figure 3, right branch: one scalar winner, no Pareto set.
      MIDAS_ASSIGN_OR_RETURN(size_t best, WsmSelect(costs, policy.weights));
      MoqpResult result;
      result.candidates_examined = plans.size();
      result.pareto_plans.push_back(std::move(plans[best]));
      result.pareto_costs.push_back(std::move(costs[best]));
      result.chosen = 0;
      return result;
    }

    case MoqpAlgorithm::kNsga2:
    case MoqpAlgorithm::kNsgaG: {
      // Evolve over the candidate index space; the evaluator reads the
      // predicted cost table.
      ConfigurationProblem problem(
          "qep-selection", {plans.size()}, costs.empty() ? 0 : costs[0].size(),
          [&costs](const std::vector<size_t>& cfg) { return costs[cfg[0]]; });
      MooResult moo;
      if (options_.algorithm == MoqpAlgorithm::kNsga2) {
        Nsga2 nsga2(options_.nsga2);
        MIDAS_ASSIGN_OR_RETURN(moo, nsga2.Optimize(problem));
      } else {
        NsgaG nsga_g(options_.nsga_g);
        MIDAS_ASSIGN_OR_RETURN(moo, nsga_g.Optimize(problem));
      }
      // Collect the distinct candidate plans on the evolved front.
      std::vector<uint8_t> seen(plans.size(), 0);
      std::vector<QueryPlan> front_plans;
      std::vector<Vector> front_costs;
      for (size_t i : moo.front) {
        const size_t plan_idx =
            problem.Decode(moo.population[i].variables)[0];
        if (seen[plan_idx] == 0) {
          seen[plan_idx] = 1;
          front_plans.push_back(plans[plan_idx]);
          front_costs.push_back(costs[plan_idx]);
        }
      }
      MoqpResult result;
      MIDAS_ASSIGN_OR_RETURN(
          result, FromCandidates(std::move(front_plans),
                                 std::move(front_costs), policy));
      result.candidates_examined = plans.size();
      return result;
    }
  }
  return Status::Internal("unhandled MOQP algorithm");
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::Optimize(
    const QueryPlan& logical, const CostPredictor& predictor,
    const QueryPolicy& policy, uint64_t snapshot_epoch,
    uint64_t cache_namespace) const {
  if (!predictor) return Status::InvalidArgument("null cost predictor");

  PlanEnumerator enumerator(federation_, catalog_, options_.enumerator);
  MIDAS_ASSIGN_OR_RETURN(std::vector<QueryPlan> plans,
                         enumerator.EnumeratePhysical(logical));
  const size_t candidates = plans.size();

  PredictionStats stats;
  MIDAS_ASSIGN_OR_RETURN(
      std::vector<Vector> costs,
      PredictCandidateCosts(plans, predictor, policy.weights.size(),
                            snapshot_epoch, cache_namespace, &stats));

  MIDAS_ASSIGN_OR_RETURN(
      MoqpResult result,
      RunAlgorithm(std::move(plans), std::move(costs), policy));
  stats.ApplyTo(&result, snapshot_epoch);
  result.peak_resident_candidates = candidates;
  return result;
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::Optimize(
    const QueryPlan& logical, const BatchCostPredictor& predictor,
    const QueryPolicy& policy, uint64_t snapshot_epoch,
    uint64_t cache_namespace) const {
  if (!predictor) return Status::InvalidArgument("null cost predictor");

  PlanEnumerator enumerator(federation_, catalog_, options_.enumerator);
  MIDAS_ASSIGN_OR_RETURN(std::vector<QueryPlan> plans,
                         enumerator.EnumeratePhysical(logical));
  const size_t candidates = plans.size();

  PredictionStats stats;
  MIDAS_ASSIGN_OR_RETURN(
      std::vector<Vector> costs,
      PredictCandidateCostsBatched(plans, predictor, policy.weights.size(),
                                   snapshot_epoch, cache_namespace,
                                   options_.threads, &stats));

  MIDAS_ASSIGN_OR_RETURN(
      MoqpResult result,
      RunAlgorithm(std::move(plans), std::move(costs), policy));
  stats.ApplyTo(&result, snapshot_epoch);
  result.peak_resident_candidates = candidates;
  return result;
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::OptimizeStreaming(
    const QueryPlan& logical, const BatchCostPredictor& predictor,
    const QueryPolicy& policy, uint64_t snapshot_epoch,
    uint64_t cache_namespace) const {
  if (!predictor) return Status::InvalidArgument("null cost predictor");
  if (options_.algorithm != MoqpAlgorithm::kExhaustivePareto) {
    // kWsm min-max-normalises every metric over the full candidate set
    // and the NSGA variants evolve over the full cost table, so neither
    // can be folded chunk by chunk without changing the answer.
    return Optimize(logical, predictor, policy, snapshot_epoch,
                    cache_namespace);
  }

  PlanEnumerator enumerator(federation_, catalog_, options_.enumerator);
  const size_t arity = policy.weights.size();
  const size_t chunk_size = options_.stream_chunk_size == 0
                                ? MoqpOptions().stream_chunk_size
                                : options_.stream_chunk_size;
  const size_t num_shards = options_.shards == 0
                                ? ThreadPool::DefaultThreadCount()
                                : options_.shards;
  if (num_shards > 1) {
    return OptimizeShardedStreaming(enumerator, logical, predictor, policy,
                                    chunk_size, num_shards, snapshot_epoch,
                                    cache_namespace);
  }

  PredictionStats stats;
  ParetoArchive<QueryPlan> archive;
  size_t examined = 0;
  size_t peak_resident = 0;
  MIDAS_RETURN_IF_ERROR(enumerator.EnumerateChunked(
      logical, chunk_size,
      [&](std::vector<QueryPlan>&& chunk) -> Status {
        examined += chunk.size();
        PredictionStats chunk_stats;
        MIDAS_ASSIGN_OR_RETURN(
            std::vector<Vector> costs,
            PredictCandidateCostsBatched(chunk, predictor, arity,
                                         snapshot_epoch, cache_namespace,
                                         options_.threads, &chunk_stats));
        stats.MergeFrom(chunk_stats);
        peak_resident = std::max(peak_resident, archive.size() + chunk.size());
        // Reduce the chunk to its own front first (cheap for the 2–3
        // metric policies), then fold the survivors in candidate order:
        // the archive keeps first representatives and evicts members a
        // later chunk dominates, reproducing FromCandidates exactly.
        const std::vector<size_t> front =
            ParetoFrontIndices(costs, options_.threads);
        for (size_t idx : front) {
          archive.Insert(std::move(costs[idx]), std::move(chunk[idx]));
        }
        return Status::OK();
      }));

  MoqpResult result;
  result.candidates_examined = examined;
  result.pareto_costs = archive.TakeCosts();
  result.pareto_plans = archive.TakePayloads();
  MIDAS_ASSIGN_OR_RETURN(result.chosen,
                         BestInPareto(result.pareto_costs, policy));
  stats.ApplyTo(&result, snapshot_epoch);
  result.peak_resident_candidates = peak_resident;
  return result;
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::OptimizeShardedStreaming(
    const PlanEnumerator& enumerator, const QueryPlan& logical,
    const BatchCostPredictor& predictor, const QueryPolicy& policy,
    size_t chunk_size, size_t num_shards, uint64_t snapshot_epoch,
    uint64_t cache_namespace) const {
  MIDAS_ASSIGN_OR_RETURN(std::vector<EnumerationShard> shards,
                         enumerator.PartitionShards(logical, num_shards));
  const size_t arity = policy.weights.size();

  // One independent pipeline per shard: enumerate its strata, score
  // whole chunks against the pinned snapshot epoch, fold each chunk's
  // survivors into a shard-local archive keyed by global sequence
  // numbers. Shards share only the (lock-striped, epoch-keyed) feature
  // cache; everything else is shard-private, so the only concurrency
  // effect is which shard publishes a shared feature vector first — the
  // cost values are a pure function of the features at this epoch.
  struct ShardRun {
    ParetoArchive<QueryPlan> archive;
    PredictionStats stats;
    uint64_t examined = 0;
    size_t peak_resident = 0;
    double seconds = 0.0;
  };
  std::vector<ShardRun> runs(shards.size());
  ParallelForOptions parallel;
  parallel.threads = num_shards;
  MIDAS_RETURN_IF_ERROR(ParallelFor(
      shards.size(),
      [&](size_t s) -> Status {
        ShardRun& run = runs[s];
        const double started = MonotonicSeconds();
        MIDAS_RETURN_IF_ERROR(enumerator.EnumerateShardChunked(
            logical, shards[s], chunk_size,
            [&](std::vector<QueryPlan>&& chunk,
                std::vector<uint64_t>&& seqs) -> Status {
              run.examined += chunk.size();
              PredictionStats chunk_stats;
              // Inner stages run serial (threads = 1): the shard fan-out
              // already occupies the pool's workers.
              MIDAS_ASSIGN_OR_RETURN(
                  std::vector<Vector> costs,
                  PredictCandidateCostsBatched(chunk, predictor, arity,
                                               snapshot_epoch, cache_namespace,
                                               /*threads=*/1, &chunk_stats));
              run.stats.MergeFrom(chunk_stats);
              run.peak_resident = std::max(run.peak_resident,
                                           run.archive.size() + chunk.size());
              const std::vector<size_t> front =
                  ParetoFrontIndices(costs, /*threads=*/1);
              for (size_t idx : front) {
                run.archive.InsertSequenced(std::move(costs[idx]), seqs[idx],
                                            std::move(chunk[idx]));
              }
              return Status::OK();
            }));
        run.seconds = MonotonicSeconds() - started;
        return Status::OK();
      },
      parallel));

  MoqpResult result;
  PredictionStats stats;
  std::vector<ParetoArchive<QueryPlan>> archives;
  archives.reserve(runs.size());
  result.shard_stats.reserve(runs.size());
  for (size_t s = 0; s < runs.size(); ++s) {
    ShardRun& run = runs[s];
    stats.MergeFrom(run.stats);
    result.candidates_examined += static_cast<size_t>(run.examined);
    result.peak_resident_candidates += run.peak_resident;
    MoqpShardStats shard_stats;
    shard_stats.shard = s;
    shard_stats.candidates_examined = run.examined;
    shard_stats.front_size = run.archive.size();
    shard_stats.peak_resident_candidates = run.peak_resident;
    shard_stats.seconds = run.seconds;
    shard_stats.plans_per_sec =
        run.seconds > 0.0 ? static_cast<double>(run.examined) / run.seconds
                          : 0.0;
    result.shard_stats.push_back(shard_stats);
    archives.push_back(std::move(run.archive));
  }

  // Tree-merge the shard archives (associative + dedup-stable, so the
  // member set is independent of the tree shape) and restore the serial
  // arrival order via the global sequence numbers: from here on the
  // result is byte-for-byte the single-stream one.
  ParetoArchive<QueryPlan> merged =
      ParetoArchive<QueryPlan>::MergeTree(std::move(archives));
  merged.SortBySequence();
  result.pareto_costs = merged.TakeCosts();
  result.pareto_plans = merged.TakePayloads();
  MIDAS_ASSIGN_OR_RETURN(result.chosen,
                         BestInPareto(result.pareto_costs, policy));
  stats.ApplyTo(&result, snapshot_epoch);
  return result;
}

}  // namespace midas
