#include "ires/moo_optimizer.h"

#include <set>

#include "optimizer/configuration_problem.h"
#include "optimizer/pareto.h"
#include "optimizer/wsm.h"

namespace midas {

std::string MoqpAlgorithmName(MoqpAlgorithm algorithm) {
  switch (algorithm) {
    case MoqpAlgorithm::kExhaustivePareto:
      return "exhaustive-pareto";
    case MoqpAlgorithm::kNsga2:
      return "nsga2";
    case MoqpAlgorithm::kNsgaG:
      return "nsga-g";
    case MoqpAlgorithm::kWsm:
      return "wsm";
  }
  return "?";
}

MultiObjectiveOptimizer::MultiObjectiveOptimizer(const Federation* federation,
                                                 const Catalog* catalog,
                                                 MoqpOptions options)
    : federation_(federation),
      catalog_(catalog),
      options_(std::move(options)) {}

StatusOr<MoqpResult> MultiObjectiveOptimizer::FromCandidates(
    std::vector<QueryPlan> plans, std::vector<Vector> costs,
    const QueryPolicy& policy) const {
  MoqpResult result;
  result.candidates_examined = plans.size();
  const std::vector<size_t> front = ParetoFrontIndices(costs);
  result.pareto_plans.reserve(front.size());
  result.pareto_costs.reserve(front.size());
  // Equivalent QEPs can share identical predicted costs (e.g., commuted
  // joins over the same features); keep one representative per cost point.
  std::set<Vector> seen_costs;
  for (size_t idx : front) {
    if (!seen_costs.insert(costs[idx]).second) continue;
    result.pareto_plans.push_back(std::move(plans[idx]));
    result.pareto_costs.push_back(std::move(costs[idx]));
  }
  MIDAS_ASSIGN_OR_RETURN(result.chosen,
                         BestInPareto(result.pareto_costs, policy));
  return result;
}

StatusOr<MoqpResult> MultiObjectiveOptimizer::Optimize(
    const QueryPlan& logical, const CostPredictor& predictor,
    const QueryPolicy& policy) const {
  if (!predictor) return Status::InvalidArgument("null cost predictor");

  PlanEnumerator enumerator(federation_, catalog_, options_.enumerator);
  MIDAS_ASSIGN_OR_RETURN(std::vector<QueryPlan> plans,
                         enumerator.EnumeratePhysical(logical));

  std::vector<Vector> costs;
  costs.reserve(plans.size());
  for (const QueryPlan& plan : plans) {
    MIDAS_ASSIGN_OR_RETURN(Vector c, predictor(plan));
    if (c.size() != policy.weights.size()) {
      return Status::InvalidArgument("predictor/policy arity mismatch");
    }
    costs.push_back(std::move(c));
  }

  switch (options_.algorithm) {
    case MoqpAlgorithm::kExhaustivePareto:
      return FromCandidates(std::move(plans), std::move(costs), policy);

    case MoqpAlgorithm::kWsm: {
      // Figure 3, right branch: one scalar winner, no Pareto set.
      MIDAS_ASSIGN_OR_RETURN(size_t best, WsmSelect(costs, policy.weights));
      MoqpResult result;
      result.candidates_examined = plans.size();
      result.pareto_plans.push_back(std::move(plans[best]));
      result.pareto_costs.push_back(std::move(costs[best]));
      result.chosen = 0;
      return result;
    }

    case MoqpAlgorithm::kNsga2:
    case MoqpAlgorithm::kNsgaG: {
      // Evolve over the candidate index space; the evaluator reads the
      // predicted cost table.
      ConfigurationProblem problem(
          "qep-selection", {plans.size()}, costs.empty() ? 0 : costs[0].size(),
          [&costs](const std::vector<size_t>& cfg) { return costs[cfg[0]]; });
      MooResult moo;
      if (options_.algorithm == MoqpAlgorithm::kNsga2) {
        Nsga2 nsga2(options_.nsga2);
        MIDAS_ASSIGN_OR_RETURN(moo, nsga2.Optimize(problem));
      } else {
        NsgaG nsga_g(options_.nsga_g);
        MIDAS_ASSIGN_OR_RETURN(moo, nsga_g.Optimize(problem));
      }
      // Collect the distinct candidate plans on the evolved front.
      std::set<size_t> seen;
      std::vector<QueryPlan> front_plans;
      std::vector<Vector> front_costs;
      for (size_t i : moo.front) {
        const size_t plan_idx =
            problem.Decode(moo.population[i].variables)[0];
        if (seen.insert(plan_idx).second) {
          front_plans.push_back(plans[plan_idx]);
          front_costs.push_back(costs[plan_idx]);
        }
      }
      MoqpResult result;
      MIDAS_ASSIGN_OR_RETURN(
          result, FromCandidates(std::move(front_plans),
                                 std::move(front_costs), policy));
      result.candidates_examined = plans.size();
      return result;
    }
  }
  return Status::Internal("unhandled MOQP algorithm");
}

}  // namespace midas
