#ifndef MIDAS_IRES_MOO_OPTIMIZER_H_
#define MIDAS_IRES_MOO_OPTIMIZER_H_

#include <functional>
#include <memory>
#include <vector>

#include "federation/federation.h"
#include "ires/cost_cache.h"
#include "optimizer/best_in_pareto.h"
#include "optimizer/nsga2.h"
#include "optimizer/nsga_g.h"
#include "query/enumerator.h"

namespace midas {

/// Search strategy of the Multi-Objective Optimizer module.
enum class MoqpAlgorithm {
  /// Enumerate every physical plan, extract the exact Pareto front,
  /// choose with Algorithm 2. Tractable for the paper's 2-table queries.
  kExhaustivePareto,
  /// NSGA-II over the candidate set (for large plan spaces), then
  /// Algorithm 2 on the evolved front.
  kNsga2,
  /// NSGA-G variant of the above.
  kNsgaG,
  /// Figure 3's baseline: scalarise with the Weighted Sum Model up front
  /// and return only the argmin plan (no Pareto set).
  kWsm,
};

std::string MoqpAlgorithmName(MoqpAlgorithm algorithm);

struct MoqpOptions {
  MoqpAlgorithm algorithm = MoqpAlgorithm::kExhaustivePareto;
  EnumeratorOptions enumerator;
  Nsga2Options nsga2;
  NsgaGOptions nsga_g;
  /// Concurrent chunks for the candidate cost-prediction loop and the
  /// exhaustive Pareto front extraction: 1 = serial (default), 0 = the
  /// process-wide default parallelism. Candidate order, results and
  /// first-error semantics are preserved at any value; the cost predictor
  /// must be thread-safe when != 1.
  size_t threads = 1;
  /// Memoise predictor calls in a FeatureCostCache keyed by the plan's
  /// extracted feature vector, shared across Optimize calls on this
  /// optimizer. Only sound when the predictor is a pure function of the
  /// features (true for the Modelling/DREAM estimators; NOT true for the
  /// raw execution simulator, whose costs also depend on join shape).
  bool cache_predictions = false;
  /// Rows per chunk of the *batched* costing stage (the Optimize overload
  /// taking a BatchCostPredictor): candidates are scored `batch_size`
  /// feature rows at a time, chunks running concurrently on the thread
  /// pool. Bigger chunks amortise per-batch estimator setup (DREAM refits
  /// Algorithm 1 once per chunk) but leave fewer chunks to parallelise;
  /// 0 splits the batch evenly across the resolved thread count. Results
  /// are independent of the chunking.
  size_t batch_size = 1024;
  /// Lock stripes of the shared FeatureCostCache (rounded up to a power of
  /// two). More shards cut contention on warm parallel lookups; counters
  /// and contents behave identically at any value.
  size_t cache_shards = FeatureCostCache::kDefaultShards;
  /// Candidate plans materialised per enumeration chunk of
  /// OptimizeStreaming: the streaming pipeline holds at most the online
  /// Pareto archive plus one chunk of this many plans, so smaller values
  /// tighten the O(front + chunk) peak working set while larger values
  /// amortise the batched scoring setup over more rows. 0 falls back to
  /// the default. The produced result is independent of the value.
  size_t stream_chunk_size = 4096;
  /// Disjoint enumeration pipelines of OptimizeStreaming: the plan space
  /// is partitioned into this many shards (PlanEnumerator::PartitionShards)
  /// that each run the whole enumerate → batched-cost → Pareto-fold
  /// pipeline concurrently on the thread pool against the pinned snapshot
  /// epoch, after which the shard archives are tree-merged and re-ordered
  /// into the serial arrival sequence. 1 = the single serial stream
  /// (default); 0 = the process-wide default parallelism. The produced
  /// result is bit-identical at any value; per-shard pipeline metrics
  /// land in MoqpResult::shard_stats. Only kExhaustivePareto streams —
  /// the other algorithms delegate to the materialized path, which
  /// ignores this knob. The batch predictor must be thread-safe
  /// when != 1.
  size_t shards = 1;
};

/// \brief Pipeline metrics of one enumeration shard of the sharded
/// OptimizeStreaming path (MoqpOptions::shards): timings are per shard,
/// so plans/sec here exposes stragglers the aggregate result hides.
struct MoqpShardStats {
  /// Shard id, 0-based (matches the PartitionShards output order).
  size_t shard = 0;
  /// Candidate plans this shard enumerated and costed.
  uint64_t candidates_examined = 0;
  /// Members of the shard-local archive when the shard finished
  /// (pre-merge front size).
  size_t front_size = 0;
  /// High-water mark of this shard's resident candidates (its archive
  /// front plus one in-flight chunk).
  size_t peak_resident_candidates = 0;
  /// Wall-clock seconds of the shard's enumerate→cost→fold pipeline.
  double seconds = 0.0;
  /// candidates_examined / seconds (0 when the duration underflows the
  /// clock).
  double plans_per_sec = 0.0;
};

/// \brief Outcome of one MOQP optimisation.
struct MoqpResult {
  /// Pareto plan set (for kWsm this holds just the selected plan).
  std::vector<QueryPlan> pareto_plans;
  /// Predicted cost vectors aligned with pareto_plans.
  std::vector<Vector> pareto_costs;
  /// Index of the plan Algorithm 2 picked for the user policy.
  size_t chosen = 0;
  /// Number of physical plans considered. Aggregation: SUM across
  /// concurrent pipelines — every candidate is examined by exactly one
  /// shard, so the sum equals the serial count.
  size_t candidates_examined = 0;
  /// Predictor invocations this call actually performed (equals
  /// candidates_examined without the feature cache; with it, only the
  /// distinct feature vectors absent from the cache are predicted).
  /// Aggregation: SUM of rows scored across concurrent pipelines.
  size_t predictor_calls = 0;
  /// Feature-cache hits/misses of this call (0/0 when caching is off).
  /// Aggregated identically on every pipeline — scalar, batched,
  /// streaming and sharded — always as a SUM over the pipeline's stages.
  /// Per pipeline, cache_hits + cache_misses == distinct feature vectors
  /// it examined, and predictor_calls == cache_misses whenever caching is
  /// on. Under concurrent shards those invariants hold per shard and
  /// therefore for the sums, but the hit/miss *split* is not
  /// deterministic: two shards can each miss the same vector before
  /// either publishes it, turning a would-be hit into a second miss (the
  /// cost *values* are unaffected — the predictor is a pure function of
  /// the features at a fixed epoch).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Estimator snapshot epoch the costs were predicted against, as passed
  /// to Optimize (0 = unversioned legacy caller).
  uint64_t snapshot_epoch = 0;
  /// High-water mark of simultaneously materialised candidate plans: the
  /// whole candidate set for the materialize-everything paths, the
  /// archive front plus one in-flight chunk for single-stream
  /// OptimizeStreaming. Aggregation under sharding: SUM of the per-shard
  /// peaks (shard_stats breaks it down) — the worst case when every
  /// shard hits its high-water mark simultaneously, still
  /// O(front + shards × chunk); the merge stage holds at most the shard
  /// fronts, which the same bound covers.
  size_t peak_resident_candidates = 0;
  /// Per-shard pipeline metrics of the sharded OptimizeStreaming path;
  /// empty for the materialized paths and the single-stream
  /// (shards == 1) streaming path.
  std::vector<MoqpShardStats> shard_stats;

  const QueryPlan& chosen_plan() const { return pareto_plans[chosen]; }
  const Vector& chosen_costs() const { return pareto_costs[chosen]; }
};

/// \brief IReS' Multi-Objective Optimizer with the paper's pipeline:
/// enumerate equivalent QEPs, predict each plan's multi-metric cost with
/// the Modelling estimator, find the Pareto plan set, and select the final
/// plan with BestInPareto (Algorithm 2) under the user policy.
class MultiObjectiveOptimizer {
 public:
  /// Predicts the cost vector of one annotated physical plan.
  using CostPredictor = std::function<StatusOr<Vector>(const QueryPlan&)>;

  /// Scores a batch of candidates at once: `features` holds one extracted
  /// feature row per candidate (ires/features.h layout) and the predictor
  /// fills *costs with one row per feature row, one column per metric.
  /// Must be a pure function of the features — the batched pipeline reads
  /// plans only through ExtractFeatures, which is also what makes the
  /// prediction cache sound for it.
  using BatchCostPredictor =
      std::function<Status(const Matrix& features, Matrix* costs)>;

  MultiObjectiveOptimizer(const Federation* federation,
                          const Catalog* catalog,
                          MoqpOptions options = MoqpOptions());

  /// \param snapshot_epoch epoch of the EstimatorSnapshot the predictor is
  /// pinned to. Cached costs are keyed by it, so an optimization running
  /// against epoch N never reuses costs predicted at any other epoch —
  /// required for a shared cache under concurrent Record traffic. Callers
  /// with an unversioned predictor keep the default 0.
  /// \param cache_namespace extra prediction-cache key component for
  /// predictors that are feature-pure only within a context (e.g. a
  /// tenant's history scope — two tenants pinned to the SAME epoch map
  /// one feature vector to different costs, so a multi-tenant service
  /// must pass a per-scope namespace or tenants poison each other's
  /// cached estimates). Callers with one global predictor keep 0.
  StatusOr<MoqpResult> Optimize(const QueryPlan& logical,
                                const CostPredictor& predictor,
                                const QueryPolicy& policy,
                                uint64_t snapshot_epoch = 0,
                                uint64_t cache_namespace = 0) const;

  /// Batched pipeline: enumerate, extract every candidate's features once
  /// into a single SoA matrix (stable candidate order), score
  /// options.batch_size-row chunks concurrently through `predictor`, then
  /// run Pareto extraction and Algorithm 2 exactly as the per-plan path.
  /// MoqpResult::predictor_calls counts scored *rows*, so the two paths
  /// report comparable work.
  StatusOr<MoqpResult> Optimize(const QueryPlan& logical,
                                const BatchCostPredictor& predictor,
                                const QueryPolicy& policy,
                                uint64_t snapshot_epoch = 0,
                                uint64_t cache_namespace = 0) const;

  /// Streaming pipeline: enumerates candidates in
  /// options.stream_chunk_size batches, scores each chunk through the
  /// batched costing stage, and folds the chunk's Pareto survivors into
  /// an online archive — peak memory O(front + chunk) instead of
  /// O(all candidates), with a result identical to the materialized
  /// batched Optimize. With options.shards != 1 the plan space is
  /// partitioned and the whole pipeline runs once per shard concurrently,
  /// the shard archives tree-merged and re-sequenced afterwards — still
  /// bit-identical to the serial stream at any shard count. Only
  /// kExhaustivePareto can be stream-folded; kWsm (whose scalarisation
  /// min-max-normalises over the full candidate set) and the NSGA
  /// variants (which evolve over the full cost table) transparently fall
  /// back to the materialized path.
  StatusOr<MoqpResult> OptimizeStreaming(const QueryPlan& logical,
                                         const BatchCostPredictor& predictor,
                                         const QueryPolicy& policy,
                                         uint64_t snapshot_epoch = 0,
                                         uint64_t cache_namespace = 0) const;

  /// The feature-keyed prediction memo (populated only when
  /// options.cache_predictions is set). Shared by copies of this optimizer
  /// and persistent across Optimize calls, so repeated queries and policy
  /// re-targeting reuse earlier estimates.
  const FeatureCostCache& prediction_cache() const { return *cache_; }
  void ClearPredictionCache() { cache_->Clear(); }

  /// Publication hook for long-lived services: evicts prediction-cache
  /// entries from every epoch other than the newly published one, so a
  /// server's cache stays bounded by one epoch's working set instead of
  /// accreting an entry set per feedback batch (cumulative evictions in
  /// prediction_cache().pruned()). Register via
  /// SnapshotPublisher::AddPublishListener; safe concurrently with running
  /// optimizations — one still pinned to an older epoch only loses warm
  /// entries and re-predicts. No-op when caching is off or epoch is 0.
  void OnSnapshotPublished(uint64_t epoch) const;

 private:
  struct PredictionStats {
    size_t predictor_calls = 0;
    size_t cache_hits = 0;
    size_t cache_misses = 0;

    /// Accumulates another stage's counters (streaming folds one per
    /// chunk; the materialized paths fold exactly one).
    void MergeFrom(const PredictionStats& other) {
      predictor_calls += other.predictor_calls;
      cache_hits += other.cache_hits;
      cache_misses += other.cache_misses;
    }

    /// Copies the aggregated counters into a result — the single point
    /// every pipeline reports through, so the scalar, batched and
    /// streaming paths can never drift apart in how they account.
    void ApplyTo(MoqpResult* result, uint64_t snapshot_epoch) const {
      result->predictor_calls = predictor_calls;
      result->cache_hits = cache_hits;
      result->cache_misses = cache_misses;
      result->snapshot_epoch = snapshot_epoch;
    }
  };

  /// Predicts every candidate's cost vector, in candidate order, using
  /// options.threads concurrent chunks and (optionally) the feature cache
  /// at `epoch`.
  StatusOr<std::vector<Vector>> PredictCandidateCosts(
      const std::vector<QueryPlan>& plans, const CostPredictor& predictor,
      size_t arity, uint64_t epoch, uint64_t cache_namespace,
      PredictionStats* stats) const;

  /// Batched variant: one ExtractFeatures pass over all candidates, then
  /// chunked matrix scoring (feature-deduplicated and cache-filtered when
  /// options.cache_predictions is set). `threads` is the inner
  /// parallelism of the extraction and scoring stages — the materialized
  /// paths pass options.threads, while shard pipelines pass 1 because the
  /// shard fan-out already owns the pool's workers.
  StatusOr<std::vector<Vector>> PredictCandidateCostsBatched(
      const std::vector<QueryPlan>& plans,
      const BatchCostPredictor& predictor, size_t arity, uint64_t epoch,
      uint64_t cache_namespace, size_t threads,
      PredictionStats* stats) const;

  /// The shards != 1 arm of OptimizeStreaming: partitions the plan space,
  /// runs one enumerate→cost→fold pipeline per shard on the thread pool,
  /// tree-merges the shard archives and restores serial arrival order via
  /// the plans' global sequence numbers.
  StatusOr<MoqpResult> OptimizeShardedStreaming(
      const PlanEnumerator& enumerator, const QueryPlan& logical,
      const BatchCostPredictor& predictor, const QueryPolicy& policy,
      size_t chunk_size, size_t num_shards, uint64_t snapshot_epoch,
      uint64_t cache_namespace) const;

  /// Drops cache entries from epochs other than `snapshot_epoch`. Driven
  /// by snapshot publication (OnSnapshotPublished) rather than at
  /// optimization start: concurrent optimizations pinned to different
  /// epochs would otherwise take turns evicting each other's warm
  /// entries. No-op for epoch 0 and when caching is off.
  void PruneStaleEpochs(uint64_t snapshot_epoch) const;

  /// Dispatches to the configured MOQP algorithm over the predicted table.
  StatusOr<MoqpResult> RunAlgorithm(std::vector<QueryPlan> plans,
                                    std::vector<Vector> costs,
                                    const QueryPolicy& policy) const;

  StatusOr<MoqpResult> FromCandidates(std::vector<QueryPlan> plans,
                                      std::vector<Vector> costs,
                                      const QueryPolicy& policy) const;

  const Federation* federation_;
  const Catalog* catalog_;
  MoqpOptions options_;
  std::shared_ptr<FeatureCostCache> cache_;
};

}  // namespace midas

#endif  // MIDAS_IRES_MOO_OPTIMIZER_H_
