#ifndef MIDAS_IRES_MOO_OPTIMIZER_H_
#define MIDAS_IRES_MOO_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "federation/federation.h"
#include "optimizer/best_in_pareto.h"
#include "optimizer/nsga2.h"
#include "optimizer/nsga_g.h"
#include "query/enumerator.h"

namespace midas {

/// Search strategy of the Multi-Objective Optimizer module.
enum class MoqpAlgorithm {
  /// Enumerate every physical plan, extract the exact Pareto front,
  /// choose with Algorithm 2. Tractable for the paper's 2-table queries.
  kExhaustivePareto,
  /// NSGA-II over the candidate set (for large plan spaces), then
  /// Algorithm 2 on the evolved front.
  kNsga2,
  /// NSGA-G variant of the above.
  kNsgaG,
  /// Figure 3's baseline: scalarise with the Weighted Sum Model up front
  /// and return only the argmin plan (no Pareto set).
  kWsm,
};

std::string MoqpAlgorithmName(MoqpAlgorithm algorithm);

struct MoqpOptions {
  MoqpAlgorithm algorithm = MoqpAlgorithm::kExhaustivePareto;
  EnumeratorOptions enumerator;
  Nsga2Options nsga2;
  NsgaGOptions nsga_g;
};

/// \brief Outcome of one MOQP optimisation.
struct MoqpResult {
  /// Pareto plan set (for kWsm this holds just the selected plan).
  std::vector<QueryPlan> pareto_plans;
  /// Predicted cost vectors aligned with pareto_plans.
  std::vector<Vector> pareto_costs;
  /// Index of the plan Algorithm 2 picked for the user policy.
  size_t chosen = 0;
  /// Number of physical plans considered.
  size_t candidates_examined = 0;

  const QueryPlan& chosen_plan() const { return pareto_plans[chosen]; }
  const Vector& chosen_costs() const { return pareto_costs[chosen]; }
};

/// \brief IReS' Multi-Objective Optimizer with the paper's pipeline:
/// enumerate equivalent QEPs, predict each plan's multi-metric cost with
/// the Modelling estimator, find the Pareto plan set, and select the final
/// plan with BestInPareto (Algorithm 2) under the user policy.
class MultiObjectiveOptimizer {
 public:
  /// Predicts the cost vector of one annotated physical plan.
  using CostPredictor = std::function<StatusOr<Vector>(const QueryPlan&)>;

  MultiObjectiveOptimizer(const Federation* federation,
                          const Catalog* catalog,
                          MoqpOptions options = MoqpOptions());

  StatusOr<MoqpResult> Optimize(const QueryPlan& logical,
                                const CostPredictor& predictor,
                                const QueryPolicy& policy) const;

 private:
  StatusOr<MoqpResult> FromCandidates(std::vector<QueryPlan> plans,
                                      std::vector<Vector> costs,
                                      const QueryPolicy& policy) const;

  const Federation* federation_;
  const Catalog* catalog_;
  MoqpOptions options_;
};

}  // namespace midas

#endif  // MIDAS_IRES_MOO_OPTIMIZER_H_
