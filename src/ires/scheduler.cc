#include "ires/scheduler.h"

#include "common/statistics.h"
#include "ires/features.h"

namespace midas {

Vector MeasurementToCosts(const Measurement& measurement) {
  return {measurement.seconds, measurement.dollars};
}

std::vector<std::string> StandardMetricNames() {
  return {"seconds", "dollars"};
}

Scheduler::Scheduler(const Federation* federation,
                     ExecutionSimulator* simulator, Modelling* modelling)
    : federation_(federation), simulator_(simulator), modelling_(modelling) {}

StatusOr<Measurement> Scheduler::ExecuteOnly(const QueryPlan& plan) {
  if (simulator_ == nullptr) {
    return Status::FailedPrecondition("scheduler has no simulator");
  }
  return simulator_->Execute(plan);
}

StatusOr<Measurement> Scheduler::ExecuteAndRecord(const std::string& scope,
                                                  const QueryPlan& plan) {
  if (federation_ == nullptr || simulator_ == nullptr ||
      modelling_ == nullptr) {
    return Status::FailedPrecondition("scheduler not fully wired");
  }
  MIDAS_ASSIGN_OR_RETURN(Vector features, ExtractFeatures(*federation_, plan));
  MIDAS_ASSIGN_OR_RETURN(Measurement m, simulator_->Execute(plan));
  Observation obs;
  obs.timestamp = m.timestamp;
  obs.features = std::move(features);
  obs.costs = MeasurementToCosts(m);
  MIDAS_RETURN_IF_ERROR(modelling_->Record(scope, std::move(obs)));
  return m;
}

StatusOr<Scheduler::BatchWriteResult> Scheduler::ExecuteAndRecordBatch(
    const std::string& scope, const std::vector<QueryPlan>& plans) {
  if (federation_ == nullptr || simulator_ == nullptr ||
      modelling_ == nullptr) {
    return Status::FailedPrecondition("scheduler not fully wired");
  }
  BatchWriteResult result;
  result.measurements.reserve(plans.size());
  std::vector<SnapshotPublisher::ScopedObservation> batch;
  batch.reserve(plans.size());
  Status first_error = Status::OK();
  for (const QueryPlan& plan : plans) {
    StatusOr<Vector> features = ExtractFeatures(*federation_, plan);
    if (!features.ok()) {
      first_error = features.status();
      break;
    }
    StatusOr<Measurement> m = simulator_->Execute(plan);
    if (!m.ok()) {
      first_error = m.status();
      break;
    }
    Observation obs;
    obs.timestamp = m->timestamp;
    obs.features = std::move(*features);
    obs.costs = MeasurementToCosts(*m);
    batch.push_back({scope, std::move(obs)});
    result.measurements.push_back(*m);
  }
  // Record whatever executed even when a later plan failed: the feedback
  // is real and readers see it atomically under one epoch either way.
  if (!batch.empty()) {
    const double start = MonotonicSeconds();
    MIDAS_RETURN_IF_ERROR(
        modelling_->RecordBatch(std::move(batch), &result.published_epoch));
    result.publish_seconds = MonotonicSeconds() - start;
    result.published = true;
  } else {
    result.published_epoch = modelling_->publisher().epoch();
  }
  MIDAS_RETURN_IF_ERROR(first_error);
  return result;
}

}  // namespace midas
