#ifndef MIDAS_IRES_SCHEDULER_H_
#define MIDAS_IRES_SCHEDULER_H_

#include <string>

#include "engine/simulator.h"
#include "federation/federation.h"
#include "ires/modelling.h"

namespace midas {

/// \brief IReS execution layer: runs the chosen QEP on the (simulated)
/// engines and feeds the measured costs back into the Modelling history —
/// closing the monitor → model → optimize loop of the platform.
class Scheduler {
 public:
  Scheduler(const Federation* federation, ExecutionSimulator* simulator,
            Modelling* modelling);

  /// Executes `plan`, records the (features, measured costs) observation
  /// under `scope`, and returns the measurement.
  StatusOr<Measurement> ExecuteAndRecord(const std::string& scope,
                                         const QueryPlan& plan);

  /// Executes without recording (e.g., validation runs whose cost must not
  /// leak into the training history).
  StatusOr<Measurement> ExecuteOnly(const QueryPlan& plan);

 private:
  const Federation* federation_;
  ExecutionSimulator* simulator_;
  Modelling* modelling_;
};

/// Packs a simulator measurement into the metric layout used across the
/// library: {seconds, dollars}.
Vector MeasurementToCosts(const Measurement& measurement);

/// The standard metric names matching MeasurementToCosts.
std::vector<std::string> StandardMetricNames();

}  // namespace midas

#endif  // MIDAS_IRES_SCHEDULER_H_
