#ifndef MIDAS_IRES_SCHEDULER_H_
#define MIDAS_IRES_SCHEDULER_H_

#include <string>
#include <vector>

#include "engine/simulator.h"
#include "federation/federation.h"
#include "ires/modelling.h"

namespace midas {

/// \brief IReS execution layer: runs the chosen QEP on the (simulated)
/// engines and feeds the measured costs back into the Modelling history —
/// closing the monitor → model → optimize loop of the platform.
///
/// The scheduler is a *writer client* of the estimator's SnapshotPublisher:
/// every recorded measurement flows through Modelling::Record/RecordBatch,
/// which publishes a new immutable snapshot epoch, so concurrent
/// optimizations (readers pinned to an earlier epoch) never observe a
/// half-applied feedback batch.
class Scheduler {
 public:
  Scheduler(const Federation* federation, ExecutionSimulator* simulator,
            Modelling* modelling);

  /// Executes `plan`, records the (features, measured costs) observation
  /// under `scope` (publishing one snapshot epoch), and returns the
  /// measurement.
  StatusOr<Measurement> ExecuteAndRecord(const std::string& scope,
                                         const QueryPlan& plan);

  /// Executes every plan and records all measurements under ONE published
  /// snapshot epoch — readers either see the whole batch or none of it.
  /// Returns the measurements in plan order; stops at the first failing
  /// execution (already-executed plans are still recorded and published).
  StatusOr<std::vector<Measurement>> ExecuteAndRecordBatch(
      const std::string& scope, const std::vector<QueryPlan>& plans);

  /// Executes without recording (e.g., validation runs whose cost must not
  /// leak into the training history).
  StatusOr<Measurement> ExecuteOnly(const QueryPlan& plan);

 private:
  const Federation* federation_;
  ExecutionSimulator* simulator_;
  Modelling* modelling_;
};

/// Packs a simulator measurement into the metric layout used across the
/// library: {seconds, dollars}.
Vector MeasurementToCosts(const Measurement& measurement);

/// The standard metric names matching MeasurementToCosts.
std::vector<std::string> StandardMetricNames();

}  // namespace midas

#endif  // MIDAS_IRES_SCHEDULER_H_
