#ifndef MIDAS_IRES_SCHEDULER_H_
#define MIDAS_IRES_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/simulator.h"
#include "federation/federation.h"
#include "ires/modelling.h"

namespace midas {

/// \brief IReS execution layer: runs the chosen QEP on the (simulated)
/// engines and feeds the measured costs back into the Modelling history —
/// closing the monitor → model → optimize loop of the platform.
///
/// The scheduler is a *writer client* of the estimator's SnapshotPublisher:
/// every recorded measurement flows through Modelling::Record/RecordBatch,
/// which publishes a new immutable snapshot epoch, so concurrent
/// optimizations (readers pinned to an earlier epoch) never observe a
/// half-applied feedback batch.
class Scheduler {
 public:
  Scheduler(const Federation* federation, ExecutionSimulator* simulator,
            Modelling* modelling);

  /// Executes `plan`, records the (features, measured costs) observation
  /// under `scope` (publishing one snapshot epoch), and returns the
  /// measurement.
  StatusOr<Measurement> ExecuteAndRecord(const std::string& scope,
                                         const QueryPlan& plan);

  /// \brief What one atomic feedback batch produced: the measurements plus
  /// the publication the batch landed in, so writer clients (the serving
  /// layer's feedback path, drift loops) can observe how much latency the
  /// snapshot publication itself adds and which epoch their observations
  /// became visible under.
  struct BatchWriteResult {
    /// Per-plan measurements, in plan order.
    std::vector<Measurement> measurements;
    /// Epoch the batch was published under (the standing epoch when the
    /// batch was empty and nothing was published).
    uint64_t published_epoch = 0;
    /// Wall-clock seconds spent inside the publisher's RecordBatch —
    /// the delta-replay + publication cost feedback writers pay, which
    /// concurrent snapshot-pinned readers never block on.
    double publish_seconds = 0.0;
    /// Whether any observation was recorded (false for an empty batch:
    /// no publication happened and publish_seconds is 0).
    bool published = false;
  };

  /// Executes every plan and records all measurements under ONE published
  /// snapshot epoch — readers either see the whole batch or none of it.
  /// Measurements come back in plan order; stops at the first failing
  /// execution (already-executed plans are still recorded and published).
  StatusOr<BatchWriteResult> ExecuteAndRecordBatch(
      const std::string& scope, const std::vector<QueryPlan>& plans);

  /// Executes without recording (e.g., validation runs whose cost must not
  /// leak into the training history).
  StatusOr<Measurement> ExecuteOnly(const QueryPlan& plan);

 private:
  const Federation* federation_;
  ExecutionSimulator* simulator_;
  Modelling* modelling_;
};

/// Packs a simulator measurement into the metric layout used across the
/// library: {seconds, dollars}.
Vector MeasurementToCosts(const Measurement& measurement);

/// The standard metric names matching MeasurementToCosts.
std::vector<std::string> StandardMetricNames();

}  // namespace midas

#endif  // MIDAS_IRES_SCHEDULER_H_
