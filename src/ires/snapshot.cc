#include "ires/snapshot.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace midas {

namespace {

/// Memo key for a DreamOptions configuration: every field that can change
/// the fitted models takes part, doubles printed with full precision so
/// distinct configurations never collide.
std::string DreamOptionsKey(const DreamOptions& options) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "r2=%.17g;mmax=%zu;adj=%d;eng=%d;ridge=%.17g",
                options.r2_require, options.m_max,
                options.use_adjusted_r2 ? 1 : 0,
                options.engine == DreamEngine::kBatch ? 1 : 0,
                options.ols.ridge_fallback);
  return buf;
}

}  // namespace

StatusOr<const EstimatorSnapshot::ScopeState*> EstimatorSnapshot::Find(
    const std::string& scope) const {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) {
    return Status::NotFound("no history for scope: " + scope);
  }
  return it->second.get();
}

StatusOr<const TrainingSet*> EstimatorSnapshot::Window(
    const std::string& scope) const {
  MIDAS_ASSIGN_OR_RETURN(const ScopeState* state, Find(scope));
  return &state->frozen;
}

size_t EstimatorSnapshot::SizeOf(const std::string& scope) const {
  auto it = scopes_.find(scope);
  return it == scopes_.end() ? 0 : it->second->frozen.size();
}

std::vector<std::string> EstimatorSnapshot::Scopes() const {
  std::vector<std::string> out;
  out.reserve(scopes_.size());
  for (const auto& [name, unused] : scopes_) out.push_back(name);
  return out;
}

StatusOr<std::shared_ptr<const DreamEstimate>> EstimatorSnapshot::DreamFit(
    const std::string& scope, const DreamOptions& options) const {
  MIDAS_ASSIGN_OR_RETURN(const ScopeState* state, Find(scope));
  const std::string key = DreamOptionsKey(options);
  std::lock_guard<std::mutex> lock(state->fit_mutex);
  auto it = state->dream_fits.find(key);
  if (it != state->dream_fits.end()) return it->second;
  Dream dream(options);
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate estimate,
                         dream.EstimateCostValue(state->frozen));
  auto shared = std::make_shared<const DreamEstimate>(std::move(estimate));
  state->dream_fits.emplace(key, shared);
  return shared;
}

StatusOr<std::shared_ptr<const BmlScopeFit>> EstimatorSnapshot::BmlFit(
    const std::string& scope, const std::string& key,
    const BmlFitter& fitter) const {
  MIDAS_ASSIGN_OR_RETURN(const ScopeState* state, Find(scope));
  std::lock_guard<std::mutex> lock(state->fit_mutex);
  auto it = state->bml_fits.find(key);
  if (it != state->bml_fits.end()) return it->second;
  MIDAS_ASSIGN_OR_RETURN(BmlScopeFit fit, fitter(state->frozen));
  auto shared = std::make_shared<const BmlScopeFit>(std::move(fit));
  state->bml_fits.emplace(key, shared);
  return shared;
}

SnapshotPublisher::SnapshotPublisher(std::vector<std::string> feature_names,
                                     std::vector<std::string> metric_names)
    : live_(feature_names, metric_names),
      feature_names_(std::make_shared<const std::vector<std::string>>(
          std::move(feature_names))),
      metric_names_(std::make_shared<const std::vector<std::string>>(
          std::move(metric_names))) {
  auto initial = std::make_shared<EstimatorSnapshot>();
  initial->epoch_ = 0;
  initial->feature_names_ = feature_names_;
  initial->metric_names_ = metric_names_;
  published_ = std::move(initial);
}

std::shared_ptr<const EstimatorSnapshot> SnapshotPublisher::Acquire() const {
  // Acquire is const so any reader can pin; the dirty republish mutates
  // only publisher-internal state (conceptually a cache refresh).
  auto* self = const_cast<SnapshotPublisher*>(this);
  std::shared_ptr<const EstimatorSnapshot> snapshot;
  bool republished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dirty_) {
      self->RepublishAllLocked();
      republished = true;
    }
    snapshot = published_;
  }
  if (republished) NotifyPublished(snapshot->epoch());
  return snapshot;
}

uint64_t SnapshotPublisher::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_->epoch();
}

Status SnapshotPublisher::Record(const std::string& scope,
                                 Observation observation) {
  std::vector<ScopedObservation> batch;
  batch.push_back({scope, std::move(observation)});
  return RecordBatch(std::move(batch));
}

Status SnapshotPublisher::RecordBatch(std::vector<ScopedObservation> batch,
                                      uint64_t* published_epoch) {
  Status first_error = Status::OK();
  uint64_t epoch = 0;
  bool published = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> touched;
    for (ScopedObservation& entry : batch) {
      std::string scope = std::move(entry.scope);
      Status st = live_.Record(scope, std::move(entry.observation));
      // A failed Add still creates the scope in the live History; the
      // snapshot mirrors that so both paths answer identically afterwards.
      touched.push_back(std::move(scope));
      if (!st.ok()) {
        first_error = std::move(st);
        break;
      }
    }
    if (!touched.empty() || dirty_) {
      PublishLocked(touched);
      published = true;
    }
    epoch = published_->epoch();
  }
  if (published_epoch != nullptr) *published_epoch = epoch;
  if (published) NotifyPublished(epoch);
  return first_error;
}

void SnapshotPublisher::AddPublishListener(PublishListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mutex_);
  listeners_.push_back(std::move(listener));
}

void SnapshotPublisher::NotifyPublished(uint64_t epoch) const {
  // Snapshot the listener list so a listener registering another listener
  // cannot deadlock; invocation happens outside every publisher lock.
  std::vector<PublishListener> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mutex_);
    listeners = listeners_;
  }
  for (const PublishListener& listener : listeners) listener(epoch);
}

void SnapshotPublisher::PublishLocked(
    const std::vector<std::string>& touched) {
  if (dirty_) {
    RepublishAllLocked();
    return;
  }
  auto successor = std::make_shared<EstimatorSnapshot>();
  successor->epoch_ = published_->epoch_ + 1;
  successor->feature_names_ = feature_names_;
  successor->metric_names_ = metric_names_;
  // Structural sharing: untouched scopes keep their predecessor state —
  // frozen window AND fit memos — so only the delta is replayed.
  successor->scopes_ = published_->scopes_;
  for (const std::string& scope : touched) {
    auto live_set = live_.Get(scope);
    if (!live_set.ok()) continue;  // validation failure created no set
    successor->scopes_[scope] =
        std::make_shared<const EstimatorSnapshot::ScopeState>(
            **live_set);  // O(1) frozen copy: shares the observation buffer
  }
  published_ = std::move(successor);
}

void SnapshotPublisher::RepublishAllLocked() {
  auto successor = std::make_shared<EstimatorSnapshot>();
  successor->epoch_ = published_->epoch_ + 1;
  successor->feature_names_ = feature_names_;
  successor->metric_names_ = metric_names_;
  for (const std::string& scope : live_.Scopes()) {
    auto live_set = live_.Get(scope);
    if (!live_set.ok()) continue;
    successor->scopes_[scope] =
        std::make_shared<const EstimatorSnapshot::ScopeState>(**live_set);
  }
  published_ = std::move(successor);
  dirty_ = false;
}

History& SnapshotPublisher::MutableHistory() {
  std::lock_guard<std::mutex> lock(mutex_);
  dirty_ = true;
  return live_;
}

}  // namespace midas
