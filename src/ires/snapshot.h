#ifndef MIDAS_IRES_SNAPSHOT_H_
#define MIDAS_IRES_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ires/history.h"
#include "ml/learner.h"
#include "regression/dream.h"

namespace midas {

/// \brief Fitted BML model parameters for one scope at one snapshot: the
/// selected best learner per cost metric (metric order), refitted on the
/// scope's frozen window. Learners are immutable once fitted; sharing them
/// across reader threads is safe because Predict/PredictBatch are const.
struct BmlScopeFit {
  std::vector<std::shared_ptr<const Learner>> learners;
  std::vector<std::string> names;  // winning algorithm per metric
};

/// \brief Immutable, refcounted view of the whole estimator state at one
/// publication epoch: frozen per-scope training windows plus the fitted
/// DREAM/BML model parameters derived from them.
///
/// Readers pin a snapshot (shared_ptr) for the duration of one
/// optimization and every prediction inside it sees one consistent
/// (features, model, window) triple, no matter how many Record batches the
/// writer publishes meanwhile. Nothing reachable from a snapshot ever
/// mutates: scope windows are frozen TrainingSet copies (structurally
/// sharing the writer's observation buffer, see TrainingSet), and model
/// fits are deterministic functions of those windows, computed lazily on
/// first use and memoised per (scope, estimator configuration).
///
/// Scope states are shared between consecutive snapshots when the epoch's
/// Record batch did not touch the scope — the snapshot-to-snapshot
/// carry-over that replaces IncrementalOls' within-call carry-over: a
/// DREAM fit computed against epoch N keeps serving epoch N+1 readers
/// unless the delta replay rebuilt that scope's window.
class EstimatorSnapshot {
 public:
  /// Monotone publication counter; epoch 0 is the empty initial snapshot.
  uint64_t epoch() const { return epoch_; }

  const std::vector<std::string>& feature_names() const {
    return *feature_names_;
  }
  const std::vector<std::string>& metric_names() const {
    return *metric_names_;
  }
  size_t num_features() const { return feature_names_->size(); }
  size_t num_metrics() const { return metric_names_->size(); }

  /// The scope's frozen training window; NotFound when the scope had no
  /// observations when this snapshot was published.
  StatusOr<const TrainingSet*> Window(const std::string& scope) const;

  /// Number of observations frozen for a scope (0 when absent).
  size_t SizeOf(const std::string& scope) const;

  std::vector<std::string> Scopes() const;

  /// The DREAM estimate (Algorithm 1) for a scope's frozen window under
  /// `options`, fitted on first use and shared by every later caller with
  /// the same configuration. Deterministic, so the memo never changes an
  /// answer — it only amortises the fit across the readers of one epoch.
  StatusOr<std::shared_ptr<const DreamEstimate>> DreamFit(
      const std::string& scope, const DreamOptions& options) const;

  /// Fits (or returns the memoised) BML models for a scope under the memo
  /// key `key` (one per window policy). `fitter` must be a deterministic
  /// pure function of the frozen window; it runs at most once per key per
  /// scope state.
  using BmlFitter = std::function<StatusOr<BmlScopeFit>(const TrainingSet&)>;
  StatusOr<std::shared_ptr<const BmlScopeFit>> BmlFit(
      const std::string& scope, const std::string& key,
      const BmlFitter& fitter) const;

 private:
  friend class SnapshotPublisher;

  /// Frozen per-scope state. Immutable except for the fit memos, which are
  /// logically const (deterministic, mutex-guarded lazy initialisation).
  struct ScopeState {
    explicit ScopeState(TrainingSet window) : frozen(std::move(window)) {}
    const TrainingSet frozen;
    mutable std::mutex fit_mutex;
    mutable std::map<std::string, std::shared_ptr<const DreamEstimate>>
        dream_fits;
    mutable std::map<std::string, std::shared_ptr<const BmlScopeFit>>
        bml_fits;
  };

  StatusOr<const ScopeState*> Find(const std::string& scope) const;

  uint64_t epoch_ = 0;
  std::shared_ptr<const std::vector<std::string>> feature_names_;
  std::shared_ptr<const std::vector<std::string>> metric_names_;
  std::map<std::string, std::shared_ptr<const ScopeState>> scopes_;
};

/// \brief Single-writer, many-reader publication point of the estimator
/// state — the split between Figure 2's feedback writes and DREAM/BML
/// prediction reads.
///
/// Writers apply Record batches to the private writer-side History and
/// publish an immutable successor snapshot with an atomically bumped
/// epoch: the successor shares every untouched scope's state (including
/// its fit memos) with the predecessor and rebuilds only the scopes the
/// batch touched by replaying the delta onto a fresh frozen copy. Readers
/// call Acquire() to pin the current snapshot; pinned snapshots stay valid
/// and self-consistent for as long as the reader holds the shared_ptr,
/// regardless of later publications.
class SnapshotPublisher {
 public:
  SnapshotPublisher(std::vector<std::string> feature_names,
                    std::vector<std::string> metric_names);

  /// Pins the currently published snapshot (cheap: one shared_ptr copy
  /// under a short critical section).
  std::shared_ptr<const EstimatorSnapshot> Acquire() const;

  /// Epoch of the currently published snapshot.
  uint64_t epoch() const;

  /// \brief Publication hook: `listener` runs after every successful
  /// publication with the new snapshot's epoch — the attachment point for
  /// epoch-keyed caches that must stay bounded in a long-lived server
  /// (e.g. FeatureCostCache::PruneOtherEpochs on the optimizer's
  /// prediction memo).
  ///
  /// Listeners are invoked OUTSIDE the publisher mutex, on whichever
  /// thread triggered the publication (the Record/RecordBatch writer, or
  /// the Acquire reader that folds a dirty MutableHistory into a fresh
  /// epoch). They may Acquire() and may touch their own locks, but must
  /// not Record — publication from inside a publication listener would
  /// recurse. Listeners cannot be removed; register for the publisher's
  /// lifetime.
  using PublishListener = std::function<void(uint64_t epoch)>;
  void AddPublishListener(PublishListener listener);

  /// One scoped observation of a Record batch.
  struct ScopedObservation {
    std::string scope;
    Observation observation;
  };

  /// Applies one observation and publishes the successor (epoch + 1).
  Status Record(const std::string& scope, Observation observation);

  /// Applies a whole feedback batch and publishes ONE successor epoch —
  /// the writer-client pattern for high-rate streams (e.g. the drift
  /// simulator's scheduler feedback). On a validation error the
  /// observations already applied are still published so readers never
  /// see a half-written scope. When `published_epoch` is non-null it
  /// receives the epoch the batch is visible under (the published epoch
  /// as of this call, so writers can report which snapshot their feedback
  /// landed in without racing a concurrent writer's later publication).
  Status RecordBatch(std::vector<ScopedObservation> batch,
                     uint64_t* published_epoch = nullptr);

  /// Writer-side live history (what the next snapshot will freeze).
  /// Reading it concurrently with Record is the caller's race to manage —
  /// concurrent consumers should pin a snapshot instead.
  const History& history() const { return live_; }

  /// Mutable writer-side history for legacy callers (pruning, direct
  /// maintenance). Marks the published snapshot stale: the next Acquire()
  /// republishes every scope from the live state under a fresh epoch.
  History& MutableHistory();

 private:
  /// Rebuilds `touched` scopes from live_ into a successor snapshot and
  /// publishes it. Caller holds mutex_.
  void PublishLocked(const std::vector<std::string>& touched);

  /// Republishes every scope from live_ (dirty MutableHistory path).
  /// Caller holds mutex_.
  void RepublishAllLocked();

  /// Runs every registered listener with `epoch`. Caller must NOT hold
  /// mutex_ (listeners may Acquire).
  void NotifyPublished(uint64_t epoch) const;

  mutable std::mutex mutex_;  // guards live_, published_, dirty_
  History live_;
  std::shared_ptr<const std::vector<std::string>> feature_names_;
  std::shared_ptr<const std::vector<std::string>> metric_names_;
  std::shared_ptr<const EstimatorSnapshot> published_;
  bool dirty_ = false;

  mutable std::mutex listeners_mutex_;  // guards listeners_ only
  std::vector<PublishListener> listeners_;
};

}  // namespace midas

#endif  // MIDAS_IRES_SNAPSHOT_H_
