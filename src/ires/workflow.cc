#include "ires/workflow.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "optimizer/configuration_problem.h"
#include "optimizer/nsga2.h"
#include "optimizer/pareto.h"

namespace midas {

StatusOr<size_t> WorkflowDag::AddOperator(
    std::string name, std::vector<size_t> inputs,
    std::vector<EngineKind> candidate_engines) {
  for (size_t input : inputs) {
    if (input >= operators_.size()) {
      return Status::InvalidArgument(
          "operator input references a later/unknown operator");
    }
  }
  if (candidate_engines.empty()) {
    return Status::InvalidArgument("operator needs at least one engine");
  }
  const size_t id = operators_.size();
  operators_.push_back({std::move(name), std::move(inputs),
                        std::move(candidate_engines)});
  return id;
}

std::vector<size_t> WorkflowDag::TopologicalOrder() const {
  std::vector<size_t> order(operators_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;  // AddOperator enforces forward-only edges
}

std::vector<size_t> WorkflowDag::Sinks() const {
  std::vector<bool> consumed(operators_.size(), false);
  for (const WorkflowOperator& op : operators_) {
    for (size_t input : op.inputs) consumed[input] = true;
  }
  std::vector<size_t> sinks;
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (!consumed[i]) sinks.push_back(i);
  }
  return sinks;
}

Status WorkflowDag::Validate() const {
  if (operators_.empty()) {
    return Status::InvalidArgument("empty workflow");
  }
  for (const WorkflowOperator& op : operators_) {
    if (op.candidate_engines.empty()) {
      return Status::InvalidArgument("operator " + op.name +
                                     " has no candidate engines");
    }
  }
  return Status::OK();
}

WorkflowOptimizer::WorkflowOptimizer() : WorkflowOptimizer(Options()) {}

WorkflowOptimizer::WorkflowOptimizer(Options options) : options_(options) {}

StatusOr<Vector> WorkflowOptimizer::CostOf(
    const WorkflowDag& dag, const WorkflowAssignment& assignment,
    const OperatorCost& operator_cost, const TransferCost& transfer_cost,
    size_t num_metrics) const {
  Vector total(num_metrics, 0.0);
  for (size_t i = 0; i < dag.size(); ++i) {
    MIDAS_ASSIGN_OR_RETURN(Vector c,
                           operator_cost(i, assignment.engine_per_op[i]));
    if (c.size() != num_metrics) {
      return Status::InvalidArgument("operator cost arity mismatch");
    }
    for (size_t m = 0; m < num_metrics; ++m) total[m] += c[m];
    for (size_t input : dag.op(i).inputs) {
      if (assignment.engine_per_op[input] == assignment.engine_per_op[i]) {
        continue;
      }
      MIDAS_ASSIGN_OR_RETURN(
          Vector xfer,
          transfer_cost(input, assignment.engine_per_op[input], i,
                        assignment.engine_per_op[i]));
      if (xfer.size() != num_metrics) {
        return Status::InvalidArgument("transfer cost arity mismatch");
      }
      for (size_t m = 0; m < num_metrics; ++m) total[m] += xfer[m];
    }
  }
  return total;
}

StatusOr<WorkflowOptimizer::Result> WorkflowOptimizer::Optimize(
    const WorkflowDag& dag, const OperatorCost& operator_cost,
    const TransferCost& transfer_cost, const QueryPolicy& policy) const {
  MIDAS_RETURN_IF_ERROR(dag.Validate());
  if (!operator_cost || !transfer_cost) {
    return Status::InvalidArgument("null cost callback");
  }
  const size_t num_metrics = policy.weights.size();
  if (num_metrics == 0) {
    return Status::InvalidArgument("policy declares no metrics");
  }

  uint64_t space = 1;
  for (size_t i = 0; i < dag.size(); ++i) {
    space *= dag.op(i).candidate_engines.size();
    if (space > options_.exhaustive_limit) break;
  }

  std::vector<WorkflowAssignment> candidates;
  std::vector<Vector> costs;

  auto decode = [&dag](const std::vector<size_t>& picks) {
    WorkflowAssignment assignment;
    assignment.engine_per_op.resize(dag.size());
    for (size_t i = 0; i < dag.size(); ++i) {
      assignment.engine_per_op[i] = dag.op(i).candidate_engines[picks[i]];
    }
    return assignment;
  };

  if (space <= options_.exhaustive_limit) {
    // Mixed-radix enumeration of every assignment.
    std::vector<size_t> picks(dag.size(), 0);
    while (true) {
      WorkflowAssignment assignment = decode(picks);
      MIDAS_ASSIGN_OR_RETURN(
          Vector c, CostOf(dag, assignment, operator_cost, transfer_cost,
                           num_metrics));
      candidates.push_back(std::move(assignment));
      costs.push_back(std::move(c));
      size_t d = 0;
      while (d < picks.size()) {
        if (++picks[d] < dag.op(d).candidate_engines.size()) break;
        picks[d] = 0;
        ++d;
      }
      if (d == picks.size()) break;
    }
  } else {
    // Large space: NSGA-II over the engine-choice configuration problem.
    std::vector<size_t> dims(dag.size());
    for (size_t i = 0; i < dag.size(); ++i) {
      dims[i] = dag.op(i).candidate_engines.size();
    }
    Status eval_error = Status::OK();
    ConfigurationProblem problem(
        "workflow-assignment", dims, num_metrics,
        [&](const std::vector<size_t>& picks) -> Vector {
          auto c = CostOf(dag, decode(picks), operator_cost, transfer_cost,
                          num_metrics);
          if (!c.ok()) {
            if (eval_error.ok()) eval_error = c.status();
            return Vector(num_metrics,
                          std::numeric_limits<double>::infinity());
          }
          return std::move(c).ValueOrDie();
        });
    Nsga2Options nsga_options;
    nsga_options.population_size = options_.nsga2_population;
    nsga_options.generations = options_.nsga2_generations;
    nsga_options.seed = options_.seed;
    MIDAS_ASSIGN_OR_RETURN(MooResult moo, Nsga2(nsga_options).Optimize(problem));
    MIDAS_RETURN_IF_ERROR(eval_error);
    std::set<std::vector<size_t>> seen;
    for (size_t idx : moo.front) {
      const std::vector<size_t> picks =
          problem.Decode(moo.population[idx].variables);
      if (!seen.insert(picks).second) continue;
      candidates.push_back(decode(picks));
      costs.push_back(moo.population[idx].objectives);
    }
  }

  Result result;
  result.assignments_examined = candidates.size();
  const std::vector<size_t> front = ParetoFrontIndices(costs);
  std::set<Vector> seen_costs;
  for (size_t idx : front) {
    if (!seen_costs.insert(costs[idx]).second) continue;
    result.pareto_assignments.push_back(std::move(candidates[idx]));
    result.pareto_costs.push_back(std::move(costs[idx]));
  }
  MIDAS_ASSIGN_OR_RETURN(result.chosen,
                         BestInPareto(result.pareto_costs, policy));
  return result;
}

}  // namespace midas
