#ifndef MIDAS_IRES_WORKFLOW_H_
#define MIDAS_IRES_WORKFLOW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/engine_kind.h"
#include "linalg/matrix.h"
#include "optimizer/best_in_pareto.h"

namespace midas {

/// \brief One abstract operator of an analytics workflow: a named
/// processing step that can be materialised on any of several engines
/// (IReS' core abstraction — "complex analytics workflows executed over
/// multi-engine environments").
struct WorkflowOperator {
  std::string name;
  /// Indices of the operators whose outputs this one consumes.
  std::vector<size_t> inputs;
  /// Engines this operator has an implementation for.
  std::vector<EngineKind> candidate_engines;
};

/// \brief A directed acyclic workflow of abstract operators.
class WorkflowDag {
 public:
  WorkflowDag() = default;

  /// Appends an operator; `inputs` must reference already-added operators
  /// (which makes cycles impossible by construction).
  StatusOr<size_t> AddOperator(std::string name, std::vector<size_t> inputs,
                               std::vector<EngineKind> candidate_engines);

  size_t size() const { return operators_.size(); }
  const WorkflowOperator& op(size_t index) const { return operators_[index]; }

  /// Indices in dependency order (insertion order is already topological).
  std::vector<size_t> TopologicalOrder() const;

  /// Operators nobody consumes (the workflow's outputs).
  std::vector<size_t> Sinks() const;

  /// Structural sanity: non-empty, every operator has at least one
  /// candidate engine.
  Status Validate() const;

 private:
  std::vector<WorkflowOperator> operators_;
};

/// \brief One engine choice per operator.
struct WorkflowAssignment {
  std::vector<EngineKind> engine_per_op;
};

/// \brief Multi-objective optimizer for workflow engine assignment.
///
/// The caller supplies two cost callbacks: the cost vector of running one
/// operator on one engine, and the cost vector of moving data across an
/// edge whose endpoints run on different engines (0 when co-located). The
/// optimizer explores assignments — exhaustively when the space is small,
/// with NSGA-II over a ConfigurationProblem otherwise — and returns the
/// Pareto set plus Algorithm 2's pick under the user policy.
class WorkflowOptimizer {
 public:
  /// Cost of running operator `op` on `engine`.
  using OperatorCost =
      std::function<StatusOr<Vector>(size_t op, EngineKind engine)>;
  /// Cost of the edge producer->consumer when their engines differ.
  using TransferCost = std::function<StatusOr<Vector>(
      size_t producer, EngineKind from, size_t consumer, EngineKind to)>;

  struct Options {
    /// Assignment-space size above which NSGA-II replaces enumeration.
    uint64_t exhaustive_limit = 50000;
    size_t nsga2_population = 80;
    size_t nsga2_generations = 80;
    uint64_t seed = 1;
  };

  struct Result {
    std::vector<WorkflowAssignment> pareto_assignments;
    std::vector<Vector> pareto_costs;
    size_t chosen = 0;
    uint64_t assignments_examined = 0;

    const WorkflowAssignment& chosen_assignment() const {
      return pareto_assignments[chosen];
    }
  };

  WorkflowOptimizer();  // default options
  explicit WorkflowOptimizer(Options options);

  StatusOr<Result> Optimize(const WorkflowDag& dag,
                            const OperatorCost& operator_cost,
                            const TransferCost& transfer_cost,
                            const QueryPolicy& policy) const;

 private:
  StatusOr<Vector> CostOf(const WorkflowDag& dag,
                          const WorkflowAssignment& assignment,
                          const OperatorCost& operator_cost,
                          const TransferCost& transfer_cost,
                          size_t num_metrics) const;

  Options options_;
};

}  // namespace midas

#endif  // MIDAS_IRES_WORKFLOW_H_
