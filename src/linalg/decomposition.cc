#include "linalg/decomposition.h"

#include <cmath>

#include "linalg/simd.h"

namespace midas {

namespace {

/// The Cholesky inner product Σ_k<j L(i,k)·L(j,k) over two contiguous row
/// prefixes. The seed loops interleave the subtraction with the products
/// (sum -= term, one rounding per step), which a fused dot cannot reproduce
/// bit-exactly — so the vector tier computes the dot in one reduction and
/// subtracts once, and the scalar tier keeps the original interleaved loop.
/// Equivalence between the two is pinned at ≤1e-12 relative by the SIMD
/// suites; force-scalar runs always take the seed loop.
inline double CholeskyRowDot(const double* li, const double* lj, size_t j,
                             double seed) {
  if (simd::Enabled()) return seed - simd::Dot(li, lj, j);
  for (size_t k = 0; k < j; ++k) seed -= li[k] * lj[k];
  return seed;
}

}  // namespace

StatusOr<QrDecomposition> HouseholderQr(const Matrix& a, double tolerance) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  if (n == 0) {
    return Status::InvalidArgument("QR of empty matrix");
  }
  // Work on a dense copy; accumulate Q explicitly (sizes here are small).
  Matrix r = a;
  Matrix q = Matrix::Identity(m);
  for (size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r.At(i, k) * r.At(i, k);
    norm = std::sqrt(norm);
    if (norm < tolerance) {
      return Status::InvalidArgument("QR: rank-deficient matrix");
    }
    const double alpha = r.At(k, k) >= 0 ? -norm : norm;
    Vector v(m, 0.0);
    v[k] = r.At(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i] = r.At(i, k);
    double vtv = 0.0;
    for (size_t i = k; i < m; ++i) vtv += v[i] * v[i];
    if (vtv < tolerance * tolerance) continue;  // column already reduced
    // Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n-1) and to Q.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i] * r.At(i, j);
      const double f = 2.0 * dot / vtv;
      for (size_t i = k; i < m; ++i) r.At(i, j) -= f * v[i];
    }
    for (size_t j = 0; j < m; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i] * q.At(j, i);
      const double f = 2.0 * dot / vtv;
      for (size_t i = k; i < m; ++i) q.At(j, i) -= f * v[i];
    }
  }
  // Thin factors: Q -> m x n, R -> n x n upper triangle.
  Matrix q_thin(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) q_thin.At(i, j) = q.At(i, j);
  }
  Matrix r_thin(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) r_thin.At(i, j) = r.At(i, j);
  }
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(r_thin.At(i, i)) < tolerance) {
      return Status::InvalidArgument("QR: rank-deficient matrix");
    }
  }
  return QrDecomposition{std::move(q_thin), std::move(r_thin)};
}

StatusOr<PivotedQr> HouseholderQrPivoted(const Matrix& a, double tolerance) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  if (n == 0) {
    return Status::InvalidArgument("QR of empty matrix");
  }
  Matrix r = a;
  Matrix q = Matrix::Identity(m);
  std::vector<size_t> perm(n);
  for (size_t j = 0; j < n; ++j) perm[j] = j;

  // Running squared column norms for pivot selection.
  std::vector<double> col_norms(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) col_norms[j] += r.At(i, j) * r.At(i, j);
  }

  size_t rank = n;
  double first_pivot = 0.0;
  for (size_t k = 0; k < n; ++k) {
    // Pivot: bring the column with the largest remaining norm to front.
    size_t pivot = k;
    for (size_t j = k + 1; j < n; ++j) {
      if (col_norms[j] > col_norms[pivot]) pivot = j;
    }
    if (pivot != k) {
      for (size_t i = 0; i < m; ++i) {
        std::swap(r.At(i, k), r.At(i, pivot));
      }
      std::swap(col_norms[k], col_norms[pivot]);
      std::swap(perm[k], perm[pivot]);
    }
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r.At(i, k) * r.At(i, k);
    norm = std::sqrt(norm);
    if (k == 0) first_pivot = norm;
    if (norm <= tolerance * std::max(first_pivot, 1.0)) {
      rank = k;
      break;
    }
    const double alpha = r.At(k, k) >= 0 ? -norm : norm;
    Vector v(m, 0.0);
    v[k] = r.At(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i] = r.At(i, k);
    double vtv = 0.0;
    for (size_t i = k; i < m; ++i) vtv += v[i] * v[i];
    if (vtv > 0.0) {
      for (size_t j = k; j < n; ++j) {
        double dot = 0.0;
        for (size_t i = k; i < m; ++i) dot += v[i] * r.At(i, j);
        const double f = 2.0 * dot / vtv;
        for (size_t i = k; i < m; ++i) r.At(i, j) -= f * v[i];
      }
      for (size_t j = 0; j < m; ++j) {
        double dot = 0.0;
        for (size_t i = k; i < m; ++i) dot += v[i] * q.At(j, i);
        const double f = 2.0 * dot / vtv;
        for (size_t i = k; i < m; ++i) q.At(j, i) -= f * v[i];
      }
    }
    // Downdate the remaining column norms.
    for (size_t j = k + 1; j < n; ++j) {
      col_norms[j] -= r.At(k, j) * r.At(k, j);
      if (col_norms[j] < 0.0) col_norms[j] = 0.0;
    }
  }

  PivotedQr out;
  out.permutation = std::move(perm);
  out.rank = rank;
  out.q = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.q.At(i, j) = q.At(i, j);
  }
  out.r = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) out.r.At(i, j) = r.At(i, j);
  }
  return out;
}

StatusOr<Vector> PivotedLeastSquaresSolve(const Matrix& a, const Vector& b,
                                          double tolerance) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("least-squares shape mismatch");
  }
  MIDAS_ASSIGN_OR_RETURN(PivotedQr qr, HouseholderQrPivoted(a, tolerance));
  if (qr.rank == 0) {
    return Status::InvalidArgument("zero matrix in least squares");
  }
  const size_t n = a.cols();
  // z = (Qᵀ b) restricted to the leading rank rows.
  MIDAS_ASSIGN_OR_RETURN(Vector qtb, qr.q.Transpose().MultiplyVector(b));
  // Back substitution on the rank x rank leading block.
  Vector z(qr.rank, 0.0);
  for (size_t ii = qr.rank; ii-- > 0;) {
    double sum = qtb[ii];
    for (size_t j = ii + 1; j < qr.rank; ++j) sum -= qr.r.At(ii, j) * z[j];
    const double d = qr.r.At(ii, ii);
    if (std::abs(d) < 1e-300) {
      return Status::Internal("pivoted QR produced a zero pivot");
    }
    z[ii] = sum / d;
  }
  Vector x(n, 0.0);
  for (size_t j = 0; j < qr.rank; ++j) x[qr.permutation[j]] = z[j];
  return x;
}

StatusOr<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b,
                                      double tolerance) {
  const size_t n = r.rows();
  if (r.cols() != n || b.size() != n) {
    return Status::InvalidArgument("triangular solve shape mismatch");
  }
  Vector x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= r.At(ii, j) * x[j];
    if (std::abs(r.At(ii, ii)) < tolerance) {
      return Status::InvalidArgument("singular triangular system");
    }
    x[ii] = sum / r.At(ii, ii);
  }
  return x;
}

StatusOr<Vector> LeastSquaresSolve(const Matrix& a, const Vector& b,
                                   double tolerance) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("least-squares shape mismatch");
  }
  MIDAS_ASSIGN_OR_RETURN(QrDecomposition qr, HouseholderQr(a, tolerance));
  // x = R⁻¹ Qᵀ b.
  MIDAS_ASSIGN_OR_RETURN(Vector qtb, qr.q.Transpose().MultiplyVector(b));
  return SolveUpperTriangular(qr.r, qtb, tolerance);
}

StatusOr<Matrix> CholeskyFactor(const Matrix& a, double tolerance) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double sum =
          CholeskyRowDot(l.RowData(i), l.RowData(j), j, a.At(i, j));
      if (i == j) {
        if (sum < tolerance) {
          return Status::InvalidArgument("matrix is not positive definite");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Status CholeskyFactorInto(const Matrix& a, Matrix* l, double rel_tolerance) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (l->rows() != n || l->cols() != n) *l = Matrix(n, n);
  double scale = 1.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(a.At(i, i)));
  const double pivot_floor = rel_tolerance * scale;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double sum =
          CholeskyRowDot(l->RowData(i), l->RowData(j), j, a.At(i, j));
      if (i == j) {
        if (sum < pivot_floor) {
          return Status::InvalidArgument(
              "matrix is numerically not positive definite");
        }
        l->At(i, i) = std::sqrt(sum);
      } else {
        l->At(i, j) = sum / l->At(j, j);
      }
    }
  }
  return Status::OK();
}

Status CholeskySolveFactored(const Matrix& l, const Vector& b, Vector* x) {
  const size_t n = l.rows();
  if (l.cols() != n || b.size() != n) {
    return Status::InvalidArgument("factored Cholesky solve shape mismatch");
  }
  x->assign(n, 0.0);
  // Forward solve L y = b (y aliases x); row prefixes are contiguous, so
  // the inner product runs through the kernel layer.
  for (size_t i = 0; i < n; ++i) {
    const double sum = CholeskyRowDot(l.RowData(i), x->data(), i, b[i]);
    (*x)[i] = sum / l.At(i, i);
  }
  // Back solve Lᵀ x = y in place.
  for (size_t ii = n; ii-- > 0;) {
    double sum = (*x)[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * (*x)[k];
    (*x)[ii] = sum / l.At(ii, ii);
  }
  return Status::OK();
}

StatusOr<Vector> CholeskySolve(const Matrix& a, const Vector& b,
                               double tolerance) {
  const size_t n = a.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("Cholesky solve shape mismatch");
  }
  MIDAS_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a, tolerance));
  // Forward solve L y = b.
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double sum = CholeskyRowDot(l.RowData(i), y.data(), i, b[i]);
    y[i] = sum / l.At(i, i);
  }
  // Back solve Lᵀ x = y.
  Vector x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

StatusOr<Matrix> SpdInverse(const Matrix& a, double tolerance) {
  const size_t n = a.rows();
  Matrix inv(n, n);
  for (size_t col = 0; col < n; ++col) {
    Vector e(n, 0.0);
    e[col] = 1.0;
    MIDAS_ASSIGN_OR_RETURN(Vector x, CholeskySolve(a, e, tolerance));
    for (size_t row = 0; row < n; ++row) inv.At(row, col) = x[row];
  }
  return inv;
}

}  // namespace midas
