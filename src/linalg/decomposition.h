#ifndef MIDAS_LINALG_DECOMPOSITION_H_
#define MIDAS_LINALG_DECOMPOSITION_H_

#include "linalg/matrix.h"

namespace midas {

/// \brief Householder QR factorisation A = Q R for A with rows >= cols.
///
/// Q is rows x cols with orthonormal columns (thin QR); R is cols x cols
/// upper triangular. Fails on rank deficiency (|R(i,i)| below tolerance),
/// which callers such as the OLS fitter handle by falling back to ridge
/// regularisation.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

StatusOr<QrDecomposition> HouseholderQr(const Matrix& a,
                                        double tolerance = 1e-12);

/// \brief Rank-revealing QR with column pivoting: A P = Q R, where P is a
/// permutation and R's diagonal is non-increasing in magnitude. `rank` is
/// the number of diagonal entries above tolerance · |R(0,0)|.
struct PivotedQr {
  Matrix q;                      // m x n, orthonormal columns
  Matrix r;                      // n x n upper triangular
  std::vector<size_t> permutation;  // column j of A P is A column perm[j]
  size_t rank = 0;
};

StatusOr<PivotedQr> HouseholderQrPivoted(const Matrix& a,
                                         double tolerance = 1e-10);

/// Minimum-residual least-squares solve via pivoted QR: rank-deficient
/// systems get the basic solution (zero coefficients on the dependent
/// columns) instead of an error.
StatusOr<Vector> PivotedLeastSquaresSolve(const Matrix& a, const Vector& b,
                                          double tolerance = 1e-10);

/// Solves R x = b for upper-triangular R by back substitution.
StatusOr<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b,
                                      double tolerance = 1e-12);

/// Least-squares solve: minimises ||A x - b||_2 via thin QR.
/// Requires a.rows() >= a.cols().
StatusOr<Vector> LeastSquaresSolve(const Matrix& a, const Vector& b,
                                   double tolerance = 1e-12);

/// Cholesky factorisation of a symmetric positive-definite matrix: A = L Lᵀ.
/// Fails (InvalidArgument) when A is not positive definite.
StatusOr<Matrix> CholeskyFactor(const Matrix& a, double tolerance = 1e-12);

/// Cholesky factorisation into a caller-owned buffer: writes L's lower
/// triangle into *l (resized only when the shape is wrong), so repeated
/// factorisations of same-sized matrices allocate nothing. The pivot
/// tolerance is *relative* to max(|diag(a)|, 1), which keeps the
/// positive-definiteness test meaningful for Gram matrices of arbitrary
/// feature magnitude; near-singular inputs fail instead of producing
/// explosive factors. *l's strict upper triangle is left unspecified —
/// only the factored solvers below may consume it.
Status CholeskyFactorInto(const Matrix& a, Matrix* l,
                          double rel_tolerance = 1e-10);

/// Solves L Lᵀ x = b given a Cholesky factor produced by CholeskyFactor /
/// CholeskyFactorInto, writing into *x (resized as needed). Reads only L's
/// lower triangle. O(n²), no allocation when x is already the right size.
Status CholeskySolveFactored(const Matrix& l, const Vector& b, Vector* x);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
StatusOr<Vector> CholeskySolve(const Matrix& a, const Vector& b,
                               double tolerance = 1e-12);

/// Inverse of a symmetric positive-definite matrix via Cholesky; used for
/// the (AᵀA)⁻¹ term of the paper's Eq. 12 and regression diagnostics.
StatusOr<Matrix> SpdInverse(const Matrix& a, double tolerance = 1e-12);

}  // namespace midas

#endif  // MIDAS_LINALG_DECOMPOSITION_H_
