#include "linalg/matrix.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "common/logging.h"
#include "linalg/simd.h"

namespace midas {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    MIDAS_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromColumn(const Vector& v) {
  Matrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m.At(i, 0) = v[i];
  return m;
}

StatusOr<Matrix> Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  double* dst = m.data_.data();
  for (const Vector& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged rows");
    }
    std::memcpy(dst, row.data(), cols * sizeof(double));
    dst += cols;
  }
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  MIDAS_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of range for " << rows_ << "x"
      << cols_;
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  MIDAS_CHECK(r < rows_ && c < cols_)
      << "index (" << r << "," << c << ") out of range for " << rows_ << "x"
      << cols_;
  return data_[r * cols_ + c];
}

const double* Matrix::RowData(size_t r) const {
  MIDAS_CHECK(r < rows_) << "row " << r << " out of range for " << rows_;
  return data_.data() + r * cols_;
}

Vector Matrix::Row(size_t r) const {
  MIDAS_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::Col(size_t c) const {
  MIDAS_CHECK(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::SetRow(size_t r, const Vector& values) {
  MIDAS_CHECK(r < rows_ && values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.At(c, r) = data_[r * cols_ + c];
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      // Upper-triangle rank-1 update on the row suffix [i, cols): an axpy
      // with the same ascending-j association as the seed loop.
      simd::Axpy(ri, row + i, out.data_.data() + i * cols_ + i, cols_ - i);
    }
  }
  // Mirror the upper triangle into the lower one.
  for (size_t i = 1; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      out.data_[i * cols_ + j] = out.data_[j * cols_ + i];
    }
  }
  return out;
}

StatusOr<Vector> Matrix::TransposeTimesVector(const Vector& v) const {
  if (rows_ != v.size()) {
    return Status::InvalidArgument("transpose-matvec shape mismatch");
  }
  Vector out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    simd::Axpy(vr, data_.data() + r * cols_, out.data(), cols_);
  }
  return out;
}

void Matrix::AddOuterProduct(const Vector& v) {
  MIDAS_CHECK(rows_ == cols_ && rows_ == v.size())
      << "outer-product update needs a square matrix of side " << v.size()
      << ", have " << rows_ << "x" << cols_;
  for (size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    simd::Axpy(vi, v.data(), data_.data() + i * cols_, cols_);
  }
}

void Matrix::Resize(size_t rows, size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  Matrix out;
  MIDAS_RETURN_IF_ERROR(MultiplyInto(other, &out));
  return out;
}

Status Matrix::MultiplyInto(const Matrix& other, Matrix* out,
                            bool accumulate) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matmul shape mismatch");
  }
  if (out == this || out == &other) {
    return Status::InvalidArgument("matmul output aliases an operand");
  }
  if (!accumulate) {
    out->Resize(rows_, other.cols_);
  } else if (out->rows_ != rows_ || out->cols_ != other.cols_) {
    return Status::InvalidArgument("matmul accumulate shape mismatch");
  }
  simd::GemmAcc(data_.data(), other.data_.data(), out->data_.data(), rows_,
                cols_, other.cols_);
  return Status::OK();
}

Status Matrix::MultiplyTransposedInto(const Matrix& other_t, Matrix* out,
                                      bool accumulate) const {
  if (cols_ != other_t.cols_) {
    return Status::InvalidArgument("matmul shape mismatch");
  }
  if (out == this || out == &other_t) {
    return Status::InvalidArgument("matmul output aliases an operand");
  }
  if (!accumulate) {
    out->Resize(rows_, other_t.rows_);
  } else if (out->rows_ != rows_ || out->cols_ != other_t.rows_) {
    return Status::InvalidArgument("matmul accumulate shape mismatch");
  }
  simd::GemmTransBAcc(data_.data(), other_t.data_.data(), out->data_.data(),
                      rows_, cols_, other_t.rows_);
  return Status::OK();
}

StatusOr<Vector> Matrix::MultiplyVector(const Vector& v) const {
  if (cols_ != v.size()) {
    return Status::InvalidArgument("matvec shape mismatch");
  }
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    out[r] = simd::DotAcc(0.0, data_.data() + r * cols_, v.data(), cols_);
  }
  return out;
}

StatusOr<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("add shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

StatusOr<Matrix> Matrix::Subtract(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("subtract shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= factor;
  return out;
}

StatusOr<Matrix> Matrix::RowSlice(size_t begin, size_t end) const {
  if (begin > end || end > rows_) {
    return Status::OutOfRange("row slice out of range");
  }
  Matrix out(end - begin, cols_);
  for (size_t r = begin; r < end; ++r) out.SetRow(r - begin, Row(r));
  return out;
}

StatusOr<double> Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("diff shape mismatch");
  }
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << data_[r * cols_ + c];
    }
    os << "]\n";
  }
  return os.str();
}

Status MultiplyReferenceInto(const Matrix& a, const Matrix& b, Matrix* out) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("matmul shape mismatch");
  }
  *out = Matrix(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      out->At(i, j) = acc;
    }
  }
  return Status::OK();
}

double Dot(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "dot length mismatch";
  return simd::Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

size_t VectorHash::operator()(const Vector& v) const noexcept {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ v.size();
  for (double d : v) {
    if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    h ^= bits;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
  }
  return static_cast<size_t>(h);
}

}  // namespace midas
