#ifndef MIDAS_LINALG_MATRIX_H_
#define MIDAS_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"

namespace midas {

/// Dense double vector whose buffer starts on a 64-byte boundary, so the
/// SIMD kernel layer's vector loads never split a cache line at the base.
/// Element semantics (operator==, iteration, serialization) are identical
/// to a plain std::vector<double>; only the allocator differs.
using Vector = AlignedVector<double>;

/// \brief Bitwise hash for Vector, for unordered containers keyed by exact
/// cost or feature vectors (e.g. the MOQP cost dedup and the plan-feature
/// prediction cache). Normalises -0.0 to 0.0 so vectors that compare equal
/// under operator== hash identically; NaN keys are unusable either way
/// (NaN != NaN).
struct VectorHash {
  size_t operator()(const Vector& v) const noexcept;
};

/// \brief Dense row-major matrix of doubles.
///
/// Sized for regression problems (tens of columns, up to a few thousand
/// rows); operations are straightforward loops, not BLAS. Out-of-range
/// element access aborts via MIDAS_CHECK, while shape mismatches in the
/// algebraic operations return Status so callers can recover.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested braces: Matrix({{1, 2}, {3, 4}}). All rows must have
  /// equal length (checked).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  /// Builds a single-column matrix from a vector.
  static Matrix FromColumn(const Vector& v);

  /// Assembles a matrix from equal-length rows in one pass over the flat
  /// buffer (no per-row temporaries) — the way batch-inference callers turn
  /// a candidate feature list into one SoA design matrix. Zero rows yield
  /// the empty matrix; ragged rows are an error.
  static StatusOr<Matrix> FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Reshapes to rows × cols with every element set to fill, reusing the
  /// existing buffer when it is large enough — the workspace-friendly
  /// alternative to assigning a fresh Matrix (which reallocates every
  /// call). Invalidates RowData pointers only when the buffer grows.
  void Resize(size_t rows, size_t cols, double fill = 0.0);

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  Vector Row(size_t r) const;
  Vector Col(size_t c) const;
  void SetRow(size_t r, const Vector& values);

  /// Borrowed pointer to row r's cols() contiguous elements — the zero-copy
  /// row view the batch prediction loops iterate with. Invalidated by any
  /// reassignment of the matrix.
  const double* RowData(size_t r) const;

  Matrix Transpose() const;

  /// The Gram matrix AᵀA (cols x cols), computed without materializing the
  /// transpose and exploiting symmetry — half the flops of
  /// Transpose().Multiply(*this). This is the normal-equations building
  /// block of the regression layer.
  Matrix Gram() const;

  /// Aᵀv (length cols) without materializing the transpose.
  StatusOr<Vector> TransposeTimesVector(const Vector& v) const;

  /// Rank-1 symmetric update: *this += v vᵀ. Requires a square matrix of
  /// side v.size() (checked). This is the O(n²) step that lets a Gram
  /// matrix grow one observation at a time.
  void AddOuterProduct(const Vector& v);

  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// GEMM into a caller-owned output: out (+)= *this · other, dispatched
  /// through the SIMD kernel layer (linalg/simd.h). The scalar tier is the
  /// cache-blocked i-k-j loop with ascending-k accumulation — the same
  /// association as the textbook triple loop, so blocked and naive results
  /// are bit-identical on finite inputs and a bias-initialised `accumulate`
  /// pass reproduces the scalar "start from the intercept, add terms in
  /// order" evaluation exactly. The vector tiers run a register-tiled FMA
  /// microkernel whose reassociated sums match the scalar oracle to ≤1e-12
  /// relative error; pin MIDAS_FORCE_SCALAR for bit-exact runs.
  ///
  /// With accumulate == false, out is resized to rows() × other.cols() and
  /// zeroed first (reusing its buffer when large enough); with accumulate
  /// == true it must already have that shape and the product is added on
  /// top. out must not alias either operand.
  Status MultiplyInto(const Matrix& other, Matrix* out,
                      bool accumulate = false) const;

  /// Same contract as MultiplyInto, but `other_t` is handed over
  /// pre-transposed (other_t.row(j) holds column j of the logical B), so
  /// both operands stream contiguously: out(i, j) (+)= Σ_k this(i, k) ·
  /// other_t(j, k), k ascending. This is the layout weight matrices are
  /// naturally stored in (one row per output unit).
  Status MultiplyTransposedInto(const Matrix& other_t, Matrix* out,
                                bool accumulate = false) const;

  StatusOr<Vector> MultiplyVector(const Vector& v) const;
  StatusOr<Matrix> Add(const Matrix& other) const;
  StatusOr<Matrix> Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// Returns the rows [begin, end) as a new matrix.
  StatusOr<Matrix> RowSlice(size_t begin, size_t end) const;

  /// Max absolute element difference; used by tests for approximate equality.
  StatusOr<double> MaxAbsDiff(const Matrix& other) const;

  std::string ToString(int precision = 4) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  AlignedVector<double> data_;
};

/// Reference textbook i-j-k matrix multiply (register-accumulated dot per
/// output element, no tiling). The oracle the blocked MultiplyInto kernel
/// is pinned against in tests and the baseline of the GEMM
/// micro-benchmark; not used on any hot path.
Status MultiplyReferenceInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Dot product; aborts on length mismatch (programming error).
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

}  // namespace midas

#endif  // MIDAS_LINALG_MATRIX_H_
