#include "linalg/simd.h"

#include <algorithm>
#include <atomic>

#include "linalg/simd_kernels.h"

namespace midas {
namespace simd {

// --- Scalar tier -----------------------------------------------------------
//
// These loops are the oracles: bit-identical to the seed kernels they
// replaced (same association, same zero skips), so a force-scalar run
// reproduces pre-SIMD results exactly.

namespace {

double DotScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotAccScalar(double acc, const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Tile side of the blocked scalar GEMM: 64×64 doubles = 32 KiB per operand
/// panel, sized so an A tile, the C rows it updates and the streaming B
/// panel coexist in L1/L2. (Moved here from matrix.cc with the kernel.)
constexpr size_t kGemmTile = 64;

void GemmAccScalar(const double* a, const double* b, double* c, size_t n,
                   size_t k, size_t m) {
  // Blocked i-k-j: for each (ii, kk) tile the B panel rows [kk, k_end) are
  // reused across every A row of the tile. k advances monotonically for a
  // fixed output element, so the accumulation order matches the naive loop.
  for (size_t ii = 0; ii < n; ii += kGemmTile) {
    const size_t i_end = std::min(ii + kGemmTile, n);
    for (size_t kk = 0; kk < k; kk += kGemmTile) {
      const size_t k_end = std::min(kk + kGemmTile, k);
      for (size_t i = ii; i < i_end; ++i) {
        const double* a_row = a + i * k;
        double* c_row = c + i * m;
        for (size_t kx = kk; kx < k_end; ++kx) {
          const double aik = a_row[kx];
          if (aik == 0.0) continue;
          const double* b_row = b + kx * m;
          for (size_t j = 0; j < m; ++j) c_row[j] += aik * b_row[j];
        }
      }
    }
  }
}

void GemmTransBAccScalar(const double* a, const double* bt, double* c,
                         size_t n, size_t k, size_t m) {
  // Both operands stream row-contiguously; the dot accumulates onto the
  // preloaded output element (the bias under accumulate), k ascending — the
  // same association as the scalar "intercept first" evaluation.
  for (size_t ii = 0; ii < n; ii += kGemmTile) {
    const size_t i_end = std::min(ii + kGemmTile, n);
    for (size_t jj = 0; jj < m; jj += kGemmTile) {
      const size_t j_end = std::min(jj + kGemmTile, m);
      for (size_t i = ii; i < i_end; ++i) {
        const double* a_row = a + i * k;
        double* c_row = c + i * m;
        for (size_t j = jj; j < j_end; ++j) {
          const double* b_row = bt + j * k;
          double acc = c_row[j];
          for (size_t kx = 0; kx < k; ++kx) acc += a_row[kx] * b_row[kx];
          c_row[j] = acc;
        }
      }
    }
  }
}

constexpr KernelTable kScalarTable = {
    SimdTier::kScalar, DotScalar,      DotAccScalar,
    AxpyScalar,        GemmAccScalar,  GemmTransBAccScalar,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

// --- Dispatch --------------------------------------------------------------

namespace {

/// The normal one-shot selection: environment pin, then the hardware probe.
const KernelTable* SelectTable() {
  if (ForceScalarRequestedByEnv()) return ScalarKernels();
  switch (DetectCpuSimdTier()) {
#if defined(MIDAS_SIMD_HAVE_AVX2)
    case SimdTier::kAvx2Fma:
      return Avx2Kernels();
#endif
#if defined(MIDAS_SIMD_HAVE_NEON)
    case SimdTier::kNeon:
      return NeonKernels();
#endif
    default:
      return ScalarKernels();
  }
}

/// Published table. Initialised lazily; racing initialisers all write the
/// same pointer, so the relaxed CAS-free publication is benign.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = SelectTable();
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

SimdTier ActiveTier() { return Active()->tier; }

bool Enabled() { return Active()->tier != SimdTier::kScalar; }

void SetForceScalar(bool pin) {
  g_active.store(pin ? ScalarKernels() : SelectTable(),
                 std::memory_order_release);
}

// --- Public kernel entry points -------------------------------------------

double Dot(const double* a, const double* b, size_t n) {
  return Active()->dot(a, b, n);
}

double DotAcc(double acc, const double* a, const double* b, size_t n) {
  return Active()->dot_acc(acc, a, b, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  Active()->axpy(alpha, x, y, n);
}

void GemmAcc(const double* a, const double* b, double* c, size_t n, size_t k,
             size_t m) {
  Active()->gemm_acc(a, b, c, n, k, m);
}

void GemmTransBAcc(const double* a, const double* bt, double* c, size_t n,
                   size_t k, size_t m) {
  Active()->gemm_tn_acc(a, bt, c, n, k, m);
}

}  // namespace simd
}  // namespace midas
