#ifndef MIDAS_LINALG_SIMD_H_
#define MIDAS_LINALG_SIMD_H_

#include <cstddef>

#include "common/cpu_features.h"

namespace midas {
namespace simd {

/// \brief Vectorized kernel layer behind the linalg/prediction hot paths.
///
/// Every kernel is dispatched once per process to the widest tier the host
/// supports (compile-time ISA gates × one CPUID probe, see
/// common/cpu_features.h) and falls back to portable scalar loops that are
/// bit-identical to the seed implementations. The vector tiers reassociate
/// floating-point accumulation (wider partial sums), so their results may
/// differ from the scalar oracle by rounding noise; the equivalence suites
/// pin them within 1e-12 relative error, and the MIDAS_FORCE_SCALAR knob
/// (environment variable, CMake option, or SetForceScalar below) restores
/// the bit-exact scalar behavior for reproducibility-sensitive runs.

/// The tier the process is currently dispatched to, after every override
/// knob (build pin, environment, SetForceScalar) is applied.
SimdTier ActiveTier();

/// True when a vector tier (anything other than kScalar) is active. Code
/// whose scalar form interleaves operations the kernels cannot reproduce
/// bit-exactly (e.g. Cholesky's running subtraction) branches on this and
/// keeps the original loop on the scalar side.
bool Enabled();

/// Pins (true) or unpins (false) the process to the scalar kernels at
/// runtime. Unpinning re-runs the normal selection, so the environment pin
/// still wins. Intended for tests and reproducibility harnesses; thread-safe
/// but not meant to be raced against in-flight kernels (flip it at
/// quiescent points).
void SetForceScalar(bool pin);

/// Σ a[i]·b[i], ascending i in the scalar tier. Vector tiers use four
/// partial sums. n == 0 yields 0.0.
double Dot(const double* a, const double* b, size_t n);

/// acc + Σ a[i]·b[i] with the sum seeded at acc (the "intercept first, terms
/// in order" association of the scalar predict paths).
double DotAcc(double acc, const double* a, const double* b, size_t n);

/// y[i] += alpha · x[i]. Callers keep the seed kernels' alpha == 0 skip on
/// their side so scalar and vector paths agree on when y is untouched.
void Axpy(double alpha, const double* x, double* y, size_t n);

/// C += A·B over row-major buffers: A is n×k, B is k×m, C is n×m, leading
/// dimensions equal the logical widths. The scalar tier is the seed
/// cache-blocked i-k-j loop (ascending-k accumulation, zero-A skip); vector
/// tiers run a register-tiled FMA microkernel with masked remainder
/// columns.
void GemmAcc(const double* a, const double* b, double* c, size_t n, size_t k,
             size_t m);

/// C(i, j) += Σ_k A(i, k)·Bt(j, k) — the B-transposed GEMM behind
/// MultiplyTransposedInto (A n×k, Bt m×k, C n×m, row-major). Seeds each
/// output from its current value, so bias-initialised accumulation matches
/// the scalar "intercept first" evaluation.
void GemmTransBAcc(const double* a, const double* bt, double* c, size_t n,
                   size_t k, size_t m);

}  // namespace simd
}  // namespace midas

#endif  // MIDAS_LINALG_SIMD_H_
