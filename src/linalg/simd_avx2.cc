// AVX2+FMA tier of the SIMD kernel layer. Every function carries a
// per-function target attribute instead of the translation unit being built
// with -mavx2, so the binary stays runnable on any x86-64 host — the
// dispatcher (simd.cc) only hands out this table after the CPUID probe
// confirms avx2+fma. Accumulation here is reassociated (4-wide lanes,
// multiple partial sums), which is exactly the rounding slack the 1e-12
// equivalence suites allow; bit-exact runs use the scalar tier.

#include "linalg/simd_kernels.h"

#if defined(MIDAS_SIMD_HAVE_AVX2)

#include <immintrin.h>

#define MIDAS_AVX2 __attribute__((target("avx2,fma")))

namespace midas {
namespace simd {
namespace {

/// Lane mask for a remainder of `rem` (0..4) doubles: the first rem lanes
/// all-ones, the rest zero. maskload yields 0.0 in masked lanes and
/// maskstore leaves them untouched, which is how every kernel handles
/// buffer tails without scalar cleanup loops.
MIDAS_AVX2 inline __m256i TailMask(size_t rem) {
  return _mm256_setr_epi64x(rem > 0 ? -1 : 0, rem > 1 ? -1 : 0,
                            rem > 2 ? -1 : 0, rem > 3 ? -1 : 0);
}

/// Horizontal sum of one 4-lane register.
MIDAS_AVX2 inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

MIDAS_AVX2 double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    acc1 = _mm256_fmadd_pd(_mm256_maskload_pd(a + i, mask),
                           _mm256_maskload_pd(b + i, mask), acc1);
  }
  return HorizontalSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                     _mm256_add_pd(acc2, acc3)));
}

MIDAS_AVX2 double DotAccAvx2(double acc, const double* a, const double* b,
                             size_t n) {
  return acc + DotAvx2(a, b, n);
}

MIDAS_AVX2 void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_pd(
        y + i, mask,
        _mm256_fmadd_pd(va, _mm256_maskload_pd(x + i, mask),
                        _mm256_maskload_pd(y + i, mask)));
  }
}

// --- Register-tiled GEMM ---------------------------------------------------
//
// The microkernel computes a ROWS×8 tile of C entirely in registers while
// streaming one 8-wide B panel: per k step, 2 B loads + ROWS broadcasts +
// 2·ROWS FMAs. With ROWS = 4 that is 8 accumulator registers, 2 panel
// registers and a broadcast — comfortably inside the 16 ymm registers.
// Remainder columns (m % 8) run the masked variant; remainder rows fall
// back to ROWS = 1.

template <int ROWS>
MIDAS_AVX2 inline void MicroTile8(const double* a_panel, size_t a_stride,
                                  const double* b_panel, size_t b_stride,
                                  double* c_tile, size_t c_stride,
                                  size_t kc) {
  __m256d acc[ROWS][2];
  for (int r = 0; r < ROWS; ++r) {
    acc[r][0] = _mm256_loadu_pd(c_tile + r * c_stride);
    acc[r][1] = _mm256_loadu_pd(c_tile + r * c_stride + 4);
  }
  const double* b_row = b_panel;
  for (size_t kx = 0; kx < kc; ++kx, b_row += b_stride) {
    const __m256d b0 = _mm256_loadu_pd(b_row);
    const __m256d b1 = _mm256_loadu_pd(b_row + 4);
    for (int r = 0; r < ROWS; ++r) {
      const __m256d av = _mm256_set1_pd(a_panel[r * a_stride + kx]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_pd(c_tile + r * c_stride, acc[r][0]);
    _mm256_storeu_pd(c_tile + r * c_stride + 4, acc[r][1]);
  }
}

/// Masked ROWS×mrem tile for the trailing 1..7 columns.
template <int ROWS>
MIDAS_AVX2 inline void MicroTileMasked(const double* a_panel, size_t a_stride,
                                       const double* b_panel, size_t b_stride,
                                       double* c_tile, size_t c_stride,
                                       size_t kc, size_t mrem) {
  const __m256i mask0 = TailMask(mrem < 4 ? mrem : 4);
  const __m256i mask1 = TailMask(mrem > 4 ? mrem - 4 : 0);
  __m256d acc[ROWS][2];
  for (int r = 0; r < ROWS; ++r) {
    acc[r][0] = _mm256_maskload_pd(c_tile + r * c_stride, mask0);
    acc[r][1] = _mm256_maskload_pd(c_tile + r * c_stride + 4, mask1);
  }
  const double* b_row = b_panel;
  for (size_t kx = 0; kx < kc; ++kx, b_row += b_stride) {
    const __m256d b0 = _mm256_maskload_pd(b_row, mask0);
    const __m256d b1 = _mm256_maskload_pd(b_row + 4, mask1);
    for (int r = 0; r < ROWS; ++r) {
      const __m256d av = _mm256_set1_pd(a_panel[r * a_stride + kx]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_maskstore_pd(c_tile + r * c_stride, mask0, acc[r][0]);
    _mm256_maskstore_pd(c_tile + r * c_stride + 4, mask1, acc[r][1]);
  }
}

/// k-panel depth: 256 k-steps keep an 8-wide B block (16 KiB) hot in L1
/// across the whole sweep of A row quads while amortising the C tile
/// load/store over 256 FMAs per element.
constexpr size_t kPanelK = 256;

MIDAS_AVX2 void GemmAccAvx2(const double* a, const double* b, double* c,
                            size_t n, size_t k, size_t m) {
  if (m < 8) {
    // Skinnier than one register panel (the serving GEMMs predict a
    // handful of cost metrics, so m is 2-4): every tile would run fully
    // masked and the mask overhead eats the FMA win. The scalar kernel is
    // faster here and bit-exact with the oracle by construction.
    ScalarKernels()->gemm_acc(a, b, c, n, k, m);
    return;
  }
  for (size_t kk = 0; kk < k; kk += kPanelK) {
    const size_t kc = k - kk < kPanelK ? k - kk : kPanelK;
    for (size_t j0 = 0; j0 < m; j0 += 8) {
      const double* b_panel = b + kk * m + j0;
      size_t i0 = 0;
      if (m - j0 >= 8) {
        for (; i0 + 4 <= n; i0 += 4) {
          MicroTile8<4>(a + i0 * k + kk, k, b_panel, m, c + i0 * m + j0, m,
                        kc);
        }
        for (; i0 < n; ++i0) {
          MicroTile8<1>(a + i0 * k + kk, k, b_panel, m, c + i0 * m + j0, m,
                        kc);
        }
      } else {
        const size_t mrem = m - j0;
        for (; i0 + 4 <= n; i0 += 4) {
          MicroTileMasked<4>(a + i0 * k + kk, k, b_panel, m,
                             c + i0 * m + j0, m, kc, mrem);
        }
        for (; i0 < n; ++i0) {
          MicroTileMasked<1>(a + i0 * k + kk, k, b_panel, m,
                             c + i0 * m + j0, m, kc, mrem);
        }
      }
    }
  }
}

// --- B-transposed GEMM -----------------------------------------------------
//
// C(i, j) += Σ_k A(i, k)·Bt(j, k): four Bt rows are dotted against one A
// row simultaneously (one A load feeds four FMAs), then the four lane-wise
// partial sums are transposed-reduced into a single 4-lane register and
// added onto C — one reduction per four outputs instead of one per output.

/// Reduces four 4-lane accumulators into one register holding their four
/// horizontal sums, in order.
MIDAS_AVX2 inline __m256d HorizontalSum4(__m256d v0, __m256d v1, __m256d v2,
                                         __m256d v3) {
  const __m256d h01 = _mm256_hadd_pd(v0, v1);  // [v0_01, v1_01, v0_23, v1_23]
  const __m256d h23 = _mm256_hadd_pd(v2, v3);  // [v2_01, v3_01, v2_23, v3_23]
  const __m256d cross = _mm256_permute2f128_pd(h01, h23, 0x21);
  const __m256d paired = _mm256_blend_pd(h01, h23, 0b1100);
  return _mm256_add_pd(cross, paired);  // [Σv0, Σv1, Σv2, Σv3]
}

MIDAS_AVX2 void GemmTransBAccAvx2(const double* a, const double* bt,
                                  double* c, size_t n, size_t k, size_t m) {
  if (k == 0) return;  // adding an all-zero reduction could flip a -0.0 in C
  const size_t ktail = k % 4;
  const __m256i kmask = TailMask(ktail);
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * k;
    double* c_row = c + i * m;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = bt + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      size_t kx = 0;
      for (; kx + 4 <= k; kx += 4) {
        const __m256d av = _mm256_loadu_pd(a_row + kx);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + kx), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + kx), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + kx), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + kx), acc3);
      }
      if (ktail != 0) {
        const __m256d av = _mm256_maskload_pd(a_row + kx, kmask);
        acc0 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b0 + kx, kmask), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b1 + kx, kmask), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b2 + kx, kmask), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_maskload_pd(b3 + kx, kmask), acc3);
      }
      _mm256_storeu_pd(c_row + j,
                       _mm256_add_pd(_mm256_loadu_pd(c_row + j),
                                     HorizontalSum4(acc0, acc1, acc2, acc3)));
    }
    for (; j < m; ++j) {
      c_row[j] = DotAccAvx2(c_row[j], a_row, bt + j * k, k);
    }
  }
}

constexpr KernelTable kAvx2Table = {
    SimdTier::kAvx2Fma, DotAvx2,        DotAccAvx2,
    AxpyAvx2,           GemmAccAvx2,    GemmTransBAccAvx2,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace simd
}  // namespace midas

#endif  // MIDAS_SIMD_HAVE_AVX2
