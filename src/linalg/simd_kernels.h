#ifndef MIDAS_LINALG_SIMD_KERNELS_H_
#define MIDAS_LINALG_SIMD_KERNELS_H_

#include <cstddef>

#include "common/cpu_features.h"

namespace midas {
namespace simd {

/// \brief Internal dispatch table: one function pointer per kernel, one
/// table per ISA tier. simd.cc owns selection; the per-ISA translation
/// units (simd_avx2.cc, simd_neon.cc) each export their table. Not part of
/// the public surface — include simd.h instead.
struct KernelTable {
  SimdTier tier;
  double (*dot)(const double* a, const double* b, size_t n);
  double (*dot_acc)(double acc, const double* a, const double* b, size_t n);
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  void (*gemm_acc)(const double* a, const double* b, double* c, size_t n,
                   size_t k, size_t m);
  void (*gemm_tn_acc)(const double* a, const double* bt, double* c, size_t n,
                      size_t k, size_t m);
};

/// The portable tier (always present; bit-identical to the seed loops).
const KernelTable* ScalarKernels();

#if defined(__x86_64__) && defined(__GNUC__) && !defined(MIDAS_FORCE_SCALAR)
#define MIDAS_SIMD_HAVE_AVX2 1
/// AVX2+FMA tier, compiled with per-function target attributes so the
/// binary stays runnable on any x86-64; only dispatched after the CPUID
/// probe confirms support.
const KernelTable* Avx2Kernels();
#endif

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(MIDAS_FORCE_SCALAR)
#define MIDAS_SIMD_HAVE_NEON 1
const KernelTable* NeonKernels();
#endif

}  // namespace simd
}  // namespace midas

#endif  // MIDAS_LINALG_SIMD_KERNELS_H_
