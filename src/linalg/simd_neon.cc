// NEON (aarch64 Advanced SIMD) tier of the kernel layer: 2 doubles per
// register. Advanced SIMD is architecturally mandatory on aarch64, so this
// translation unit compiles with the default flags and the dispatcher can
// always hand it out on arm builds. The microkernels are narrower than the
// AVX2 ones (2-wide panels, scalar tails) — arm hosts are a portability
// tier here, not the perf target the benches track.

#include "linalg/simd_kernels.h"

#if defined(MIDAS_SIMD_HAVE_NEON)

#include <arm_neon.h>

namespace midas {
namespace simd {
namespace {

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotAccNeon(double acc, const double* a, const double* b, size_t n) {
  return acc + DotNeon(a, b, n);
}

void AxpyNeon(double alpha, const double* x, double* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(y + i, vfmaq_n_f64(vld1q_f64(y + i), vld1q_f64(x + i), alpha));
    vst1q_f64(y + i + 2,
              vfmaq_n_f64(vld1q_f64(y + i + 2), vld1q_f64(x + i + 2), alpha));
  }
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vfmaq_n_f64(vld1q_f64(y + i), vld1q_f64(x + i), alpha));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Same blocking as the scalar kernel; the inner j sweep runs the fused
/// multiply-add 2-wide.
constexpr size_t kGemmTile = 64;

void GemmAccNeon(const double* a, const double* b, double* c, size_t n,
                 size_t k, size_t m) {
  for (size_t ii = 0; ii < n; ii += kGemmTile) {
    const size_t i_end = ii + kGemmTile < n ? ii + kGemmTile : n;
    for (size_t kk = 0; kk < k; kk += kGemmTile) {
      const size_t k_end = kk + kGemmTile < k ? kk + kGemmTile : k;
      for (size_t i = ii; i < i_end; ++i) {
        const double* a_row = a + i * k;
        double* c_row = c + i * m;
        for (size_t kx = kk; kx < k_end; ++kx) {
          const double aik = a_row[kx];
          if (aik == 0.0) continue;
          AxpyNeon(aik, b + kx * m, c_row, m);
        }
      }
    }
  }
}

void GemmTransBAccNeon(const double* a, const double* bt, double* c, size_t n,
                       size_t k, size_t m) {
  if (k == 0) return;
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * k;
    double* c_row = c + i * m;
    for (size_t j = 0; j < m; ++j) {
      c_row[j] = DotAccNeon(c_row[j], a_row, bt + j * k, k);
    }
  }
}

constexpr KernelTable kNeonTable = {
    SimdTier::kNeon, DotNeon,        DotAccNeon,
    AxpyNeon,        GemmAccNeon,    GemmTransBAccNeon,
};

}  // namespace

const KernelTable* NeonKernels() { return &kNeonTable; }

}  // namespace simd
}  // namespace midas

#endif  // MIDAS_SIMD_HAVE_NEON
