#include "midas/experiments.h"

#include <algorithm>
#include <memory>

#include "common/statistics.h"
#include "engine/simulator.h"
#include "ires/features.h"
#include "ires/scheduler.h"
#include "query/enumerator.h"
#include "regression/ols.h"
#include "tpch/queries.h"
#include "tpch/workload.h"

namespace midas {

void MreExperimentOptions::ApplyDefaults() {
  if (query_ids.empty()) query_ids = tpch::PaperQueryIds();
  if (estimators.empty()) {
    estimators = {
        EstimatorConfig::Bml(WindowPolicy::kLastN),
        EstimatorConfig::Bml(WindowPolicy::kLast2N),
        EstimatorConfig::Bml(WindowPolicy::kLast3N),
        EstimatorConfig::Bml(WindowPolicy::kAll),
        EstimatorConfig::DreamDefault(),
    };
  }
}

namespace {

/// Two-engine federation for the TPC-H experiments: Hive on an Amazon
/// site, PostgreSQL on a Microsoft site — "two tables in two different
/// databases" (§4.2).
Federation MakeExperimentFederation() {
  Federation fed;
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();

  SiteConfig hive_site;
  hive_site.name = "cloud-A";
  hive_site.provider = ProviderKind::kAmazon;
  hive_site.engines = {EngineKind::kHive};
  hive_site.node_type = catalog.Find("a1.xlarge").ValueOrDie();
  hive_site.max_nodes = 8;
  const SiteId a = fed.AddSite(hive_site).ValueOrDie();

  SiteConfig pg_site;
  pg_site.name = "cloud-B";
  pg_site.provider = ProviderKind::kMicrosoft;
  pg_site.engines = {EngineKind::kPostgres};
  pg_site.node_type = catalog.Find("B2S").ValueOrDie();
  pg_site.max_nodes = 8;
  const SiteId b = fed.AddSite(pg_site).ValueOrDie();

  NetworkLink wan;
  wan.bandwidth_mbps = 200.0;
  wan.latency_ms = 25.0;
  wan.egress_price_per_gib = 0.09;
  fed.network().SetLink(a, b, wan).CheckOK();
  wan.egress_price_per_gib = 0.087;
  fed.network().SetLink(b, a, wan).CheckOK();
  return fed;
}

// Places a paper query's two tables: probe-side table in PostgreSQL on
// cloud-B, the big build-side table (lineitem, or orders for Q13) in Hive
// on cloud-A.
Status PlaceQueryTables(int query_id, Federation* fed) {
  MIDAS_ASSIGN_OR_RETURN(auto tables, tpch::QueryTables(query_id));
  MIDAS_ASSIGN_OR_RETURN(SiteId a, fed->FindSiteByName("cloud-A"));
  MIDAS_ASSIGN_OR_RETURN(SiteId b, fed->FindSiteByName("cloud-B"));
  MIDAS_RETURN_IF_ERROR(
      fed->PlaceTable(tables.first, b, EngineKind::kPostgres));
  return fed->PlaceTable(tables.second, a, EngineKind::kHive);
}

}  // namespace

StatusOr<MreReport> RunMreExperiment(MreExperimentOptions options) {
  options.ApplyDefaults();
  if (options.eval_runs == 0) {
    return Status::InvalidArgument("eval_runs must be positive");
  }

  MreReport report;
  report.query_ids = options.query_ids;
  for (const EstimatorConfig& cfg : options.estimators) {
    report.estimator_names.push_back(EstimatorName(cfg));
  }

  size_t dream_index = options.estimators.size();
  for (size_t e = 0; e < options.estimators.size(); ++e) {
    if (options.estimators[e].kind == EstimatorKind::kDream) dream_index = e;
  }

  for (size_t qi = 0; qi < options.query_ids.size(); ++qi) {
    const int query_id = options.query_ids[qi];

    Federation federation = MakeExperimentFederation();
    MIDAS_RETURN_IF_ERROR(PlaceQueryTables(query_id, &federation));
    tpch::WorkloadOptions wl_opts;
    wl_opts.scale_factor = options.scale_factor;
    wl_opts.seed = options.seed + static_cast<uint64_t>(query_id);
    wl_opts.query_ids = {query_id};
    tpch::Workload workload(wl_opts);
    // The catalog must outlive simulator/enumerator uses below.
    const Catalog& catalog = workload.catalog();

    SimulatorOptions sim_opts;
    sim_opts.variance = options.variance;
    sim_opts.seed = options.seed + static_cast<uint64_t>(query_id) * 101;
    ExecutionSimulator simulator(&federation, &catalog, sim_opts);

    Modelling modelling(FeatureNames(federation), StandardMetricNames(),
                        options.seed + 7);
    Scheduler scheduler(&federation, &simulator, &modelling);
    if (report.base_window == 0) report.base_window = modelling.BaseWindow();

    // Bound Algorithm 1's window cap to a few base windows so an
    // unreachable R² requirement cannot drag the fit into expired history.
    for (EstimatorConfig& cfg : options.estimators) {
      if (cfg.kind == EstimatorKind::kDream && cfg.dream.m_max == 0 &&
          options.dream_m_max_windows > 0) {
        cfg.dream.m_max = options.dream_m_max_windows * modelling.BaseWindow();
      }
    }

    EnumeratorOptions enum_opts;
    enum_opts.node_counts = {1, 2, 4, 8};
    PlanEnumerator enumerator(&federation, &catalog, enum_opts);

    Rng rng(options.seed + static_cast<uint64_t>(query_id) * 977);
    const std::string scope = "tpch-q" + std::to_string(query_id);

    auto run_one = [&](bool evaluate,
                       std::vector<std::vector<double>>* preds_time,
                       std::vector<std::vector<double>>* preds_money,
                       std::vector<double>* actual_time,
                       std::vector<double>* actual_money,
                       RunningStats* window_stats) -> Status {
      MIDAS_ASSIGN_OR_RETURN(tpch::WorkloadItem item,
                             workload.NextForQuery(query_id));
      MIDAS_ASSIGN_OR_RETURN(std::vector<QueryPlan> plans,
                             enumerator.EnumeratePhysical(item.logical));
      const QueryPlan& plan = plans[rng.Index(plans.size())];
      if (evaluate) {
        MIDAS_ASSIGN_OR_RETURN(Vector x, ExtractFeatures(federation, plan));
        // The drift loop is the writer (feedback below publishes a new
        // epoch every run); this evaluation pass is a reader pinning ONE
        // snapshot so every estimator scores the same frozen state. The
        // fits are deterministic, so the numbers are bit-identical to the
        // live-history path.
        std::shared_ptr<const EstimatorSnapshot> snapshot =
            modelling.Snapshot();
        for (size_t e = 0; e < options.estimators.size(); ++e) {
          auto pred =
              modelling.Predict(*snapshot, scope, x, options.estimators[e]);
          if (pred.ok()) {
            (*preds_time)[e].push_back((*pred)[0]);
            (*preds_money)[e].push_back((*pred)[1]);
          } else {
            // Keep the grid aligned: an estimator that cannot predict at
            // this point contributes its worst case (prediction of zero).
            (*preds_time)[e].push_back(0.0);
            (*preds_money)[e].push_back(0.0);
          }
        }
        if (dream_index < options.estimators.size()) {
          auto diag = modelling.DreamDiagnostics(
              *snapshot, scope, options.estimators[dream_index].dream);
          if (diag.ok()) {
            window_stats->Add(static_cast<double>(diag->window_size));
          }
        }
      }
      MIDAS_ASSIGN_OR_RETURN(Measurement m,
                             scheduler.ExecuteAndRecord(scope, plan));
      if (evaluate) {
        actual_time->push_back(m.seconds);
        actual_money->push_back(m.dollars);
      }
      return Status::OK();
    };

    for (size_t w = 0; w < options.warmup_runs; ++w) {
      MIDAS_RETURN_IF_ERROR(
          run_one(false, nullptr, nullptr, nullptr, nullptr, nullptr));
    }
    std::vector<std::vector<double>> preds_time(options.estimators.size());
    std::vector<std::vector<double>> preds_money(options.estimators.size());
    std::vector<double> actual_time, actual_money;
    RunningStats window_stats;
    for (size_t r = 0; r < options.eval_runs; ++r) {
      MIDAS_RETURN_IF_ERROR(run_one(true, &preds_time, &preds_money,
                                    &actual_time, &actual_money,
                                    &window_stats));
    }

    std::vector<double> row_time, row_money;
    for (size_t e = 0; e < options.estimators.size(); ++e) {
      MIDAS_ASSIGN_OR_RETURN(double mre_t,
                             MeanRelativeError(preds_time[e], actual_time));
      MIDAS_ASSIGN_OR_RETURN(double mre_m,
                             MeanRelativeError(preds_money[e], actual_money));
      row_time.push_back(mre_t);
      row_money.push_back(mre_m);
    }
    report.time_mre.push_back(std::move(row_time));
    report.money_mre.push_back(std::move(row_money));
    report.mean_dream_window.push_back(
        window_stats.count() > 0 ? window_stats.mean() : 0.0);
  }
  return report;
}

StatusOr<std::vector<R2Row>> PaperTable2Rows() {
  // The literal dataset of Table 2 (cost, x1, x2).
  const std::vector<Vector> xs = {
      {0.4916, 0.2977}, {0.6313, 0.0482}, {0.9481, 0.8232},
      {0.4855, 2.7056}, {0.0125, 2.7268}, {0.9029, 2.6456},
      {0.7233, 3.0640}, {0.8749, 4.2847}, {0.3354, 2.1082},
      {0.8521, 4.8217}};
  const Vector costs = {20.640, 15.557, 20.971, 24.878, 23.274,
                        30.216, 29.978, 31.702, 20.860, 32.836};
  std::vector<R2Row> rows;
  for (size_t m = 4; m <= xs.size(); ++m) {
    std::vector<Vector> window(xs.begin(),
                               xs.begin() + static_cast<ptrdiff_t>(m));
    Vector y(costs.begin(), costs.begin() + static_cast<ptrdiff_t>(m));
    MIDAS_ASSIGN_OR_RETURN(OlsModel model, FitOls(window, y));
    rows.push_back({m, model.r_squared()});
  }
  return rows;
}

StatusOr<std::vector<R2Row>> SyntheticR2Sweep(size_t m_max,
                                              double noise_sigma,
                                              uint64_t seed) {
  if (m_max < 4) return Status::InvalidArgument("m_max must be >= 4");
  Rng rng(seed);
  std::vector<Vector> xs;
  Vector ys;
  for (size_t i = 0; i < m_max; ++i) {
    const double x1 = rng.Uniform();
    const double x2 = rng.Uniform(0.0, 5.0);
    xs.push_back({x1, x2});
    ys.push_back(12.0 + 6.0 * x1 + 3.2 * x2 +
                 rng.Gaussian(0.0, noise_sigma));
  }
  std::vector<R2Row> rows;
  for (size_t m = 4; m <= m_max; ++m) {
    std::vector<Vector> window(xs.begin(),
                               xs.begin() + static_cast<ptrdiff_t>(m));
    Vector y(ys.begin(), ys.begin() + static_cast<ptrdiff_t>(m));
    MIDAS_ASSIGN_OR_RETURN(OlsModel model, FitOls(window, y));
    rows.push_back({m, model.r_squared()});
  }
  return rows;
}

}  // namespace midas
