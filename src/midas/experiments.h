#ifndef MIDAS_MIDAS_EXPERIMENTS_H_
#define MIDAS_MIDAS_EXPERIMENTS_H_

#include <map>
#include <string>
#include <vector>

#include "engine/variance.h"
#include "ires/modelling.h"
#include "ires/moo_optimizer.h"

namespace midas {

/// \brief Configuration of the paper's estimation-accuracy experiment
/// (Tables 3 and 4): a stream of TPC-H query executions on a drifting
/// two-engine federation, with every estimator predicting each execution's
/// cost just before it happens.
struct MreExperimentOptions {
  /// 0.1 → Table 3 (100 MiB), 1.0 → Table 4 (1 GiB).
  double scale_factor = 0.1;
  /// TPC-H queries to evaluate (defaults to {12, 13, 14, 17}).
  std::vector<int> query_ids;
  /// Executions recorded before evaluation starts (history warm-up).
  size_t warmup_runs = 30;
  /// Evaluated executions per query.
  size_t eval_runs = 80;
  /// Estimators to compare; defaults to the paper's five columns
  /// (BML_N, BML_2N, BML_3N, BML, DREAM).
  std::vector<EstimatorConfig> estimators;
  /// M_max handed to Algorithm 1, as a multiple of the base window N
  /// (paper §4.3: the windows DREAM ends up using stay "around N").
  /// Applied to any DREAM estimator whose m_max is left at 0.
  size_t dream_m_max_windows = 2;
  /// Cloud variance (drift + noise) of the simulated environment.
  VarianceOptions variance;
  uint64_t seed = 2019;

  /// Fills query_ids / estimators with the paper's defaults when empty.
  void ApplyDefaults();
};

/// \brief Result grid: per (query, estimator) Mean Relative Error of the
/// execution-time predictions (Eq. 15), plus the monetary-cost MRE and
/// bookkeeping on DREAM's window sizes.
struct MreReport {
  std::vector<int> query_ids;
  std::vector<std::string> estimator_names;
  /// time_mre[q][e] — MRE of execution-time prediction.
  std::vector<std::vector<double>> time_mre;
  /// money_mre[q][e] — MRE of monetary-cost prediction.
  std::vector<std::vector<double>> money_mre;
  /// Mean DREAM window size observed per query (0 when DREAM not among the
  /// estimators).
  std::vector<double> mean_dream_window;
  /// The base window N = L + 2 used by the BML_kN estimators.
  size_t base_window = 0;
};

/// Runs the experiment. Deterministic given options.seed.
StatusOr<MreReport> RunMreExperiment(MreExperimentOptions options);

/// \brief One row of the paper's Table 2: window size M and the R² the MLR
/// attains on the first M points of a fixed 2-variable dataset.
struct R2Row {
  size_t m = 0;
  double r2 = 0.0;
};

/// Reproduces Table 2 on the paper's literal 10-observation dataset.
StatusOr<std::vector<R2Row>> PaperTable2Rows();

/// Reproduces the Table 2 *shape* on synthetic data: R² of an MLR fitted on
/// the newest m in [L+2, m_max] observations of a linear-plus-noise stream.
StatusOr<std::vector<R2Row>> SyntheticR2Sweep(size_t m_max, double noise_sigma,
                                              uint64_t seed);

}  // namespace midas

#endif  // MIDAS_MIDAS_EXPERIMENTS_H_
