#include "midas/medgen.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "midas/medical.h"

namespace midas {

namespace {

constexpr const char* kGivenNames[] = {
    "Alex", "Camille", "Dana", "Elio", "Farah", "Gwen", "Hugo", "Ines",
    "Jules", "Kim", "Lena", "Marek", "Nour", "Olga", "Pavel", "Quinn",
    "Rosa", "Sven", "Tara", "Yuki"};
constexpr const char* kFamilyNames[] = {
    "Almeida", "Bauer", "Costa", "Dubois", "Eriksen", "Fontaine", "Garcia",
    "Haddad", "Ivanov", "Jansen", "Kovacs", "Lindqvist", "Moreau", "Nakata",
    "Okafor", "Petit", "Rossi", "Schmidt", "Tanaka", "Veras"};
// Population blood-type frequencies (approximate ABO/Rh distribution).
constexpr const char* kBloodTypes[] = {"O+", "O+", "O+", "A+", "A+", "B+",
                                       "O-", "A-", "AB+", "B-"};
constexpr const char* kSexes[] = {"F", "F", "M", "M", "U"};
constexpr const char* kModalities[] = {"CT", "MR", "US", "XR", "CR", "PT",
                                       "NM", "MG"};
constexpr const char* kDepartments[] = {
    "cardiology", "oncology", "radiology", "neurology", "orthopedics",
    "pediatrics", "emergency", "internal-medicine"};
constexpr const char* kTestCodes[] = {"HGB", "WBC", "PLT", "NA",  "K",
                                      "CREA", "GLU", "CRP", "ALT", "TSH"};

std::string MakeDate(Rng* rng, int start_year, int span_years) {
  const int year = start_year + static_cast<int>(rng->Index(span_years));
  const int month = 1 + static_cast<int>(rng->Index(12));
  const int day = 1 + static_cast<int>(rng->Index(28));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

template <size_t N>
std::string Pick(Rng* rng, const char* const (&values)[N]) {
  return values[rng->Index(N)];
}

}  // namespace

MedGen::MedGen(double scale, uint64_t seed) : scale_(scale), seed_(seed) {
  auto catalog = MakeMedicalCatalog(scale > 0.0 ? scale : 1.0);
  if (catalog.ok()) catalog_ = std::move(catalog).ValueOrDie();
}

StatusOr<const TableDef*> MedGen::FindTable(const std::string& table) const {
  if (scale_ <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  return catalog_.Find(table);
}

StatusOr<uint64_t> MedGen::RowCount(const std::string& table) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  return def->row_count;
}

StatusOr<MedRow> MedGen::GenerateRow(const std::string& table,
                                     uint64_t index) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  if (index >= def->row_count) {
    return Status::OutOfRange("row index beyond table cardinality");
  }
  const uint64_t patients = catalog_.Find("Patient").ValueOrDie()->row_count;
  Rng rng(seed_ ^
          (std::hash<std::string>{}(table) + index * 0x9E3779B97F4A7C15ull));
  MedRow row;
  if (table == "Patient") {
    row.emplace_back(static_cast<int64_t>(index + 1));  // UID
    row.emplace_back(Pick(&rng, kGivenNames) + std::string(" ") +
                     Pick(&rng, kFamilyNames));
    row.emplace_back(Pick(&rng, kSexes));
    row.emplace_back(MakeDate(&rng, 1925, 100));
    row.emplace_back(Pick(&rng, kBloodTypes));
    row.emplace_back(static_cast<int64_t>(1 + rng.Index(25)));
  } else if (table == "GeneralInfo") {
    row.emplace_back(static_cast<int64_t>(1 + rng.Index(patients)));  // UID
    row.emplace_back("admission-" + std::to_string(index + 1));
    row.emplace_back(MakeDate(&rng, 2015, 10));
    row.emplace_back(Pick(&rng, kDepartments));
    // ICD-10-like synthetic code: letter + 2 digits + optional decimal.
    std::string code(1, static_cast<char>('A' + rng.Index(26)));
    code += std::to_string(10 + rng.Index(90));
    if (rng.Bernoulli(0.5)) code += "." + std::to_string(rng.Index(10));
    row.emplace_back(std::move(code));
  } else if (table == "ImagingStudy") {
    row.emplace_back(static_cast<int64_t>(index + 1));  // StudyUID
    row.emplace_back(static_cast<int64_t>(1 + rng.Index(patients)));
    row.emplace_back(Pick(&rng, kModalities));
    row.emplace_back(MakeDate(&rng, 2015, 10));
    row.emplace_back(static_cast<int64_t>(1 + rng.Index(12)));
    row.emplace_back(std::round(rng.Uniform(0.5, 2048.0) * 10.0) / 10.0);
  } else if (table == "LabResult") {
    row.emplace_back(static_cast<int64_t>(index + 1));  // ResultUID
    row.emplace_back(static_cast<int64_t>(1 + rng.Index(patients)));
    row.emplace_back(Pick(&rng, kTestCodes));
    row.emplace_back(std::round(rng.Uniform(0.1, 500.0) * 100.0) / 100.0);
    row.emplace_back(MakeDate(&rng, 2015, 10));
  } else {
    return Status::NotFound("unknown medical table: " + table);
  }
  return row;
}

Status MedGen::Generate(
    const std::string& table,
    const std::function<bool(uint64_t, const MedRow&)>& sink) const {
  MIDAS_ASSIGN_OR_RETURN(uint64_t rows, RowCount(table));
  for (uint64_t i = 0; i < rows; ++i) {
    MIDAS_ASSIGN_OR_RETURN(MedRow row, GenerateRow(table, i));
    if (!sink(i, row)) break;
  }
  return Status::OK();
}

std::string MedGen::FormatRow(const MedRow& row) {
  std::ostringstream os;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    if (const auto* v = std::get_if<int64_t>(&row[i])) {
      os << *v;
    } else if (const auto* d = std::get_if<double>(&row[i])) {
      os << *d;
    } else {
      os << std::get<std::string>(row[i]);
    }
  }
  return os.str();
}

Status MedGen::WriteCsv(const std::string& table,
                        const std::string& path) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  for (size_t i = 0; i < def->columns.size(); ++i) {
    if (i > 0) out << ',';
    out << def->columns[i].name;
  }
  out << '\n';
  MIDAS_RETURN_IF_ERROR(Generate(table, [&](uint64_t, const MedRow& row) {
    out << FormatRow(row) << '\n';
    return static_cast<bool>(out);
  }));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace midas
