#ifndef MIDAS_MIDAS_MEDGEN_H_
#define MIDAS_MIDAS_MEDGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "query/schema.h"

namespace midas {

/// A generated medical cell value.
using MedValue = std::variant<int64_t, double, std::string>;
using MedRow = std::vector<MedValue>;

/// \brief Deterministic synthetic-data generator for the medical schema
/// (MakeMedicalCatalog): Patient, GeneralInfo, ImagingStudy, LabResult.
///
/// Values are drawn from realistic clinical domains (sexes with a small
/// unknown fraction, blood types at population frequencies, DICOM
/// modalities, ICD-like diagnosis codes) while never resembling real
/// patient data — every field is synthesised from the seed. Row i of a
/// table can be generated without generating rows < i, so samples and
/// partitions are cheap.
class MedGen {
 public:
  explicit MedGen(double scale = 1.0, uint64_t seed = 307);

  double scale() const { return scale_; }

  StatusOr<uint64_t> RowCount(const std::string& table) const;

  /// Generates row `index` (0-based) of `table`. Foreign keys (UID) are
  /// uniform over the patient population.
  StatusOr<MedRow> GenerateRow(const std::string& table,
                               uint64_t index) const;

  /// Streams rows through `sink` until exhaustion or `sink` returns false.
  Status Generate(const std::string& table,
                  const std::function<bool(uint64_t, const MedRow&)>& sink)
      const;

  /// Writes `table` as CSV with a header row.
  Status WriteCsv(const std::string& table, const std::string& path) const;

  /// One row rendered as CSV (no newline).
  static std::string FormatRow(const MedRow& row);

 private:
  StatusOr<const TableDef*> FindTable(const std::string& table) const;

  double scale_;
  uint64_t seed_;
  Catalog catalog_;
};

}  // namespace midas

#endif  // MIDAS_MIDAS_MEDGEN_H_
