#include "midas/medical.h"

#include <cmath>

namespace midas {

namespace {
uint64_t Scaled(double base, double scale) {
  return static_cast<uint64_t>(std::llround(base * scale));
}
}  // namespace

StatusOr<Catalog> MakeMedicalCatalog(double scale) {
  if (scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  Catalog catalog;
  {
    TableDef t;
    t.name = "Patient";
    t.row_count = Scaled(1'000'000, scale);
    t.columns = {
        {"UID", ColumnType::kInt, 8.0, t.row_count},
        {"PatientName", ColumnType::kString, 24.0, t.row_count},
        {"PatientSex", ColumnType::kString, 1.0, 3},
        {"PatientBirthDate", ColumnType::kDate, 4.0, 36500},
        {"BloodType", ColumnType::kString, 3.0, 8},
        {"HomeNation", ColumnType::kInt, 4.0, 25},
    };
    MIDAS_RETURN_IF_ERROR(catalog.AddTable(t));
  }
  {
    TableDef t;
    t.name = "GeneralInfo";
    t.row_count = Scaled(4'000'000, scale);  // ~4 admissions per patient
    t.columns = {
        {"UID", ColumnType::kInt, 8.0, Scaled(1'000'000, scale)},
        {"GeneralNames", ColumnType::kString, 32.0, t.row_count},
        {"AdmissionDate", ColumnType::kDate, 4.0, 3650},
        {"Department", ColumnType::kString, 16.0, 40},
        {"Diagnosis", ColumnType::kString, 48.0, 14000},
    };
    MIDAS_RETURN_IF_ERROR(catalog.AddTable(t));
  }
  {
    TableDef t;
    t.name = "ImagingStudy";
    t.row_count = Scaled(2'500'000, scale);
    t.columns = {
        {"StudyUID", ColumnType::kInt, 8.0, t.row_count},
        {"UID", ColumnType::kInt, 8.0, Scaled(1'000'000, scale)},
        {"Modality", ColumnType::kString, 4.0, 8},
        {"StudyDate", ColumnType::kDate, 4.0, 3650},
        {"SeriesCount", ColumnType::kInt, 4.0, 40},
        {"StorageSizeMb", ColumnType::kDouble, 8.0, 100000},
    };
    MIDAS_RETURN_IF_ERROR(catalog.AddTable(t));
  }
  {
    TableDef t;
    t.name = "LabResult";
    t.row_count = Scaled(12'000'000, scale);
    t.columns = {
        {"ResultUID", ColumnType::kInt, 8.0, t.row_count},
        {"UID", ColumnType::kInt, 8.0, Scaled(1'000'000, scale)},
        {"TestCode", ColumnType::kString, 8.0, 900},
        {"Value", ColumnType::kDouble, 8.0, 1000000},
        {"CollectedAt", ColumnType::kDate, 4.0, 3650},
    };
    MIDAS_RETURN_IF_ERROR(catalog.AddTable(t));
  }
  return catalog;
}

StatusOr<QueryPlan> MakeExample21Query() {
  auto join = MakeJoin(MakeScan("Patient"), MakeScan("GeneralInfo"), "UID",
                       "UID");
  auto project = MakeProject(std::move(join),
                             {"PatientSex", "GeneralNames"});
  return QueryPlan(std::move(project));
}

StatusOr<QueryPlan> MakeImagingCohortQuery(double modality_selectivity) {
  if (modality_selectivity <= 0.0 || modality_selectivity > 1.0) {
    return Status::InvalidArgument("selectivity outside (0, 1]");
  }
  Predicate modality;
  modality.column = "Modality";
  modality.op = CompareOp::kEq;
  modality.selectivity_override = modality_selectivity;
  auto studies = MakeFilter(MakeScan("ImagingStudy"), {modality});
  auto join =
      MakeJoin(MakeScan("Patient"), std::move(studies), "UID", "UID");
  return QueryPlan(MakeAggregate(std::move(join), /*num_groups=*/8));
}

Status PlaceMedicalTables(Federation* federation) {
  if (federation == nullptr) {
    return Status::InvalidArgument("null federation");
  }
  MIDAS_ASSIGN_OR_RETURN(SiteId a, federation->FindSiteByName("cloud-A"));
  MIDAS_ASSIGN_OR_RETURN(SiteId b, federation->FindSiteByName("cloud-B"));
  MIDAS_RETURN_IF_ERROR(
      federation->PlaceTable("Patient", a, EngineKind::kHive));
  MIDAS_RETURN_IF_ERROR(
      federation->PlaceTable("GeneralInfo", b, EngineKind::kPostgres));
  MIDAS_RETURN_IF_ERROR(
      federation->PlaceTable("ImagingStudy", a, EngineKind::kHive));
  MIDAS_RETURN_IF_ERROR(
      federation->PlaceTable("LabResult", a, EngineKind::kHive));
  return Status::OK();
}

}  // namespace midas
