#ifndef MIDAS_MIDAS_MEDICAL_H_
#define MIDAS_MIDAS_MEDICAL_H_

#include "federation/federation.h"
#include "query/plan.h"
#include "query/schema.h"

namespace midas {

/// \brief Synthetic medical schema of the MIDAS motivating scenario:
/// hospital systems spread across cloud providers.
///
/// `scale` multiplies the baseline population of one million patients.
/// Tables: Patient (demographics), GeneralInfo (admission records, several
/// per patient), ImagingStudy (DICOM study metadata), LabResult.
StatusOr<Catalog> MakeMedicalCatalog(double scale = 1.0);

/// Example 2.1's query:
///   SELECT p.PatientSex, i.GeneralNames
///   FROM Patient p, GeneralInfo i
///   WHERE p.UID = i.UID
StatusOr<QueryPlan> MakeExample21Query();

/// A heavier analytical query joining Patient with ImagingStudy and
/// filtering by modality — used by the medical example application.
StatusOr<QueryPlan> MakeImagingCohortQuery(double modality_selectivity = 0.12);

/// Places the medical tables as in Example 2.1: Patient in Hive on
/// cloud-A, GeneralInfo in PostgreSQL on cloud-B; ImagingStudy/LabResult
/// follow the Patient placement. The federation must contain sites named
/// "cloud-A" (hosting Hive) and "cloud-B" (hosting PostgreSQL) — see
/// Federation::PaperFederation().
Status PlaceMedicalTables(Federation* federation);

}  // namespace midas

#endif  // MIDAS_MIDAS_MEDICAL_H_
