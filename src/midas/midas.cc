#include "midas/midas.h"

#include <functional>

#include "ires/features.h"
#include "query/enumerator.h"

namespace midas {

MidasSystem::MidasSystem(Federation federation, Catalog catalog,
                         MidasOptions options)
    : federation_(std::move(federation)),
      catalog_(std::move(catalog)),
      options_(std::move(options)),
      rng_(options_.seed) {
  modelling_ = std::make_unique<Modelling>(
      FeatureNames(federation_), StandardMetricNames(), options_.seed + 7);
  SimulatorOptions sim_opts = options_.simulator;
  sim_opts.seed = options_.seed;
  simulator_ = std::make_unique<ExecutionSimulator>(&federation_, &catalog_,
                                                    sim_opts);
  scheduler_ = std::make_unique<Scheduler>(&federation_, simulator_.get(),
                                           modelling_.get());
  optimizer_ = std::make_unique<MultiObjectiveOptimizer>(
      &federation_, &catalog_, options_.moqp);
  // Long-lived-service hygiene: each published feedback epoch immediately
  // evicts prediction-cache entries keyed to superseded epochs, so the
  // cache footprint tracks one epoch's working set no matter how long the
  // process serves (no-op unless moqp.cache_predictions is on).
  modelling_->publisher().AddPublishListener(
      [optimizer = optimizer_.get()](uint64_t epoch) {
        optimizer->OnSnapshotPublished(epoch);
      });
}

Status MidasSystem::Bootstrap(const std::string& scope,
                              const QueryPlan& logical, size_t runs) {
  PlanEnumerator enumerator(&federation_, &catalog_,
                            options_.moqp.enumerator);
  MIDAS_ASSIGN_OR_RETURN(std::vector<QueryPlan> plans,
                         enumerator.EnumeratePhysical(logical));
  for (size_t i = 0; i < runs; ++i) {
    const QueryPlan& pick = plans[rng_.Index(plans.size())];
    MIDAS_RETURN_IF_ERROR(
        scheduler_->ExecuteAndRecord(scope, pick).status());
  }
  return Status::OK();
}

StatusOr<Vector> MidasSystem::PredictPlanCosts(const std::string& scope,
                                               const QueryPlan& plan) const {
  MIDAS_ASSIGN_OR_RETURN(Vector features, ExtractFeatures(federation_, plan));
  return modelling_->Predict(scope, features, options_.estimator);
}

StatusOr<Vector> MidasSystem::PredictPlanCosts(
    const EstimatorSnapshot& snapshot, const std::string& scope,
    const QueryPlan& plan) const {
  MIDAS_ASSIGN_OR_RETURN(Vector features, ExtractFeatures(federation_, plan));
  return modelling_->Predict(snapshot, scope, features, options_.estimator);
}

StatusOr<QueryOutcome> MidasSystem::OptimizeQuery(
    const std::shared_ptr<const EstimatorSnapshot>& snapshot,
    const QueryRequest& request) const {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("OptimizeQuery needs a pinned snapshot");
  }
  // Prediction-cache namespace: costs are a function of (features, epoch)
  // only WITHIN one history scope — concurrent tenants pinned to the same
  // epoch must not read each other's cached estimates.
  const uint64_t cache_namespace = std::hash<std::string>{}(request.scope);
  QueryOutcome outcome;
  if (options_.moqp.shards != 1) {
    // Sharded streaming: disjoint slices of the plan space run whole
    // enumerate→cost→fold pipelines concurrently, costing SoA feature
    // batches against the pinned snapshot. Equivalent to the serial path
    // below at a fraction of the wall clock on multi-core hosts:
    // bit-identical when the scalar kernel tier is pinned
    // (MIDAS_FORCE_SCALAR), within the SIMD layer's 1e-12 relative drift
    // budget otherwise (GEMM tiles vs per-row dots reassociate the sums).
    MultiObjectiveOptimizer::BatchCostPredictor batch_predictor =
        [this, &request, &snapshot](const Matrix& features,
                                    Matrix* costs) -> Status {
      MIDAS_ASSIGN_OR_RETURN(
          *costs, modelling_->PredictBatch(*snapshot, request.scope, features,
                                           options_.estimator));
      return Status::OK();
    };
    MIDAS_ASSIGN_OR_RETURN(
        outcome.moqp,
        optimizer_->OptimizeStreaming(request.logical, batch_predictor,
                                      request.policy, snapshot->epoch(),
                                      cache_namespace));
  } else {
    auto predictor = [this, &request, &snapshot](const QueryPlan& plan) {
      return PredictPlanCosts(*snapshot, request.scope, plan);
    };
    MIDAS_ASSIGN_OR_RETURN(
        outcome.moqp,
        optimizer_->Optimize(request.logical, predictor, request.policy,
                             snapshot->epoch(), cache_namespace));
  }
  outcome.predicted = outcome.moqp.chosen_costs();
  outcome.estimator = EstimatorName(options_.estimator);
  return outcome;
}

StatusOr<QueryOutcome> MidasSystem::RunQuery(const std::string& scope,
                                             const QueryPlan& logical,
                                             const QueryPolicy& policy) {
  // Pin one estimator snapshot for the whole optimization: every candidate
  // cost comes from the same epoch, and the cache (if enabled) is keyed by
  // it, so feedback recorded concurrently can never skew this query's
  // Pareto front.
  QueryRequest request{scope, logical, policy};
  MIDAS_ASSIGN_OR_RETURN(
      QueryOutcome outcome,
      OptimizeQuery(modelling_->Snapshot(), request));
  MIDAS_ASSIGN_OR_RETURN(
      outcome.actual,
      scheduler_->ExecuteAndRecord(scope, outcome.moqp.chosen_plan()));
  return outcome;
}

}  // namespace midas
