#ifndef MIDAS_MIDAS_MIDAS_H_
#define MIDAS_MIDAS_MIDAS_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "engine/simulator.h"
#include "federation/federation.h"
#include "ires/modelling.h"
#include "ires/moo_optimizer.h"
#include "ires/scheduler.h"
#include "query/schema.h"

namespace midas {

/// \brief Top-level configuration of a MIDAS deployment.
struct MidasOptions {
  /// MOQP search strategy and enumerator knobs.
  MoqpOptions moqp;
  /// Cost estimator used for plan cost prediction.
  EstimatorConfig estimator = EstimatorConfig::DreamDefault();
  /// Engine simulator (variance model, determinism).
  SimulatorOptions simulator;
  uint64_t seed = 2019;
};

/// \brief One optimization request as the Interface receives it: the
/// history scope it predicts under, the logical plan to optimize and the
/// user policy Algorithm 2 selects with. The unit of work RunQuery and
/// the serving layer's QueryService both consume.
struct QueryRequest {
  std::string scope;
  QueryPlan logical;
  QueryPolicy policy;
};

/// \brief Everything one query's pipeline produced.
struct QueryOutcome {
  /// The Pareto set and the chosen plan.
  MoqpResult moqp;
  /// Cost vector the estimator predicted for the chosen plan.
  Vector predicted;
  /// What actually happened when the plan ran (zero-initialised until the
  /// plan is executed — OptimizeQuery alone never runs anything).
  Measurement actual;
  /// Which estimator produced `predicted` ("DREAM", "BML_N", ...).
  std::string estimator;
};

/// \brief MIDAS — the medical data management system of Figure 1, wiring
/// together the cloud federation, the IReS modules (Modelling with DREAM,
/// Multi-Objective Optimizer, Scheduler) and the execution engines.
///
/// Lifecycle per query: Interface receives a logical plan and user policy →
/// Modelling predicts the multi-metric cost of every equivalent QEP (DREAM
/// by default) → Multi-Objective Optimizer computes the Pareto plan set and
/// BestInPareto picks the final QEP → the Scheduler executes it on the
/// engines and the measurement feeds back into the Modelling history.
class MidasSystem {
 public:
  MidasSystem(Federation federation, Catalog catalog,
              MidasOptions options = MidasOptions());

  MidasSystem(const MidasSystem&) = delete;
  MidasSystem& operator=(const MidasSystem&) = delete;

  const Federation& federation() const { return federation_; }
  const Catalog& catalog() const { return catalog_; }
  Modelling& modelling() { return *modelling_; }
  ExecutionSimulator& simulator() { return *simulator_; }
  const MidasOptions& options() const { return options_; }

  /// Seeds the Modelling history for `scope` by executing `runs` randomly
  /// chosen physical variants of `logical` (monitoring-mode warm-up).
  Status Bootstrap(const std::string& scope, const QueryPlan& logical,
                   size_t runs);

  /// RunQuery's result type, at namespace scope since the serving layer
  /// produces the same outcomes.
  using QueryOutcome = midas::QueryOutcome;

  /// \brief The read-only half of RunQuery: enumerate → cost → Pareto →
  /// Algorithm 2 for `request`, predicting every candidate against the
  /// pinned `snapshot` (whose epoch lands in MoqpResult::snapshot_epoch).
  /// Fills moqp/predicted/estimator; `actual` stays zero — nothing
  /// executes and no feedback is recorded.
  ///
  /// Const and safe to call concurrently from many threads against the
  /// same or different snapshots — the concurrency point the QueryService
  /// executor slots fan out over. (The DREAM default and the deterministic
  /// BML selector are both pure functions of the snapshot's frozen
  /// windows; the shared prediction cache is epoch-keyed and
  /// lock-striped.)
  StatusOr<QueryOutcome> OptimizeQuery(
      const std::shared_ptr<const EstimatorSnapshot>& snapshot,
      const QueryRequest& request) const;

  /// Full pipeline for one query. The whole optimization predicts against
  /// ONE pinned estimator snapshot (its epoch is reported in
  /// MoqpResult::snapshot_epoch), so every candidate is costed from the
  /// same (features, model, window) state even while feedback from other
  /// queries streams in; the measurement is then recorded back into the
  /// scope's history (adaptive feedback), publishing the next epoch.
  /// With options.moqp.shards != 1 the optimization runs the sharded
  /// streaming pipeline instead — disjoint plan-space shards costing SoA
  /// batches concurrently against the same pinned snapshot — with a
  /// bit-identical outcome (per-shard metrics in
  /// MoqpResult::shard_stats).
  StatusOr<QueryOutcome> RunQuery(const std::string& scope,
                                  const QueryPlan& logical,
                                  const QueryPolicy& policy);

  /// The IReS execution layer (simulated engines + feedback recording).
  /// Exposed for serving-layer clients that split optimization from
  /// execution; Scheduler methods mutate the simulator clock and variance
  /// state, so concurrent callers must serialize their executions (the
  /// QueryService feedback path does).
  Scheduler& scheduler() { return *scheduler_; }

  /// Predicts plan costs for `scope` with the configured estimator —
  /// exposed for experiments that bypass execution. Reads the live
  /// history (single-threaded convenience path).
  StatusOr<Vector> PredictPlanCosts(const std::string& scope,
                                    const QueryPlan& plan) const;

  /// Snapshot-pinned variant: predicts against `snapshot` regardless of
  /// feedback recorded after it was acquired.
  StatusOr<Vector> PredictPlanCosts(const EstimatorSnapshot& snapshot,
                                    const std::string& scope,
                                    const QueryPlan& plan) const;

 private:
  Federation federation_;
  Catalog catalog_;
  MidasOptions options_;
  std::unique_ptr<Modelling> modelling_;
  std::unique_ptr<ExecutionSimulator> simulator_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<MultiObjectiveOptimizer> optimizer_;
  Rng rng_;
};

}  // namespace midas

#endif  // MIDAS_MIDAS_MIDAS_H_
