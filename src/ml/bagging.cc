#include "ml/bagging.h"

#include <algorithm>

namespace midas {

BaggingLearner::BaggingLearner(BaggingOptions options) : options_(options) {}

Status BaggingLearner::Fit(const std::vector<Vector>& features,
                           const Vector& targets) {
  MIDAS_RETURN_IF_ERROR(
      ValidateTrainingData(features, targets, MinTrainingSize()));
  if (options_.num_estimators == 0) {
    return Status::InvalidArgument("bagging needs at least one estimator");
  }
  if (options_.sample_fraction <= 0.0 || options_.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  trees_.clear();
  trees_.reserve(options_.num_estimators);
  Rng rng(options_.seed);
  const size_t n = features.size();
  const size_t sample_size = std::max<size_t>(
      2, static_cast<size_t>(options_.sample_fraction *
                             static_cast<double>(n)));
  for (size_t t = 0; t < options_.num_estimators; ++t) {
    std::vector<Vector> xs;
    Vector ys;
    xs.reserve(sample_size);
    ys.reserve(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      const size_t pick = rng.Index(n);
      xs.push_back(features[pick]);
      ys.push_back(targets[pick]);
    }
    RegressionTree tree(options_.tree);
    MIDAS_RETURN_IF_ERROR(tree.Fit(xs, ys));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> BaggingLearner::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("bagging is not fitted");
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) {
    MIDAS_ASSIGN_OR_RETURN(double y, tree.Predict(x));
    sum += y;
  }
  return sum / static_cast<double>(trees_.size());
}

std::unique_ptr<Learner> BaggingLearner::Clone() const {
  return std::make_unique<BaggingLearner>(*this);
}

}  // namespace midas
