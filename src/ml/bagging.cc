#include "ml/bagging.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace midas {

BaggingLearner::BaggingLearner(BaggingOptions options) : options_(options) {}

Status BaggingLearner::Fit(const std::vector<Vector>& features,
                           const Vector& targets) {
  MIDAS_RETURN_IF_ERROR(
      ValidateTrainingData(features, targets, MinTrainingSize()));
  if (options_.num_estimators == 0) {
    return Status::InvalidArgument("bagging needs at least one estimator");
  }
  if (options_.sample_fraction <= 0.0 || options_.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  const size_t n = features.size();
  const size_t sample_size = std::max<size_t>(
      2, static_cast<size_t>(options_.sample_fraction *
                             static_cast<double>(n)));
  // Each replicate bootstraps from its own RNG stream and fits into its
  // own slot, so ensemble members can train concurrently and the fitted
  // ensemble does not depend on the thread count.
  trees_.assign(options_.num_estimators, RegressionTree(options_.tree));
  ParallelForOptions parallel;
  parallel.threads = options_.threads;
  const Status st = ParallelFor(
      options_.num_estimators,
      [&](size_t t) {
        Rng rng(MixSeed(options_.seed, t));
        std::vector<Vector> xs;
        Vector ys;
        xs.reserve(sample_size);
        ys.reserve(sample_size);
        for (size_t i = 0; i < sample_size; ++i) {
          const size_t pick = rng.Index(n);
          xs.push_back(features[pick]);
          ys.push_back(targets[pick]);
        }
        return trees_[t].Fit(xs, ys);
      },
      parallel);
  if (!st.ok()) {
    trees_.clear();
    return st;
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> BaggingLearner::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("bagging is not fitted");
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) {
    MIDAS_ASSIGN_OR_RETURN(double y, tree.Predict(x));
    sum += y;
  }
  return sum / static_cast<double>(trees_.size());
}

Status BaggingLearner::PredictBatch(const Matrix& X, Vector* out,
                                    PredictWorkspace* workspace) const {
  if (!fitted_) return Status::FailedPrecondition("bagging is not fitted");
  // Per-replicate outputs live in the workspace so repeated batches reuse
  // the replicate buffers instead of reallocating trees_.size() vectors.
  std::vector<Vector>& per_tree = workspace->columns;
  per_tree.resize(trees_.size());
  ParallelForOptions parallel;
  parallel.threads = options_.threads;
  MIDAS_RETURN_IF_ERROR(ParallelFor(
      trees_.size(),
      [&](size_t t) { return trees_[t].PredictBatch(X, &per_tree[t]); },
      parallel));
  out->assign(X.rows(), 0.0);
  const double count = static_cast<double>(trees_.size());
  for (const Vector& replicate : per_tree) {
    for (size_t r = 0; r < replicate.size(); ++r) (*out)[r] += replicate[r];
  }
  for (double& y : *out) y /= count;
  return Status::OK();
}

std::unique_ptr<Learner> BaggingLearner::Clone() const {
  return std::make_unique<BaggingLearner>(*this);
}

}  // namespace midas
