#ifndef MIDAS_ML_BAGGING_H_
#define MIDAS_ML_BAGGING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "ml/learner.h"
#include "ml/regression_tree.h"

namespace midas {

struct BaggingOptions {
  /// Ensemble size (Breiman 1996 uses 25-50 replicates; WEKA defaults to 10).
  size_t num_estimators = 10;
  /// Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 1.0;
  uint64_t seed = 7;
  /// Concurrent chunks for fitting the ensemble members: 1 = serial
  /// (default), 0 = the process-wide default parallelism. Every replicate
  /// resamples from its own RNG stream split deterministically from
  /// `seed`, so the fitted ensemble is identical at any thread count.
  size_t threads = 1;
  RegressionTreeOptions tree;
};

/// \brief Bagging predictor (Breiman 1996): an ensemble of regression trees,
/// each fitted on a bootstrap resample; predictions are averaged. One of the
/// IReS Modelling learners the paper's BML baseline selects from.
class BaggingLearner final : public Learner {
 public:
  explicit BaggingLearner(BaggingOptions options = BaggingOptions());

  std::string name() const override { return "bagging"; }

  Status Fit(const std::vector<Vector>& features,
             const Vector& targets) override;

  StatusOr<double> Predict(const Vector& x) const override;

  /// Batched Predict, parallel over *replicates* (options.threads): each
  /// tree traverses the whole batch into its own buffer, and the buffers
  /// are averaged in tree order — the same summation order as the scalar
  /// path, so batch == scalar bit-for-bit at any thread count.
  using Learner::PredictBatch;
  Status PredictBatch(const Matrix& X, Vector* out,
                      PredictWorkspace* workspace) const override;

  std::unique_ptr<Learner> Clone() const override;

  size_t MinTrainingSize() const override { return 3; }

  size_t num_fitted_estimators() const { return trees_.size(); }

 private:
  BaggingOptions options_;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
};

}  // namespace midas

#endif  // MIDAS_ML_BAGGING_H_
