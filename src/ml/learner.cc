#include "ml/learner.h"

namespace midas {

Status Learner::PredictBatch(const Matrix& X, Vector* out,
                             PredictWorkspace* /*workspace*/) const {
  out->resize(X.rows());
  for (size_t r = 0; r < X.rows(); ++r) {
    MIDAS_ASSIGN_OR_RETURN((*out)[r], Predict(X.Row(r)));
  }
  return Status::OK();
}

Status ValidateTrainingData(const std::vector<Vector>& features,
                            const Vector& targets, size_t min_size) {
  if (features.size() != targets.size()) {
    return Status::InvalidArgument("features/targets size mismatch");
  }
  if (features.size() < min_size) {
    return Status::InvalidArgument(
        "training set smaller than the learner's minimum (" +
        std::to_string(min_size) + ")");
  }
  const size_t arity = features[0].size();
  if (arity == 0) {
    return Status::InvalidArgument("zero-arity feature rows");
  }
  for (const Vector& row : features) {
    if (row.size() != arity) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }
  return Status::OK();
}

}  // namespace midas
