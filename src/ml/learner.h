#ifndef MIDAS_ML_LEARNER_H_
#define MIDAS_ML_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// \brief Caller-owned scratch space for PredictBatch. Learners stash
/// their per-batch temporaries here (normalised design matrix, hidden
/// pre-activations, per-replicate outputs) so a serving loop that predicts
/// thousands of batches reuses the same buffers instead of reallocating
/// them on every call. A default-constructed workspace is always valid;
/// every call overwrites whatever a previous call (possibly to a different
/// learner) left behind.
struct PredictWorkspace {
  Matrix a;                     ///< primary matrix scratch
  Matrix b;                     ///< secondary matrix scratch
  std::vector<Vector> columns;  ///< per-replicate / per-metric scratch
};

/// \brief Supervised single-output regressor interface, mirroring the role
/// of WEKA learners inside the IReS Modelling module.
///
/// A learner is fitted on (feature row, target) pairs and then queried for
/// point predictions. Implementations must be deterministic given the same
/// construction-time seed.
class Learner {
 public:
  virtual ~Learner() = default;

  /// Human-readable algorithm name ("least_squares", "bagging", "mlp").
  virtual std::string name() const = 0;

  /// Fits the model. Implementations reset any previous fit.
  virtual Status Fit(const std::vector<Vector>& features,
                     const Vector& targets) = 0;

  /// Predicts the target for one feature row. Fails when not fitted or on
  /// arity mismatch.
  virtual StatusOr<double> Predict(const Vector& x) const = 0;

  /// Predicts the target of every row of X into *out (resized to
  /// X.rows()). Fails when not fitted or when X.cols() mismatches the
  /// fitted arity, exactly like the per-row path. The base implementation
  /// loops Predict row by row; learners on the MOQP hot path override it
  /// with kernels dispatched through the SIMD layer (linalg/simd.h). The
  /// batch==scalar equivalence suites pin the results bit-for-bit when
  /// the scalar kernel tier is active and to <= 1e-12 relative error
  /// under a vector tier. `workspace` holds the learner's batch
  /// temporaries across calls; it is never read, only overwritten.
  virtual Status PredictBatch(const Matrix& X, Vector* out,
                              PredictWorkspace* workspace) const;

  /// Convenience overload with a throwaway workspace (one-off callers and
  /// tests; steady-state serving loops should own a workspace instead).
  Status PredictBatch(const Matrix& X, Vector* out) const {
    PredictWorkspace workspace;
    return PredictBatch(X, out, &workspace);
  }

  /// Deep copy (so the model selector can keep fitted snapshots).
  virtual std::unique_ptr<Learner> Clone() const = 0;

  /// Smallest training-set size the learner accepts.
  virtual size_t MinTrainingSize() const { return 2; }
};

/// Validates the common preconditions shared by Fit implementations: equal
/// sizes, non-empty, rectangular features.
Status ValidateTrainingData(const std::vector<Vector>& features,
                            const Vector& targets, size_t min_size);

}  // namespace midas

#endif  // MIDAS_ML_LEARNER_H_
