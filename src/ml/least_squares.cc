#include "ml/least_squares.h"

namespace midas {

Status LeastSquaresLearner::Fit(const std::vector<Vector>& features,
                                const Vector& targets) {
  MIDAS_RETURN_IF_ERROR(ValidateTrainingData(features, targets, 2));
  const size_t l = features[0].size();
  if (features.size() < l + 2) {
    // FitOls enforces the statistical minimum; surface a clearer message.
    return Status::InvalidArgument(
        "least squares needs at least L + 2 observations");
  }
  MIDAS_ASSIGN_OR_RETURN(model_, FitOls(features, targets, options_));
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> LeastSquaresLearner::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("learner is not fitted");
  return model_.Predict(x);
}

Status LeastSquaresLearner::PredictBatch(const Matrix& X, Vector* out,
                                         PredictWorkspace* /*workspace*/) const {
  if (!fitted_) return Status::FailedPrecondition("learner is not fitted");
  return model_.PredictBatch(X, out);
}

}  // namespace midas
