#ifndef MIDAS_ML_LEAST_SQUARES_H_
#define MIDAS_ML_LEAST_SQUARES_H_

#include "ml/learner.h"
#include "regression/ols.h"

namespace midas {

/// \brief Linear least-squares learner — the "Least squared regression"
/// member of the IReS Modelling zoo. Thin Learner adapter over FitOls.
class LeastSquaresLearner final : public Learner {
 public:
  explicit LeastSquaresLearner(OlsOptions options = OlsOptions())
      : options_(options) {}

  std::string name() const override { return "least_squares"; }

  Status Fit(const std::vector<Vector>& features,
             const Vector& targets) override;

  StatusOr<double> Predict(const Vector& x) const override;

  /// One matrix-vector product over the whole batch (OlsModel::PredictBatch).
  using Learner::PredictBatch;
  Status PredictBatch(const Matrix& X, Vector* out,
                      PredictWorkspace* workspace) const override;

  std::unique_ptr<Learner> Clone() const override {
    return std::make_unique<LeastSquaresLearner>(*this);
  }

  size_t MinTrainingSize() const override { return 3; }

  /// Fitted statistics (valid after a successful Fit).
  const OlsModel& model() const { return model_; }

 private:
  OlsOptions options_;
  OlsModel model_;
  bool fitted_ = false;
};

}  // namespace midas

#endif  // MIDAS_ML_LEAST_SQUARES_H_
