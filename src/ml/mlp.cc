#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

namespace midas {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

MlpLearner::MlpLearner(MlpOptions options) : options_(options) {}

Vector MlpLearner::Normalize(const Vector& x) const {
  Vector out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double range = feat_max_[i] - feat_min_[i];
    out[i] = range > 0.0 ? (x[i] - feat_min_[i]) / range : 0.0;
  }
  return out;
}

Status MlpLearner::Fit(const std::vector<Vector>& features,
                       const Vector& targets) {
  MIDAS_RETURN_IF_ERROR(
      ValidateTrainingData(features, targets, MinTrainingSize()));
  if (options_.hidden_units == 0) {
    return Status::InvalidArgument("mlp needs at least one hidden unit");
  }
  arity_ = features[0].size();
  const size_t n = features.size();
  const size_t h = options_.hidden_units;

  // Capture normalisation ranges.
  feat_min_.assign(arity_, 0.0);
  feat_max_.assign(arity_, 0.0);
  for (size_t f = 0; f < arity_; ++f) {
    feat_min_[f] = feat_max_[f] = features[0][f];
    for (const Vector& row : features) {
      feat_min_[f] = std::min(feat_min_[f], row[f]);
      feat_max_[f] = std::max(feat_max_[f], row[f]);
    }
  }
  target_min_ = *std::min_element(targets.begin(), targets.end());
  target_max_ = *std::max_element(targets.begin(), targets.end());
  const double t_range =
      target_max_ > target_min_ ? target_max_ - target_min_ : 1.0;

  std::vector<Vector> xs(n);
  Vector ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = Normalize(features[i]);
    ys[i] = (targets[i] - target_min_) / t_range;
  }

  Rng rng(options_.seed);
  auto init_weight = [&]() { return rng.Uniform(-0.5, 0.5); };
  w_hidden_.assign(h, Vector(arity_ + 1, 0.0));
  for (Vector& w : w_hidden_) {
    for (double& v : w) v = init_weight();
  }
  w_out_.assign(h + 1, 0.0);
  for (double& v : w_out_) v = init_weight();

  // Momentum buffers.
  std::vector<Vector> m_hidden(h, Vector(arity_ + 1, 0.0));
  Vector m_out(h + 1, 0.0);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  Vector hidden(h), delta_hidden(h);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const Vector& x = xs[idx];
      // Forward pass.
      for (size_t j = 0; j < h; ++j) {
        double z = w_hidden_[j][arity_];  // bias
        for (size_t f = 0; f < arity_; ++f) z += w_hidden_[j][f] * x[f];
        hidden[j] = Sigmoid(z);
      }
      double out = w_out_[h];  // bias
      for (size_t j = 0; j < h; ++j) out += w_out_[j] * hidden[j];
      // Backward pass (squared error).
      const double err = out - ys[idx];
      for (size_t j = 0; j < h; ++j) {
        delta_hidden[j] = err * w_out_[j] * hidden[j] * (1.0 - hidden[j]);
      }
      const double lr = options_.learning_rate;
      const double mom = options_.momentum;
      for (size_t j = 0; j < h; ++j) {
        const double g = err * hidden[j];
        m_out[j] = mom * m_out[j] - lr * g;
        w_out_[j] += m_out[j];
      }
      m_out[h] = mom * m_out[h] - lr * err;
      w_out_[h] += m_out[h];
      for (size_t j = 0; j < h; ++j) {
        for (size_t f = 0; f < arity_; ++f) {
          const double g = delta_hidden[j] * x[f];
          m_hidden[j][f] = mom * m_hidden[j][f] - lr * g;
          w_hidden_[j][f] += m_hidden[j][f];
        }
        m_hidden[j][arity_] = mom * m_hidden[j][arity_] - lr * delta_hidden[j];
        w_hidden_[j][arity_] += m_hidden[j][arity_];
      }
    }
  }
  packed_hidden_.Resize(h, arity_);
  for (size_t j = 0; j < h; ++j) {
    for (size_t f = 0; f < arity_; ++f) packed_hidden_(j, f) = w_hidden_[j][f];
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> MlpLearner::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("mlp is not fitted");
  if (x.size() != arity_) {
    return Status::InvalidArgument("feature length mismatch");
  }
  const Vector xn = Normalize(x);
  const size_t h = options_.hidden_units;
  double out = w_out_[h];
  for (size_t j = 0; j < h; ++j) {
    double z = w_hidden_[j][arity_];
    for (size_t f = 0; f < arity_; ++f) z += w_hidden_[j][f] * xn[f];
    out += w_out_[j] * Sigmoid(z);
  }
  const double t_range =
      target_max_ > target_min_ ? target_max_ - target_min_ : 1.0;
  return target_min_ + out * t_range;
}

Status MlpLearner::PredictBatch(const Matrix& X, Vector* out,
                                PredictWorkspace* workspace) const {
  if (!fitted_) return Status::FailedPrecondition("mlp is not fitted");
  if (X.cols() != arity_) {
    return Status::InvalidArgument("feature length mismatch");
  }
  const size_t n = X.rows();
  const size_t h = options_.hidden_units;

  // Normalised inputs and hidden pre-activations are workspace-backed so
  // a serving loop reuses the two layer buffers across batches.
  Matrix& xn = workspace->a;
  xn.Resize(n, arity_);
  for (size_t r = 0; r < n; ++r) {
    const double* row = X.RowData(r);
    for (size_t f = 0; f < arity_; ++f) {
      const double range = feat_max_[f] - feat_min_[f];
      xn(r, f) = range > 0.0 ? (row[f] - feat_min_[f]) / range : 0.0;
    }
  }

  // Hidden pre-activations: seed every z(r, j) with unit j's bias, then
  // accumulate Xn · W_hiddenᵀ on top — the same "bias first, weights in
  // feature order" association as the scalar forward pass.
  Matrix& z = workspace->b;
  z.Resize(n, h);
  for (size_t j = 0; j < h; ++j) {
    const double bias = w_hidden_[j][arity_];
    for (size_t r = 0; r < n; ++r) z(r, j) = bias;
  }
  MIDAS_RETURN_IF_ERROR(
      xn.MultiplyTransposedInto(packed_hidden_, &z, /*accumulate=*/true));

  const double t_range =
      target_max_ > target_min_ ? target_max_ - target_min_ : 1.0;
  out->resize(n);
  for (size_t r = 0; r < n; ++r) {
    const double* z_row = z.RowData(r);
    double o = w_out_[h];
    for (size_t j = 0; j < h; ++j) o += w_out_[j] * Sigmoid(z_row[j]);
    (*out)[r] = target_min_ + o * t_range;
  }
  return Status::OK();
}

std::unique_ptr<Learner> MlpLearner::Clone() const {
  return std::make_unique<MlpLearner>(*this);
}

}  // namespace midas
