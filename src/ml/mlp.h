#ifndef MIDAS_ML_MLP_H_
#define MIDAS_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"
#include "ml/learner.h"

namespace midas {

struct MlpOptions {
  /// Hidden-layer width; WEKA's MultilayerPerceptron default of
  /// (attributes + classes) / 2 is approximated by callers; 8 is a sound
  /// default for the 2-8 feature problems in this library.
  size_t hidden_units = 8;
  /// WEKA MultilayerPerceptron defaults: 500 epochs, learning rate 0.3,
  /// momentum 0.2. On the handful-of-points windows IReS trains on, these
  /// drive the training error to ~0 (the network memorises the window).
  size_t epochs = 500;
  double learning_rate = 0.3;
  double momentum = 0.2;
  uint64_t seed = 13;
};

/// \brief One-hidden-layer perceptron regressor (sigmoid hidden layer,
/// linear output, SGD with momentum) in the style of WEKA's
/// MultilayerPerceptron — the third learner of the IReS Modelling zoo.
///
/// Inputs and the target are min-max normalised internally so the fixed
/// learning rate behaves across the very different magnitudes of execution
/// time (seconds) and monetary cost (fractions of a dollar).
class MlpLearner final : public Learner {
 public:
  explicit MlpLearner(MlpOptions options = MlpOptions());

  std::string name() const override { return "mlp"; }

  Status Fit(const std::vector<Vector>& features,
             const Vector& targets) override;

  StatusOr<double> Predict(const Vector& x) const override;

  /// Layer-wise batch inference: normalise the whole batch, compute every
  /// hidden pre-activation with one bias-initialised GEMM against the
  /// weight matrix packed at fit time, then reduce through the output
  /// layer. Term order per element matches the scalar path, so batch ==
  /// scalar bit-for-bit under the scalar kernel tier and to <= 1e-12
  /// relative error under a vector tier. The normalised design matrix and
  /// the pre-activation matrix come out of `workspace`.
  using Learner::PredictBatch;
  Status PredictBatch(const Matrix& X, Vector* out,
                      PredictWorkspace* workspace) const override;

  std::unique_ptr<Learner> Clone() const override;

  size_t MinTrainingSize() const override { return 4; }

 private:
  Vector Normalize(const Vector& x) const;

  MlpOptions options_;
  // Fitted parameters.
  std::vector<Vector> w_hidden_;  // hidden_units x (arity + 1), bias last
  Vector w_out_;                  // hidden_units + 1, bias last
  // Hidden slopes packed hidden_units x arity at fit time, so PredictBatch
  // feeds the GEMM without re-packing per call.
  Matrix packed_hidden_;
  // Normalisation ranges captured at fit time.
  Vector feat_min_, feat_max_;
  double target_min_ = 0.0, target_max_ = 1.0;
  size_t arity_ = 0;
  bool fitted_ = false;
};

}  // namespace midas

#endif  // MIDAS_ML_MLP_H_
