#include "ml/model_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/bagging.h"
#include "ml/least_squares.h"
#include "ml/mlp.h"

namespace midas {

std::string WindowPolicyName(WindowPolicy policy) {
  switch (policy) {
    case WindowPolicy::kLastN:
      return "BML_N";
    case WindowPolicy::kLast2N:
      return "BML_2N";
    case WindowPolicy::kLast3N:
      return "BML_3N";
    case WindowPolicy::kAll:
      return "BML";
  }
  return "?";
}

size_t WindowSizeFor(WindowPolicy policy, size_t n, size_t available) {
  size_t want = available;
  switch (policy) {
    case WindowPolicy::kLastN:
      want = n;
      break;
    case WindowPolicy::kLast2N:
      want = 2 * n;
      break;
    case WindowPolicy::kLast3N:
      want = 3 * n;
      break;
    case WindowPolicy::kAll:
      want = available;
      break;
  }
  return std::min(want, available);
}

ModelSelector::ModelSelector(ModelSelectorOptions options)
    : options_(options) {}

void ModelSelector::AddCandidate(LearnerFactory factory) {
  factories_.push_back(std::move(factory));
}

void ModelSelector::AddDefaultCandidates(uint64_t seed) {
  AddCandidate([] { return std::make_unique<LeastSquaresLearner>(); });
  AddCandidate([seed] {
    BaggingOptions opts;
    opts.seed = seed;
    return std::make_unique<BaggingLearner>(opts);
  });
  AddCandidate([seed] {
    MlpOptions opts;
    opts.seed = seed + 1;
    return std::make_unique<MlpLearner>(opts);
  });
}

StatusOr<double> ModelSelector::CrossValidatedRmse(
    const LearnerFactory& factory, const std::vector<Vector>& features,
    const Vector& targets) const {
  const size_t n = features.size();
  const size_t folds = std::max<size_t>(2, std::min(options_.num_folds, n));
  double total_sq = 0.0;
  size_t total_count = 0;
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<Vector> train_x, test_x;
    Vector train_y, test_y;
    for (size_t i = 0; i < n; ++i) {
      if (i % folds == fold) {
        test_x.push_back(features[i]);
        test_y.push_back(targets[i]);
      } else {
        train_x.push_back(features[i]);
        train_y.push_back(targets[i]);
      }
    }
    if (test_x.empty() || train_x.empty()) continue;
    std::unique_ptr<Learner> learner = factory();
    MIDAS_RETURN_IF_ERROR(learner->Fit(train_x, train_y));
    for (size_t i = 0; i < test_x.size(); ++i) {
      MIDAS_ASSIGN_OR_RETURN(double pred, learner->Predict(test_x[i]));
      const double d = pred - test_y[i];
      total_sq += d * d;
      ++total_count;
    }
  }
  if (total_count == 0) {
    return Status::Internal("cross validation produced no test points");
  }
  return std::sqrt(total_sq / static_cast<double>(total_count));
}

StatusOr<double> ModelSelector::TrainingRmse(
    const LearnerFactory& factory, const std::vector<Vector>& features,
    const Vector& targets) const {
  std::unique_ptr<Learner> learner = factory();
  MIDAS_RETURN_IF_ERROR(learner->Fit(features, targets));
  double total_sq = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    MIDAS_ASSIGN_OR_RETURN(double pred, learner->Predict(features[i]));
    const double d = pred - targets[i];
    total_sq += d * d;
  }
  return std::sqrt(total_sq / static_cast<double>(features.size()));
}

StatusOr<SelectedModel> ModelSelector::SelectBest(
    const std::vector<Vector>& features, const Vector& targets) const {
  if (factories_.empty()) {
    return Status::FailedPrecondition("no candidate learners registered");
  }
  MIDAS_RETURN_IF_ERROR(ValidateTrainingData(features, targets, 2));

  double best_error = std::numeric_limits<double>::infinity();
  const LearnerFactory* best_factory = nullptr;
  for (const LearnerFactory& factory : factories_) {
    auto error = options_.mode == SelectionMode::kTrainingError
                     ? TrainingRmse(factory, features, targets)
                     : CrossValidatedRmse(factory, features, targets);
    if (!error.ok()) continue;  // candidate cannot handle this window
    if (*error < best_error) {
      best_error = *error;
      best_factory = &factory;
    }
  }
  if (best_factory == nullptr) {
    return Status::FailedPrecondition(
        "no candidate learner could fit the window of " +
        std::to_string(features.size()) + " observations");
  }
  SelectedModel out;
  out.learner = (*best_factory)();
  MIDAS_RETURN_IF_ERROR(out.learner->Fit(features, targets));
  out.name = out.learner->name();
  out.validation_error = best_error;
  return out;
}

}  // namespace midas
