#ifndef MIDAS_ML_MODEL_SELECTION_H_
#define MIDAS_ML_MODEL_SELECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace midas {

/// \brief History window used when training a baseline model — the paper's
/// BML_N / BML_2N / BML_3N / BML (no limit) configurations, where
/// N = L + 2 is the smallest window DREAM itself requires.
enum class WindowPolicy { kLastN, kLast2N, kLast3N, kAll };

std::string WindowPolicyName(WindowPolicy policy);

/// Number of newest observations to keep under `policy` given base window n
/// and available history size; kAll returns `available`.
size_t WindowSizeFor(WindowPolicy policy, size_t n, size_t available);

/// \brief A learner chosen by the selector, refitted on the full window.
struct SelectedModel {
  std::unique_ptr<Learner> learner;
  std::string name;
  /// Cross-validated error that won the selection.
  double validation_error = 0.0;
};

using LearnerFactory = std::function<std::unique_ptr<Learner>()>;

/// How candidate models are scored against each other.
enum class SelectionMode {
  /// IReS behaviour: fit on the window and score on the same window
  /// ("the best model with the smallest error is selected", §2.4 — the
  /// paper notes this uses the total information for training and
  /// testing). Favors high-capacity learners on small windows.
  kTrainingError,
  /// Sounder alternative: k-fold cross-validated RMSE.
  kCrossValidation,
};

struct ModelSelectorOptions {
  SelectionMode mode = SelectionMode::kTrainingError;
  /// k of k-fold cross validation (mode == kCrossValidation); clamped to
  /// the training size.
  size_t num_folds = 3;
};

/// \brief "Best Machine Learning model" selection as done by the IReS
/// Modelling module: fit every candidate learner, score each (training
/// error by default, matching IReS; optionally cross-validation), keep
/// the smallest error, and refit the winner on the whole window.
class ModelSelector {
 public:
  explicit ModelSelector(ModelSelectorOptions options = ModelSelectorOptions());

  /// Registers a candidate algorithm. The factory is invoked once per fold
  /// plus once for the final refit.
  void AddCandidate(LearnerFactory factory);

  /// Installs the paper's zoo: least squares, bagging predictors, MLP.
  void AddDefaultCandidates(uint64_t seed = 17);

  size_t num_candidates() const { return factories_.size(); }

  /// Runs the selection. Candidates that fail to fit (e.g., too little
  /// data) are skipped; fails only when no candidate fits.
  StatusOr<SelectedModel> SelectBest(const std::vector<Vector>& features,
                                     const Vector& targets) const;

 private:
  StatusOr<double> CrossValidatedRmse(const LearnerFactory& factory,
                                      const std::vector<Vector>& features,
                                      const Vector& targets) const;
  StatusOr<double> TrainingRmse(const LearnerFactory& factory,
                                const std::vector<Vector>& features,
                                const Vector& targets) const;

  ModelSelectorOptions options_;
  std::vector<LearnerFactory> factories_;
};

}  // namespace midas

#endif  // MIDAS_ML_MODEL_SELECTION_H_
