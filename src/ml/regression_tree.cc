#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace midas {

namespace {

double MeanOf(const Vector& ys, const std::vector<size_t>& idx) {
  double s = 0.0;
  for (size_t i : idx) s += ys[i];
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

double SseOf(const Vector& ys, const std::vector<size_t>& idx) {
  const double mu = MeanOf(ys, idx);
  double s = 0.0;
  for (size_t i : idx) s += (ys[i] - mu) * (ys[i] - mu);
  return s;
}

}  // namespace

RegressionTree::RegressionTree(RegressionTreeOptions options)
    : options_(options) {}

Status RegressionTree::Fit(const std::vector<Vector>& features,
                           const Vector& targets) {
  MIDAS_RETURN_IF_ERROR(
      ValidateTrainingData(features, targets, MinTrainingSize()));
  nodes_.clear();
  arity_ = features[0].size();
  std::vector<size_t> all(features.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  BuildNode(features, targets, all, 0);
  fitted_ = true;
  return Status::OK();
}

int RegressionTree::BuildNode(const std::vector<Vector>& xs, const Vector& ys,
                              std::vector<size_t>& indices, size_t depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(ys, indices);

  if (indices.size() < options_.min_samples_split ||
      depth >= options_.max_depth) {
    return node_id;
  }
  const double node_sse = SseOf(ys, indices);
  if (node_sse <= 0.0) return node_id;  // pure node

  // Exhaustive search over (feature, threshold between consecutive sorted
  // values) for the split with the largest SSE reduction.
  double best_gain = 0.0;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  for (size_t f = 0; f < arity_; ++f) {
    std::vector<size_t> sorted = indices;
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return xs[a][f] < xs[b][f];
    });
    // Prefix sums of y and y^2 allow O(1) SSE of each split.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (size_t i : sorted) {
      total_sum += ys[i];
      total_sq += ys[i] * ys[i];
    }
    for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      const size_t i = sorted[pos];
      left_sum += ys[i];
      left_sq += ys[i] * ys[i];
      const double xa = xs[i][f];
      const double xb = xs[sorted[pos + 1]][f];
      if (xa == xb) continue;  // cannot split between equal values
      const double nl = static_cast<double>(pos + 1);
      const double nr = static_cast<double>(sorted.size() - pos - 1);
      const double sse_l = left_sq - left_sum * left_sum / nl;
      const double right_sum = total_sum - left_sum;
      const double sse_r =
          (total_sq - left_sq) - right_sum * right_sum / nr;
      const double gain = node_sse - (sse_l + sse_r);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (xa + xb);
      }
    }
  }
  if (best_gain < options_.min_impurity_decrease * node_sse ||
      best_gain <= 0.0) {
    return node_id;
  }

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    (xs[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = BuildNode(xs, ys, left_idx, depth + 1);
  nodes_[node_id].left = left;
  const int right = BuildNode(xs, ys, right_idx, depth + 1);
  nodes_[node_id].right = right;
  return node_id;
}

StatusOr<double> RegressionTree::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("tree is not fitted");
  if (x.size() != arity_) {
    return Status::InvalidArgument("feature length mismatch");
  }
  int node = 0;
  while (!nodes_[node].is_leaf) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

Status RegressionTree::PredictBatch(const Matrix& X, Vector* out,
                                    PredictWorkspace* /*workspace*/) const {
  if (!fitted_) return Status::FailedPrecondition("tree is not fitted");
  if (X.cols() != arity_) {
    return Status::InvalidArgument("feature length mismatch");
  }
  out->resize(X.rows());
  const Node* nodes = nodes_.data();
  for (size_t r = 0; r < X.rows(); ++r) {
    const double* x = X.RowData(r);
    int node = 0;
    while (!nodes[node].is_leaf) {
      node = x[nodes[node].feature] <= nodes[node].threshold
                 ? nodes[node].left
                 : nodes[node].right;
    }
    (*out)[r] = nodes[node].value;
  }
  return Status::OK();
}

std::unique_ptr<Learner> RegressionTree::Clone() const {
  return std::make_unique<RegressionTree>(*this);
}

size_t RegressionTree::NodeCount() const { return nodes_.size(); }

size_t RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree.
  size_t max_depth = 0;
  std::vector<std::pair<int, size_t>> stack = {{0, 1}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[id].is_leaf) {
      stack.push_back({nodes_[id].left, d + 1});
      stack.push_back({nodes_[id].right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace midas
