#ifndef MIDAS_ML_REGRESSION_TREE_H_
#define MIDAS_ML_REGRESSION_TREE_H_

#include <memory>
#include <vector>

#include "ml/learner.h"

namespace midas {

struct RegressionTreeOptions {
  /// Nodes with fewer samples become leaves. 2 grows fully (unpruned
  /// trees, as Breiman's bagging prescribes for its base learner).
  size_t min_samples_split = 2;
  /// Hard depth cap; keeps trees bounded for the bagging ensemble.
  size_t max_depth = 12;
  /// A split must reduce SSE by at least this fraction of the node SSE.
  double min_impurity_decrease = 1e-9;
};

/// \brief CART-style binary regression tree (variance-reduction splits,
/// mean-value leaves). Base learner for BaggingLearner, and usable alone.
class RegressionTree final : public Learner {
 public:
  explicit RegressionTree(RegressionTreeOptions options =
                              RegressionTreeOptions());

  std::string name() const override { return "regression_tree"; }

  Status Fit(const std::vector<Vector>& features,
             const Vector& targets) override;

  StatusOr<double> Predict(const Vector& x) const override;

  /// Tight traversal loop over the batch: preconditions are checked once,
  /// then every row descends the tree with no per-row StatusOr round-trip.
  using Learner::PredictBatch;
  Status PredictBatch(const Matrix& X, Vector* out,
                      PredictWorkspace* workspace) const override;

  std::unique_ptr<Learner> Clone() const override;

  size_t MinTrainingSize() const override { return 2; }

  /// Number of nodes in the fitted tree (tests and ablation hooks).
  size_t NodeCount() const;
  size_t Depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;      // leaf prediction
    size_t feature = 0;      // split feature index
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;           // child indices into nodes_
    int right = -1;
  };

  int BuildNode(const std::vector<Vector>& xs, const Vector& ys,
                std::vector<size_t>& indices, size_t depth);

  RegressionTreeOptions options_;
  std::vector<Node> nodes_;
  size_t arity_ = 0;
  bool fitted_ = false;
};

}  // namespace midas

#endif  // MIDAS_ML_REGRESSION_TREE_H_
