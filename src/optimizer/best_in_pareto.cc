#include "optimizer/best_in_pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "optimizer/wsm.h"

namespace midas {

StatusOr<size_t> BestInPareto(const std::vector<Vector>& pareto_costs,
                              const QueryPolicy& policy) {
  if (pareto_costs.empty()) {
    return Status::InvalidArgument("empty Pareto set");
  }
  const size_t arity = pareto_costs[0].size();
  if (policy.weights.size() != arity) {
    return Status::InvalidArgument("policy weights arity mismatch");
  }
  if (!policy.constraints.empty() && policy.constraints.size() > arity) {
    return Status::InvalidArgument("more constraints than metrics");
  }

  // PB <- plans meeting every constraint (line 2 of Algorithm 2).
  std::vector<size_t> feasible;
  for (size_t i = 0; i < pareto_costs.size(); ++i) {
    if (pareto_costs[i].size() != arity) {
      return Status::InvalidArgument("ragged Pareto costs");
    }
    bool ok = true;
    for (size_t n = 0; n < policy.constraints.size(); ++n) {
      if (pareto_costs[i][n] > policy.constraints[n]) {
        ok = false;
        break;
      }
    }
    if (ok) feasible.push_back(i);
  }

  // Weighted-sum minimiser over the feasible subset, falling back to all
  // of P when PB is empty (lines 3-7).
  const std::vector<size_t>* pool_indices = nullptr;
  std::vector<size_t> all;
  if (!feasible.empty()) {
    pool_indices = &feasible;
  } else {
    all.resize(pareto_costs.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    pool_indices = &all;
  }
  std::vector<Vector> pool;
  pool.reserve(pool_indices->size());
  for (size_t i : *pool_indices) pool.push_back(pareto_costs[i]);
  MIDAS_ASSIGN_OR_RETURN(size_t local, WsmSelect(pool, policy.weights));
  return (*pool_indices)[local];
}

namespace {

// Min-max normalises a 2-metric cost set; zero-range metrics map to 0.
std::vector<Vector> Normalize2D(const std::vector<Vector>& costs) {
  Vector lo = costs[0], hi = costs[0];
  for (const Vector& c : costs) {
    for (size_t m = 0; m < 2; ++m) {
      lo[m] = std::min(lo[m], c[m]);
      hi[m] = std::max(hi[m], c[m]);
    }
  }
  std::vector<Vector> out;
  out.reserve(costs.size());
  for (const Vector& c : costs) {
    Vector n(2, 0.0);
    for (size_t m = 0; m < 2; ++m) {
      const double range = hi[m] - lo[m];
      n[m] = range > 0.0 ? (c[m] - lo[m]) / range : 0.0;
    }
    out.push_back(std::move(n));
  }
  return out;
}

}  // namespace

StatusOr<size_t> KneePointSelect(const std::vector<Vector>& pareto_costs) {
  if (pareto_costs.empty()) {
    return Status::InvalidArgument("empty Pareto set");
  }
  for (const Vector& c : pareto_costs) {
    if (c.size() != 2) {
      return Status::InvalidArgument("knee selection is two-metric only");
    }
  }
  const std::vector<Vector> normalized = Normalize2D(pareto_costs);
  if (pareto_costs.size() < 3) {
    // Degenerate set: fall back to the normalised-sum minimiser.
    size_t best = 0;
    for (size_t i = 1; i < normalized.size(); ++i) {
      if (normalized[i][0] + normalized[i][1] <
          normalized[best][0] + normalized[best][1]) {
        best = i;
      }
    }
    return best;
  }
  // Extreme points in normalised space: best metric-0 and best metric-1.
  size_t e0 = 0, e1 = 0;
  for (size_t i = 1; i < normalized.size(); ++i) {
    if (normalized[i][0] < normalized[e0][0]) e0 = i;
    if (normalized[i][1] < normalized[e1][1]) e1 = i;
  }
  const double ax = normalized[e0][0], ay = normalized[e0][1];
  const double bx = normalized[e1][0], by = normalized[e1][1];
  const double chord = std::hypot(bx - ax, by - ay);
  if (chord <= 0.0) return e0;  // all plans coincide after normalisation
  // Perpendicular distance to the chord, on the non-dominated side.
  size_t best = e0;
  double best_distance = -1.0;
  for (size_t i = 0; i < normalized.size(); ++i) {
    const double cross = (bx - ax) * (ay - normalized[i][1]) -
                         (ax - normalized[i][0]) * (by - ay);
    const double distance = cross / chord;  // signed; positive = below
    if (distance > best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

StatusOr<size_t> LexicographicSelect(const std::vector<Vector>& pareto_costs,
                                     const std::vector<size_t>& priority,
                                     double tolerance) {
  if (pareto_costs.empty()) {
    return Status::InvalidArgument("empty Pareto set");
  }
  if (priority.empty()) {
    return Status::InvalidArgument("empty metric priority");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("negative tolerance");
  }
  const size_t arity = pareto_costs[0].size();
  for (size_t m : priority) {
    if (m >= arity) return Status::OutOfRange("priority metric out of range");
  }
  std::vector<size_t> survivors(pareto_costs.size());
  std::iota(survivors.begin(), survivors.end(), 0);
  for (size_t m : priority) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i : survivors) best = std::min(best, pareto_costs[i][m]);
    const double cutoff = best + std::abs(best) * tolerance;
    std::vector<size_t> next;
    for (size_t i : survivors) {
      if (pareto_costs[i][m] <= cutoff) next.push_back(i);
    }
    survivors = std::move(next);
    if (survivors.size() == 1) break;
  }
  return survivors.front();
}

}  // namespace midas
