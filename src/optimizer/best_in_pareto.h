#ifndef MIDAS_OPTIMIZER_BEST_IN_PARETO_H_
#define MIDAS_OPTIMIZER_BEST_IN_PARETO_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// \brief User query policy: the weights S of the final weighted-sum
/// ranking and the per-metric constraint vector B ("finish under 60 s and
/// $0.01"). An empty `constraints` means unconstrained.
struct QueryPolicy {
  Vector weights;
  Vector constraints;
};

/// \brief Algorithm 2 (BestInPareto): picks the final QEP from a Pareto
/// plan set P given the user policy.
///
/// First restricts P to the plans meeting every constraint B_n
/// (PB = {p : c_n(p) <= B_n ∀n <= |B|}); if any survive, returns the
/// weighted-sum minimiser among them, otherwise the weighted-sum minimiser
/// over all of P (best effort when no plan meets the constraints).
/// Returns the index into `pareto_costs`.
StatusOr<size_t> BestInPareto(const std::vector<Vector>& pareto_costs,
                              const QueryPolicy& policy);

// --- Alternative Pareto-set selection strategies (paper §5 future work:
// "define new strategies to choose QEPs in a Pareto Set") -------------------

/// \brief Knee-point selection: the plan farthest (after min-max
/// normalisation) from the chord between the per-metric extreme points —
/// the "best bang for the buck" plan that needs no user weights at all.
/// Two metrics only; sets with < 3 plans return the weighted-centre
/// equivalent (index of the normalised-sum minimiser).
StatusOr<size_t> KneePointSelect(const std::vector<Vector>& pareto_costs);

/// \brief Lexicographic selection: minimise the metrics in the given
/// priority order, with `tolerance` (relative) slack allowed at each level
/// before moving to the next tie-breaker. E.g. priority {0, 1} with 5%
/// tolerance: among plans within 5% of the best time, pick the cheapest.
StatusOr<size_t> LexicographicSelect(const std::vector<Vector>& pareto_costs,
                                     const std::vector<size_t>& priority,
                                     double tolerance = 0.05);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_BEST_IN_PARETO_H_
