#include "optimizer/configuration_problem.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace midas {

ConfigurationProblem::ConfigurationProblem(std::string name,
                                           std::vector<size_t> dims,
                                           size_t num_objectives,
                                           Evaluator evaluator)
    : name_(std::move(name)),
      dims_(std::move(dims)),
      num_objectives_(num_objectives),
      evaluator_(std::move(evaluator)) {
  MIDAS_CHECK(!dims_.empty()) << "configuration space has no dimensions";
  for (size_t d : dims_) MIDAS_CHECK(d > 0) << "empty dimension";
  MIDAS_CHECK(static_cast<bool>(evaluator_)) << "null evaluator";
}

std::pair<double, double> ConfigurationProblem::bounds(size_t var) const {
  MIDAS_CHECK(var < dims_.size());
  return {0.0, static_cast<double>(dims_[var] - 1)};
}

std::vector<size_t> ConfigurationProblem::Decode(const Vector& x) const {
  std::vector<size_t> config(dims_.size(), 0);
  for (size_t d = 0; d < dims_.size(); ++d) {
    const double v = d < x.size() ? x[d] : 0.0;
    const long idx = std::lround(v);
    config[d] = static_cast<size_t>(
        std::clamp<long>(idx, 0, static_cast<long>(dims_[d] - 1)));
  }
  return config;
}

Vector ConfigurationProblem::Evaluate(const Vector& x) const {
  return evaluator_(Decode(x));
}

uint64_t ConfigurationProblem::SpaceSize() const {
  uint64_t total = 1;
  for (size_t d : dims_) total *= d;
  return total;
}

}  // namespace midas
