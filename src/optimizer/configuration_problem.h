#ifndef MIDAS_OPTIMIZER_CONFIGURATION_PROBLEM_H_
#define MIDAS_OPTIMIZER_CONFIGURATION_PROBLEM_H_

#include <functional>
#include <string>
#include <vector>

#include "optimizer/problem.h"

namespace midas {

/// \brief Adapter exposing a discrete configuration space (e.g., the QEP
/// knobs: join order × compute placement × VM counts) as a continuous
/// MooProblem so the genetic optimizers can search it.
///
/// Each decision dimension d has cardinality dims[d]; the continuous
/// variable ranges over [0, dims[d] - 1] and is rounded to the nearest
/// integer before evaluation. The evaluator maps a configuration (one
/// index per dimension) to its predicted cost vector.
class ConfigurationProblem final : public MooProblem {
 public:
  using Evaluator = std::function<Vector(const std::vector<size_t>&)>;

  ConfigurationProblem(std::string name, std::vector<size_t> dims,
                       size_t num_objectives, Evaluator evaluator);

  std::string name() const override { return name_; }
  size_t num_variables() const override { return dims_.size(); }
  size_t num_objectives() const override { return num_objectives_; }
  std::pair<double, double> bounds(size_t var) const override;
  Vector Evaluate(const Vector& x) const override;

  /// Rounds a continuous decision vector to its configuration indices.
  std::vector<size_t> Decode(const Vector& x) const;

  /// Total number of distinct configurations (product of dims).
  uint64_t SpaceSize() const;

 private:
  std::string name_;
  std::vector<size_t> dims_;
  size_t num_objectives_;
  Evaluator evaluator_;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_CONFIGURATION_PROBLEM_H_
