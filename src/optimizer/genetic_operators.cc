#include "optimizer/genetic_operators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace midas {

Individual RandomIndividual(const MooProblem& problem, Rng* rng) {
  Individual ind;
  ind.variables.resize(problem.num_variables());
  for (size_t i = 0; i < ind.variables.size(); ++i) {
    auto [lo, hi] = problem.bounds(i);
    ind.variables[i] = rng->Uniform(lo, hi);
  }
  ind.objectives = problem.Evaluate(ind.variables);
  return ind;
}

std::pair<Vector, Vector> SbxCrossover(const MooProblem& problem,
                                       const Vector& parent1,
                                       const Vector& parent2,
                                       const SbxOptions& options, Rng* rng) {
  Vector child1 = parent1;
  Vector child2 = parent2;
  if (rng->Uniform() >= options.crossover_probability) {
    return {child1, child2};
  }
  const double eta = options.distribution_index;
  for (size_t i = 0; i < child1.size(); ++i) {
    if (rng->Uniform() >= 0.5) continue;  // per-variable gate
    const double x1 = parent1[i];
    const double x2 = parent2[i];
    if (std::abs(x1 - x2) < 1e-14) continue;
    const double u = rng->Uniform();
    double beta;
    if (u <= 0.5) {
      beta = std::pow(2.0 * u, 1.0 / (eta + 1.0));
    } else {
      beta = std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    }
    child1[i] = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
    child2[i] = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
  }
  child1 = problem.ClampToBounds(std::move(child1));
  child2 = problem.ClampToBounds(std::move(child2));
  return {child1, child2};
}

Vector PolynomialMutation(const MooProblem& problem, Vector x,
                          const MutationOptions& options, Rng* rng) {
  const double pm =
      options.mutation_probability > 0.0
          ? options.mutation_probability
          : 1.0 / static_cast<double>(std::max<size_t>(1, x.size()));
  const double eta = options.distribution_index;
  for (size_t i = 0; i < x.size(); ++i) {
    if (rng->Uniform() >= pm) continue;
    auto [lo, hi] = problem.bounds(i);
    const double range = hi - lo;
    if (range <= 0.0) continue;
    const double u = rng->Uniform();
    double delta;
    if (u < 0.5) {
      delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
    }
    x[i] = std::clamp(x[i] + delta * range, lo, hi);
  }
  return x;
}

const Individual& BinaryTournament(const std::vector<Individual>& population,
                                   Rng* rng) {
  MIDAS_CHECK(!population.empty());
  const Individual& a = population[rng->Index(population.size())];
  const Individual& b = population[rng->Index(population.size())];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  if (a.crowding != b.crowding) return a.crowding > b.crowding ? a : b;
  return rng->Bernoulli(0.5) ? a : b;
}

}  // namespace midas
