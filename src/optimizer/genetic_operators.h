#ifndef MIDAS_OPTIMIZER_GENETIC_OPERATORS_H_
#define MIDAS_OPTIMIZER_GENETIC_OPERATORS_H_

#include "common/random.h"
#include "optimizer/problem.h"

namespace midas {

/// \brief One member of a genetic population.
struct Individual {
  Vector variables;
  Vector objectives;
  /// Non-domination rank (0 = Pareto front of the population).
  int rank = 0;
  /// Crowding distance within its front.
  double crowding = 0.0;
};

/// Samples a uniform random point in the problem's box.
Individual RandomIndividual(const MooProblem& problem, Rng* rng);

/// Simulated Binary Crossover (Deb & Agrawal 1995). Produces two children;
/// applied per-variable with probability 0.5 when crossover fires.
struct SbxOptions {
  double crossover_probability = 0.9;
  double distribution_index = 15.0;  // eta_c
};
std::pair<Vector, Vector> SbxCrossover(const MooProblem& problem,
                                       const Vector& parent1,
                                       const Vector& parent2,
                                       const SbxOptions& options, Rng* rng);

/// Polynomial mutation (Deb 1996), applied per variable with probability
/// `mutation_probability` (defaulting to 1/num_variables when <= 0).
struct MutationOptions {
  double mutation_probability = -1.0;
  double distribution_index = 20.0;  // eta_m
};
Vector PolynomialMutation(const MooProblem& problem, Vector x,
                          const MutationOptions& options, Rng* rng);

/// Binary tournament by (rank, crowding): lower rank wins, ties broken by
/// larger crowding distance, then randomly.
const Individual& BinaryTournament(const std::vector<Individual>& population,
                                   Rng* rng);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_GENETIC_OPERATORS_H_
