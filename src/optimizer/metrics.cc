#include "optimizer/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"
#include "optimizer/pareto.h"

namespace midas {

StatusOr<double> Hypervolume2D(const std::vector<Vector>& front,
                               const Vector& reference) {
  if (reference.size() != 2) {
    return Status::InvalidArgument("Hypervolume2D needs a 2-D reference");
  }
  if (front.empty()) return 0.0;
  // Keep only points that dominate (are inside) the reference box.
  std::vector<Vector> pts;
  for (const Vector& p : front) {
    if (p.size() != 2) {
      return Status::InvalidArgument("non-2-D point in front");
    }
    if (p[0] < reference[0] && p[1] < reference[1]) pts.push_back(p);
  }
  if (pts.empty()) return 0.0;
  // Sort by first objective ascending; sweep accumulating rectangles of
  // the staircase formed by successively better second objectives.
  std::sort(pts.begin(), pts.end(), [](const Vector& a, const Vector& b) {
    if (a[0] != b[0]) return a[0] < b[0];
    return a[1] < b[1];
  });
  double volume = 0.0;
  double prev_y = reference[1];
  for (const Vector& p : pts) {
    if (p[1] < prev_y) {
      volume += (reference[0] - p[0]) * (prev_y - p[1]);
      prev_y = p[1];
    }
  }
  return volume;
}

StatusOr<double> HypervolumeMonteCarlo(const std::vector<Vector>& front,
                                       const Vector& reference,
                                       size_t samples, uint64_t seed) {
  if (reference.empty()) {
    return Status::InvalidArgument("empty reference point");
  }
  if (samples == 0) return Status::InvalidArgument("need samples > 0");
  const size_t k = reference.size();
  // Box lower corner: component-wise minimum of the front (clipped at the
  // reference).
  Vector lo(k);
  bool any_inside = false;
  for (const Vector& p : front) {
    if (p.size() != k) {
      return Status::InvalidArgument("front/reference arity mismatch");
    }
  }
  for (size_t m = 0; m < k; ++m) {
    double v = reference[m];
    for (const Vector& p : front) v = std::min(v, p[m]);
    lo[m] = v;
    if (v < reference[m]) any_inside = true;
  }
  if (front.empty() || !any_inside) return 0.0;
  double box = 1.0;
  for (size_t m = 0; m < k; ++m) box *= reference[m] - lo[m];
  if (box <= 0.0) return 0.0;

  Rng rng(seed);
  size_t hits = 0;
  Vector sample(k);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t m = 0; m < k; ++m) sample[m] = rng.Uniform(lo[m], reference[m]);
    for (const Vector& p : front) {
      if (WeaklyDominates(p, sample)) {
        ++hits;
        break;
      }
    }
  }
  return box * static_cast<double>(hits) / static_cast<double>(samples);
}

StatusOr<double> InvertedGenerationalDistance(
    const std::vector<Vector>& front,
    const std::vector<Vector>& reference_front) {
  if (front.empty() || reference_front.empty()) {
    return Status::InvalidArgument("IGD of empty front");
  }
  double total = 0.0;
  for (const Vector& r : reference_front) {
    double best = std::numeric_limits<double>::infinity();
    for (const Vector& p : front) {
      if (p.size() != r.size()) {
        return Status::InvalidArgument("front arity mismatch");
      }
      double d2 = 0.0;
      for (size_t m = 0; m < r.size(); ++m) {
        d2 += (p[m] - r[m]) * (p[m] - r[m]);
      }
      best = std::min(best, d2);
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(reference_front.size());
}

StatusOr<double> Spacing2D(const std::vector<Vector>& front) {
  if (front.size() < 3) {
    return Status::InvalidArgument("spacing needs at least 3 points");
  }
  std::vector<Vector> pts = front;
  std::sort(pts.begin(), pts.end(), [](const Vector& a, const Vector& b) {
    return a[0] < b[0];
  });
  std::vector<double> gaps;
  for (size_t i = 1; i < pts.size(); ++i) {
    const double dx = pts[i][0] - pts[i - 1][0];
    const double dy = pts[i][1] - pts[i - 1][1];
    gaps.push_back(std::sqrt(dx * dx + dy * dy));
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  return std::sqrt(var / static_cast<double>(gaps.size()));
}

}  // namespace midas
