#ifndef MIDAS_OPTIMIZER_METRICS_H_
#define MIDAS_OPTIMIZER_METRICS_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// \brief Hypervolume of a 2-objective front w.r.t. a reference point
/// (both objectives minimised; points outside the reference box are
/// clipped away). Exact sweep algorithm.
StatusOr<double> Hypervolume2D(const std::vector<Vector>& front,
                               const Vector& reference);

/// \brief Monte-Carlo hypervolume for K >= 2 objectives: fraction of the
/// reference box dominated by the front, times the box volume.
/// Deterministic given the seed.
StatusOr<double> HypervolumeMonteCarlo(const std::vector<Vector>& front,
                                       const Vector& reference,
                                       size_t samples = 100000,
                                       uint64_t seed = 99);

/// \brief Inverted Generational Distance: mean distance from each point of
/// `reference_front` to its nearest neighbour in `front`. Lower is better.
StatusOr<double> InvertedGenerationalDistance(
    const std::vector<Vector>& front,
    const std::vector<Vector>& reference_front);

/// \brief Spread (spacing) of a 2-objective front: standard deviation of
/// consecutive gaps after sorting on the first objective. Lower = more
/// uniform coverage.
StatusOr<double> Spacing2D(const std::vector<Vector>& front);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_METRICS_H_
