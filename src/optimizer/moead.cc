#include "optimizer/moead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "optimizer/pareto.h"

namespace midas {

namespace {
constexpr double kWeightEpsilon = 1e-4;
}  // namespace

Moead::Moead(MoeadOptions options) : options_(options) {}

double TchebycheffCost(const Vector& objectives, const Vector& weights,
                       const Vector& ideal) {
  double worst = 0.0;
  for (size_t k = 0; k < objectives.size(); ++k) {
    const double w = std::max(weights[k], kWeightEpsilon);
    worst = std::max(worst, w * std::abs(objectives[k] - ideal[k]));
  }
  return worst;
}

StatusOr<MooResult> Moead::Optimize(const MooProblem& problem) const {
  const size_t n = options_.population_size;
  if (n < 4) {
    return Status::InvalidArgument("population must hold at least 4");
  }
  if (problem.num_objectives() != 2) {
    return Status::Unimplemented(
        "MOEA/D implemented for two objectives (the time/money MOQP case)");
  }
  if (options_.neighborhood < 2) {
    return Status::InvalidArgument("neighborhood must be at least 2");
  }
  Rng rng(options_.seed);

  // Uniform 2-D weight vectors (λ_i, 1 - λ_i); neighbours are simply the
  // adjacent indices in this spread.
  std::vector<Vector> weights(n);
  for (size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(i) / static_cast<double>(n - 1);
    weights[i] = {w, 1.0 - w};
  }
  const size_t t = std::min(options_.neighborhood, n);
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    // Window of T nearest weight indices centred on i.
    const size_t half = t / 2;
    size_t lo = i > half ? i - half : 0;
    size_t hi = std::min(lo + t, n);
    lo = hi > t ? hi - t : 0;
    for (size_t j = lo; j < hi; ++j) neighbors[i].push_back(j);
  }

  // Initial population: one individual per subproblem.
  std::vector<Individual> population;
  population.reserve(n);
  Vector ideal(2, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    population.push_back(RandomIndividual(problem, &rng));
    for (size_t k = 0; k < 2; ++k) {
      ideal[k] = std::min(ideal[k], population[i].objectives[k]);
    }
  }

  // External archive of non-dominated solutions.
  std::vector<Individual> archive;
  auto offer_to_archive = [&archive](const Individual& candidate) {
    for (const Individual& member : archive) {
      if (WeaklyDominates(member.objectives, candidate.objectives)) return;
    }
    archive.erase(
        std::remove_if(archive.begin(), archive.end(),
                       [&candidate](const Individual& member) {
                         return Dominates(candidate.objectives,
                                          member.objectives);
                       }),
        archive.end());
    archive.push_back(candidate);
  };
  for (const Individual& ind : population) offer_to_archive(ind);

  for (size_t gen = 0; gen < options_.generations; ++gen) {
    for (size_t i = 0; i < n; ++i) {
      // Mating selection within the neighbourhood.
      const std::vector<size_t>& nbhd = neighbors[i];
      const size_t p1 = nbhd[rng.Index(nbhd.size())];
      const size_t p2 = nbhd[rng.Index(nbhd.size())];
      auto [c1, c2] =
          SbxCrossover(problem, population[p1].variables,
                       population[p2].variables, options_.crossover, &rng);
      Individual child;
      child.variables = PolynomialMutation(
          problem, rng.Bernoulli(0.5) ? std::move(c1) : std::move(c2),
          options_.mutation, &rng);
      child.objectives = problem.Evaluate(child.variables);

      // Update the ideal point.
      for (size_t k = 0; k < 2; ++k) {
        ideal[k] = std::min(ideal[k], child.objectives[k]);
      }
      // Replace neighbours the child improves (Tchebycheff-wise).
      for (size_t j : nbhd) {
        const double child_cost =
            TchebycheffCost(child.objectives, weights[j], ideal);
        const double incumbent_cost =
            TchebycheffCost(population[j].objectives, weights[j], ideal);
        if (child_cost < incumbent_cost) population[j] = child;
      }
      offer_to_archive(child);
    }
  }

  MooResult result;
  result.population = std::move(archive);
  RankAndCrowd(&result.population);
  for (size_t i = 0; i < result.population.size(); ++i) {
    if (result.population[i].rank == 0) result.front.push_back(i);
  }
  return result;
}

}  // namespace midas
