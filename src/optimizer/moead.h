#ifndef MIDAS_OPTIMIZER_MOEAD_H_
#define MIDAS_OPTIMIZER_MOEAD_H_

#include "optimizer/genetic_operators.h"
#include "optimizer/nsga2.h"

namespace midas {

struct MoeadOptions {
  /// Number of decomposition subproblems (== population size).
  size_t population_size = 100;
  size_t generations = 100;
  /// Neighbourhood size T: parents are drawn from, and updates applied
  /// to, each subproblem's T nearest weight vectors.
  size_t neighborhood = 20;
  SbxOptions crossover;
  MutationOptions mutation;
  uint64_t seed = 1;
};

/// \brief MOEA/D (Zhang & Li 2007; the paper's reference [36]) — a
/// decomposition-based alternative to the Pareto-dominance optimizers in
/// IReS' Multi-Objective Optimizer module.
///
/// The multi-objective problem is decomposed into `population_size`
/// scalar subproblems via the Tchebycheff approach over a uniform spread
/// of weight vectors; each generation evolves every subproblem using
/// parents from its weight-space neighbourhood and propagates improving
/// children to neighbouring subproblems. An external archive collects the
/// non-dominated solutions encountered, which are returned as the front.
///
/// Supports two objectives (the time/money MOQP case); more objectives
/// return Unimplemented.
class Moead {
 public:
  explicit Moead(MoeadOptions options = MoeadOptions());

  StatusOr<MooResult> Optimize(const MooProblem& problem) const;

  const MoeadOptions& options() const { return options_; }

 private:
  MoeadOptions options_;
};

/// Tchebycheff scalarisation: max_k w_k |f_k - z*_k| with the convention
/// that zero weights are replaced by a small epsilon (standard MOEA/D
/// practice, keeps boundary subproblems well-posed). Exposed for tests.
double TchebycheffCost(const Vector& objectives, const Vector& weights,
                       const Vector& ideal);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_MOEAD_H_
