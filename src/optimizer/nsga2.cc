#include "optimizer/nsga2.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "optimizer/pareto.h"

namespace midas {

std::vector<Vector> MooResult::FrontObjectives() const {
  std::vector<Vector> out;
  out.reserve(front.size());
  for (size_t i : front) out.push_back(population[i].objectives);
  return out;
}

std::vector<Vector> MooResult::FrontVariables() const {
  std::vector<Vector> out;
  out.reserve(front.size());
  for (size_t i : front) out.push_back(population[i].variables);
  return out;
}

void RankAndCrowd(std::vector<Individual>* population) {
  // Borrow the objective vectors in place: the sort and crowding passes
  // only read them, so there is no reason to copy every Vector per call.
  std::vector<const Vector*> costs;
  costs.reserve(population->size());
  for (const Individual& ind : *population) costs.push_back(&ind.objectives);
  const auto fronts = FastNonDominatedSort(costs);
  for (size_t f = 0; f < fronts.size(); ++f) {
    const std::vector<double> crowding = CrowdingDistances(costs, fronts[f]);
    for (size_t k = 0; k < fronts[f].size(); ++k) {
      (*population)[fronts[f][k]].rank = static_cast<int>(f);
      (*population)[fronts[f][k]].crowding = crowding[k];
    }
  }
}

std::vector<Individual> SelectByRankAndCrowding(std::vector<Individual> pool,
                                                size_t target) {
  RankAndCrowd(&pool);
  std::sort(pool.begin(), pool.end(),
            [](const Individual& a, const Individual& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.crowding > b.crowding;
            });
  if (pool.size() > target) pool.resize(target);
  return pool;
}

void GenerateOffspringPair(const MooProblem& problem,
                           const std::vector<Individual>& parents,
                           const SbxOptions& crossover,
                           const MutationOptions& mutation,
                           uint64_t stream_seed, size_t slot,
                           std::vector<Individual>* offspring) {
  Rng rng(stream_seed);
  const Individual& p1 = BinaryTournament(parents, &rng);
  const Individual& p2 = BinaryTournament(parents, &rng);
  auto [c1, c2] = SbxCrossover(problem, p1.variables, p2.variables,
                               crossover, &rng);
  const size_t first = 2 * slot;
  Individual o1;
  o1.variables = PolynomialMutation(problem, std::move(c1), mutation, &rng);
  o1.objectives = problem.Evaluate(o1.variables);
  (*offspring)[first] = std::move(o1);
  if (first + 1 < offspring->size()) {
    Individual o2;
    o2.variables = PolynomialMutation(problem, std::move(c2), mutation,
                                      &rng);
    o2.objectives = problem.Evaluate(o2.variables);
    (*offspring)[first + 1] = std::move(o2);
  }
}

Nsga2::Nsga2(Nsga2Options options) : options_(options) {}

StatusOr<MooResult> Nsga2::Optimize(const MooProblem& problem) const {
  if (options_.population_size < 4) {
    return Status::InvalidArgument("population must hold at least 4");
  }
  if (problem.num_variables() == 0 || problem.num_objectives() == 0) {
    return Status::InvalidArgument("degenerate problem");
  }
  Rng rng(options_.seed);

  std::vector<Individual> population;
  population.reserve(options_.population_size);
  for (size_t i = 0; i < options_.population_size; ++i) {
    population.push_back(RandomIndividual(problem, &rng));
  }
  RankAndCrowd(&population);

  const size_t pairs = (options_.population_size + 1) / 2;
  ParallelForOptions parallel;
  parallel.threads = options_.evaluation_threads;
  for (size_t gen = 0; gen < options_.generations; ++gen) {
    // Each offspring pair owns an RNG stream split from (seed, gen, slot)
    // and a fixed pair of result slots, so the batch can evaluate
    // concurrently yet lands bit-identical to the serial path.
    std::vector<Individual> offspring(options_.population_size);
    const uint64_t generation_seed = MixSeed(options_.seed, gen);
    MIDAS_RETURN_IF_ERROR(ParallelFor(
        pairs,
        [&](size_t slot) {
          GenerateOffspringPair(problem, population, options_.crossover,
                                options_.mutation,
                                MixSeed(generation_seed, slot), slot,
                                &offspring);
          return Status::OK();
        },
        parallel));
    // (μ+λ) elitism over the combined pool.
    std::vector<Individual> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    population = SelectByRankAndCrowding(std::move(pool),
                                         options_.population_size);
  }

  MooResult result;
  result.population = std::move(population);
  for (size_t i = 0; i < result.population.size(); ++i) {
    if (result.population[i].rank == 0) result.front.push_back(i);
  }
  return result;
}

}  // namespace midas
