#include "optimizer/nsga2.h"

#include <algorithm>

#include "optimizer/pareto.h"

namespace midas {

std::vector<Vector> MooResult::FrontObjectives() const {
  std::vector<Vector> out;
  out.reserve(front.size());
  for (size_t i : front) out.push_back(population[i].objectives);
  return out;
}

std::vector<Vector> MooResult::FrontVariables() const {
  std::vector<Vector> out;
  out.reserve(front.size());
  for (size_t i : front) out.push_back(population[i].variables);
  return out;
}

void RankAndCrowd(std::vector<Individual>* population) {
  std::vector<Vector> costs;
  costs.reserve(population->size());
  for (const Individual& ind : *population) costs.push_back(ind.objectives);
  const auto fronts = FastNonDominatedSort(costs);
  for (size_t f = 0; f < fronts.size(); ++f) {
    const std::vector<double> crowding = CrowdingDistances(costs, fronts[f]);
    for (size_t k = 0; k < fronts[f].size(); ++k) {
      (*population)[fronts[f][k]].rank = static_cast<int>(f);
      (*population)[fronts[f][k]].crowding = crowding[k];
    }
  }
}

std::vector<Individual> SelectByRankAndCrowding(std::vector<Individual> pool,
                                                size_t target) {
  RankAndCrowd(&pool);
  std::sort(pool.begin(), pool.end(),
            [](const Individual& a, const Individual& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.crowding > b.crowding;
            });
  if (pool.size() > target) pool.resize(target);
  return pool;
}

Nsga2::Nsga2(Nsga2Options options) : options_(options) {}

StatusOr<MooResult> Nsga2::Optimize(const MooProblem& problem) const {
  if (options_.population_size < 4) {
    return Status::InvalidArgument("population must hold at least 4");
  }
  if (problem.num_variables() == 0 || problem.num_objectives() == 0) {
    return Status::InvalidArgument("degenerate problem");
  }
  Rng rng(options_.seed);

  std::vector<Individual> population;
  population.reserve(options_.population_size);
  for (size_t i = 0; i < options_.population_size; ++i) {
    population.push_back(RandomIndividual(problem, &rng));
  }
  RankAndCrowd(&population);

  for (size_t gen = 0; gen < options_.generations; ++gen) {
    std::vector<Individual> offspring;
    offspring.reserve(options_.population_size);
    while (offspring.size() < options_.population_size) {
      const Individual& p1 = BinaryTournament(population, &rng);
      const Individual& p2 = BinaryTournament(population, &rng);
      auto [c1, c2] =
          SbxCrossover(problem, p1.variables, p2.variables,
                       options_.crossover, &rng);
      c1 = PolynomialMutation(problem, std::move(c1), options_.mutation,
                              &rng);
      c2 = PolynomialMutation(problem, std::move(c2), options_.mutation,
                              &rng);
      Individual o1;
      o1.variables = std::move(c1);
      o1.objectives = problem.Evaluate(o1.variables);
      offspring.push_back(std::move(o1));
      if (offspring.size() < options_.population_size) {
        Individual o2;
        o2.variables = std::move(c2);
        o2.objectives = problem.Evaluate(o2.variables);
        offspring.push_back(std::move(o2));
      }
    }
    // (μ+λ) elitism over the combined pool.
    std::vector<Individual> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    population = SelectByRankAndCrowding(std::move(pool),
                                         options_.population_size);
  }

  MooResult result;
  result.population = std::move(population);
  for (size_t i = 0; i < result.population.size(); ++i) {
    if (result.population[i].rank == 0) result.front.push_back(i);
  }
  return result;
}

}  // namespace midas
