#ifndef MIDAS_OPTIMIZER_NSGA2_H_
#define MIDAS_OPTIMIZER_NSGA2_H_

#include <vector>

#include "optimizer/genetic_operators.h"
#include "optimizer/problem.h"

namespace midas {

struct Nsga2Options {
  size_t population_size = 100;
  size_t generations = 100;
  SbxOptions crossover;
  MutationOptions mutation;
  uint64_t seed = 1;
};

/// \brief Result of a multi-objective evolutionary run: the final
/// population and its first non-dominated front.
struct MooResult {
  std::vector<Individual> population;
  /// Indices into `population` forming the final Pareto front.
  std::vector<size_t> front;

  /// Objective vectors of the front members.
  std::vector<Vector> FrontObjectives() const;
  /// Decision vectors of the front members.
  std::vector<Vector> FrontVariables() const;
};

/// \brief NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002) — the
/// multi-objective optimizer the paper plugs into IReS' Multi-Objective
/// Optimizer module: fast non-dominated sorting, crowding-distance
/// diversity, binary tournament selection, SBX crossover, polynomial
/// mutation, and (μ+λ) elitist environmental selection.
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Options options = Nsga2Options());

  StatusOr<MooResult> Optimize(const MooProblem& problem) const;

  const Nsga2Options& options() const { return options_; }

 private:
  Nsga2Options options_;
};

/// Assigns rank and crowding to every individual in place (exposed for the
/// NSGA-G variant and for tests).
void RankAndCrowd(std::vector<Individual>* population);

/// Elitist environmental selection: keeps the best `target` individuals by
/// (rank, crowding) from a combined parent+offspring pool.
std::vector<Individual> SelectByRankAndCrowding(
    std::vector<Individual> pool, size_t target);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_NSGA2_H_
