#ifndef MIDAS_OPTIMIZER_NSGA2_H_
#define MIDAS_OPTIMIZER_NSGA2_H_

#include <vector>

#include "optimizer/genetic_operators.h"
#include "optimizer/problem.h"

namespace midas {

struct Nsga2Options {
  size_t population_size = 100;
  size_t generations = 100;
  SbxOptions crossover;
  MutationOptions mutation;
  uint64_t seed = 1;
  /// Concurrent chunks for each generation's offspring batch (selection,
  /// variation and evaluation): 1 = inline serial (default), 0 = the
  /// process-wide default parallelism. Every offspring pair draws from its
  /// own RNG stream split deterministically from `seed`, so the result is
  /// bit-identical at any thread count. Problem::Evaluate must be
  /// thread-safe (const and free of shared mutable state) when != 1.
  size_t evaluation_threads = 1;
};

/// \brief Result of a multi-objective evolutionary run: the final
/// population and its first non-dominated front.
struct MooResult {
  std::vector<Individual> population;
  /// Indices into `population` forming the final Pareto front.
  std::vector<size_t> front;

  /// Objective vectors of the front members.
  std::vector<Vector> FrontObjectives() const;
  /// Decision vectors of the front members.
  std::vector<Vector> FrontVariables() const;
};

/// \brief NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002) — the
/// multi-objective optimizer the paper plugs into IReS' Multi-Objective
/// Optimizer module: fast non-dominated sorting, crowding-distance
/// diversity, binary tournament selection, SBX crossover, polynomial
/// mutation, and (μ+λ) elitist environmental selection.
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Options options = Nsga2Options());

  StatusOr<MooResult> Optimize(const MooProblem& problem) const;

  const Nsga2Options& options() const { return options_; }

 private:
  Nsga2Options options_;
};

/// Assigns rank and crowding to every individual in place (exposed for the
/// NSGA-G variant and for tests).
void RankAndCrowd(std::vector<Individual>* population);

/// Elitist environmental selection: keeps the best `target` individuals by
/// (rank, crowding) from a combined parent+offspring pool.
std::vector<Individual> SelectByRankAndCrowding(
    std::vector<Individual> pool, size_t target);

/// One offspring-pair work item of a generation, shared by NSGA-II and
/// NSGA-G: binary tournament ×2, SBX crossover and polynomial mutation, all
/// drawing from an Rng seeded with `stream_seed` only, then evaluation.
/// Slot s writes offspring indices 2s and (when < offspring->size()) 2s+1;
/// `offspring` must be pre-sized to the desired batch size. Because the
/// stream seed and the slots are functions of the position alone, a batch
/// of these items may run in any order — or concurrently — with
/// bit-identical results.
void GenerateOffspringPair(const MooProblem& problem,
                           const std::vector<Individual>& parents,
                           const SbxOptions& crossover,
                           const MutationOptions& mutation,
                           uint64_t stream_seed, size_t slot,
                           std::vector<Individual>* offspring);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_NSGA2_H_
