#include "optimizer/nsga_g.h"

#include <algorithm>
#include <map>

#include "common/thread_pool.h"
#include "optimizer/pareto.h"

namespace midas {

NsgaG::NsgaG(NsgaGOptions options) : options_(options) {}

std::vector<size_t> GridSelect(const std::vector<Vector>& objectives,
                               const std::vector<size_t>& front, size_t want,
                               size_t grid_divisions, Rng* rng) {
  if (want >= front.size()) return front;
  if (front.empty() || want == 0) return {};
  const size_t num_objectives = objectives[front[0]].size();

  // Normalisation ranges over the front.
  Vector lo(num_objectives, 0.0), hi(num_objectives, 0.0);
  for (size_t m = 0; m < num_objectives; ++m) {
    lo[m] = hi[m] = objectives[front[0]][m];
    for (size_t idx : front) {
      lo[m] = std::min(lo[m], objectives[idx][m]);
      hi[m] = std::max(hi[m], objectives[idx][m]);
    }
  }
  // Hash each member into its cell.
  std::map<std::vector<size_t>, std::vector<size_t>> cells;
  for (size_t idx : front) {
    std::vector<size_t> key(num_objectives, 0);
    for (size_t m = 0; m < num_objectives; ++m) {
      const double range = hi[m] - lo[m];
      double pos = range > 0.0 ? (objectives[idx][m] - lo[m]) / range : 0.0;
      size_t cell = static_cast<size_t>(pos * static_cast<double>(
                                                  grid_divisions));
      key[m] = std::min(cell, grid_divisions - 1);
    }
    cells[key].push_back(idx);
  }
  // Round-robin: draw one member from a random non-empty cell each step.
  std::vector<std::vector<size_t>> buckets;
  buckets.reserve(cells.size());
  for (auto& [key, members] : cells) buckets.push_back(std::move(members));
  std::vector<size_t> selected;
  selected.reserve(want);
  while (selected.size() < want) {
    const size_t b = rng->Index(buckets.size());
    if (buckets[b].empty()) continue;
    const size_t pick = rng->Index(buckets[b].size());
    selected.push_back(buckets[b][pick]);
    buckets[b].erase(buckets[b].begin() + static_cast<ptrdiff_t>(pick));
    // Drop exhausted buckets so the random draw always terminates.
    if (buckets[b].empty()) {
      buckets.erase(buckets.begin() + static_cast<ptrdiff_t>(b));
    }
  }
  return selected;
}

namespace {

std::vector<Individual> GridEnvironmentalSelection(
    std::vector<Individual> pool, size_t target, size_t grid_divisions,
    Rng* rng) {
  std::vector<Vector> costs;
  costs.reserve(pool.size());
  for (const Individual& ind : pool) costs.push_back(ind.objectives);
  const auto fronts = FastNonDominatedSort(costs);  // GridSelect needs costs

  std::vector<Individual> next;
  next.reserve(target);
  for (size_t f = 0; f < fronts.size() && next.size() < target; ++f) {
    const size_t room = target - next.size();
    std::vector<size_t> chosen =
        fronts[f].size() <= room
            ? fronts[f]
            : GridSelect(costs, fronts[f], room, grid_divisions, rng);
    for (size_t idx : chosen) {
      Individual ind = pool[idx];
      ind.rank = static_cast<int>(f);
      next.push_back(std::move(ind));
    }
  }
  return next;
}

}  // namespace

StatusOr<MooResult> NsgaG::Optimize(const MooProblem& problem) const {
  if (options_.population_size < 4) {
    return Status::InvalidArgument("population must hold at least 4");
  }
  if (options_.grid_divisions == 0) {
    return Status::InvalidArgument("grid_divisions must be positive");
  }
  if (problem.num_variables() == 0 || problem.num_objectives() == 0) {
    return Status::InvalidArgument("degenerate problem");
  }
  Rng rng(options_.seed);

  std::vector<Individual> population;
  population.reserve(options_.population_size);
  for (size_t i = 0; i < options_.population_size; ++i) {
    population.push_back(RandomIndividual(problem, &rng));
  }
  RankAndCrowd(&population);  // tournament still uses (rank, crowding)

  const size_t pairs = (options_.population_size + 1) / 2;
  ParallelForOptions parallel;
  parallel.threads = options_.evaluation_threads;
  for (size_t gen = 0; gen < options_.generations; ++gen) {
    // Offspring pairs draw from per-slot RNG streams (see nsga2.cc); the
    // master rng is reserved for the grid selection below, so the result
    // is independent of the thread count.
    std::vector<Individual> offspring(options_.population_size);
    const uint64_t generation_seed = MixSeed(options_.seed, gen);
    MIDAS_RETURN_IF_ERROR(ParallelFor(
        pairs,
        [&](size_t slot) {
          GenerateOffspringPair(problem, population, options_.crossover,
                                options_.mutation,
                                MixSeed(generation_seed, slot), slot,
                                &offspring);
          return Status::OK();
        },
        parallel));
    std::vector<Individual> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    population = GridEnvironmentalSelection(
        std::move(pool), options_.population_size, options_.grid_divisions,
        &rng);
    RankAndCrowd(&population);  // refresh crowding for the next tournament
  }

  MooResult result;
  result.population = std::move(population);
  for (size_t i = 0; i < result.population.size(); ++i) {
    if (result.population[i].rank == 0) result.front.push_back(i);
  }
  return result;
}

}  // namespace midas
