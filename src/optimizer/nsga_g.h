#ifndef MIDAS_OPTIMIZER_NSGA_G_H_
#define MIDAS_OPTIMIZER_NSGA_G_H_

#include "optimizer/nsga2.h"

namespace midas {

struct NsgaGOptions {
  size_t population_size = 100;
  size_t generations = 100;
  /// Grid divisions per objective used when splitting the last front.
  size_t grid_divisions = 8;
  SbxOptions crossover;
  MutationOptions mutation;
  uint64_t seed = 1;
  /// Concurrent chunks for each generation's offspring batch; same
  /// semantics and determinism guarantee as Nsga2Options. The grid-based
  /// environmental selection stays on the master RNG stream and is not
  /// affected by this knob.
  size_t evaluation_threads = 1;
};

/// \brief NSGA-G — the authors' grid-based NSGA variant (Le, Kantere,
/// d'Orazio, BPOD@BigData 2018; reference [22] of the paper, listed as a
/// future-work optimizer for MIDAS).
///
/// Identical to NSGA-II except for the environmental selection of the
/// front that does not fit entirely: instead of ranking its members by
/// crowding distance, the front is partitioned into a uniform grid over
/// normalised objective space and members are drawn one per randomly
/// chosen non-empty cell. This keeps spread with O(front) work instead of
/// the crowding sort.
class NsgaG {
 public:
  explicit NsgaG(NsgaGOptions options = NsgaGOptions());

  StatusOr<MooResult> Optimize(const MooProblem& problem) const;

  const NsgaGOptions& options() const { return options_; }

 private:
  NsgaGOptions options_;
};

/// Grid-based truncation of one front to `want` members (exposed for
/// tests): normalises the front's objectives, hashes members into
/// grid_divisions^K cells, then round-robins random non-empty cells.
std::vector<size_t> GridSelect(const std::vector<Vector>& objectives,
                               const std::vector<size_t>& front, size_t want,
                               size_t grid_divisions, Rng* rng);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_NSGA_G_H_
