#include "optimizer/pareto.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace midas {

namespace {

std::vector<const Vector*> BorrowAll(const std::vector<Vector>& costs) {
  std::vector<const Vector*> borrowed;
  borrowed.reserve(costs.size());
  for (const Vector& c : costs) borrowed.push_back(&c);
  return borrowed;
}

}  // namespace

bool WeaklyDominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool Dominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  bool strictly_better_somewhere = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool StrictlyDominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs) {
  return ParetoFrontIndices(costs, 1);
}

std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs,
                                       size_t threads) {
  // Membership of each point is an independent scan of the full set, so
  // the chunks write disjoint flag slots and the collected front is
  // identical at any thread count.
  std::vector<uint8_t> non_dominated(costs.size(), 0);
  ParallelForOptions options;
  options.threads = threads;
  const Status st = ParallelFor(
      costs.size(),
      [&costs, &non_dominated](size_t i) {
        bool dominated = false;
        for (size_t j = 0; j < costs.size(); ++j) {
          if (i != j && Dominates(costs[j], costs[i])) {
            dominated = true;
            break;
          }
        }
        non_dominated[i] = dominated ? 0 : 1;
        return Status::OK();
      },
      options);
  MIDAS_CHECK(st.ok()) << "ParetoFrontIndices: " << st.ToString();
  std::vector<size_t> front;
  for (size_t i = 0; i < costs.size(); ++i) {
    if (non_dominated[i] != 0) front.push_back(i);
  }
  return front;
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<Vector>& costs) {
  return FastNonDominatedSort(BorrowAll(costs));
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<const Vector*>& costs) {
  const size_t n = costs.size();
  std::vector<std::vector<size_t>> dominated_by(n);  // S_p
  std::vector<int> domination_count(n, 0);           // n_p
  std::vector<std::vector<size_t>> fronts;

  std::vector<size_t> first_front;
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (Dominates(*costs[p], *costs[q])) {
        dominated_by[p].push_back(q);
      } else if (Dominates(*costs[q], *costs[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) first_front.push_back(p);
  }
  if (first_front.empty()) return fronts;
  fronts.push_back(std::move(first_front));
  size_t i = 0;
  while (i < fronts.size()) {
    std::vector<size_t> next;
    for (size_t p : fronts[i]) {
      for (size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    if (!next.empty()) fronts.push_back(std::move(next));
    ++i;
  }
  return fronts;
}

std::vector<double> CrowdingDistances(const std::vector<Vector>& costs,
                                      const std::vector<size_t>& front) {
  return CrowdingDistances(BorrowAll(costs), front);
}

std::vector<double> CrowdingDistances(const std::vector<const Vector*>& costs,
                                      const std::vector<size_t>& front) {
  std::vector<double> distance(front.size(), 0.0);
  if (front.empty()) return distance;
  const size_t num_objectives = costs[front[0]]->size();
  std::vector<size_t> order(front.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t m = 0; m < num_objectives; ++m) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*costs[front[a]])[m] < (*costs[front[b]])[m];
    });
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    const double range =
        (*costs[front[order.back()]])[m] - (*costs[front[order.front()]])[m];
    if (range <= 0.0) continue;
    for (size_t k = 1; k + 1 < order.size(); ++k) {
      distance[order[k]] += ((*costs[front[order[k + 1]]])[m] -
                             (*costs[front[order[k - 1]]])[m]) /
                            range;
    }
  }
  return distance;
}

StatusOr<std::vector<size_t>> DomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples) {
  if (!p1 || !p2) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    if (WeaklyDominates(p1(parameter_samples[i]), p2(parameter_samples[i]))) {
      region.push_back(i);
    }
  }
  return region;
}

StatusOr<std::vector<size_t>> StriDomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples) {
  if (!p1 || !p2) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    if (StrictlyDominates(p1(parameter_samples[i]),
                          p2(parameter_samples[i]))) {
      region.push_back(i);
    }
  }
  return region;
}

StatusOr<std::vector<size_t>> ParetoRegion(
    const ParametricCost& plan,
    const std::vector<ParametricCost>& alternatives,
    const std::vector<Vector>& parameter_samples) {
  if (!plan) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    const Vector mine = plan(parameter_samples[i]);
    bool beaten = false;
    for (const ParametricCost& alt : alternatives) {
      if (!alt) return Status::InvalidArgument("null cost function");
      if (StrictlyDominates(alt(parameter_samples[i]), mine)) {
        beaten = true;
        break;
      }
    }
    if (!beaten) region.push_back(i);
  }
  return region;
}

}  // namespace midas
