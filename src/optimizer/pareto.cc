#include "optimizer/pareto.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace midas {

namespace {

std::vector<const Vector*> BorrowAll(const std::vector<Vector>& costs) {
  std::vector<const Vector*> borrowed;
  borrowed.reserve(costs.size());
  for (const Vector& c : costs) borrowed.push_back(&c);
  return borrowed;
}

bool LexLess(const Vector& a, const Vector& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// --- Jensen/Fortin divide-and-conquer non-dominated sort -------------------
//
// Operates on the *unique* cost vectors, sorted lexicographically
// ascending (all objectives minimised, so a vector can only be dominated
// by a lexicographically smaller one). Front numbers satisfy
// front(q) = 1 + max{front(p) : p dominates q} (0 if undominated), which
// is exactly the rank Deb's adjacency algorithm computes, so the two
// sorts agree bit for bit.

// b dominates a restricted to objectives [0..k]: b <= a everywhere on the
// prefix and b < a somewhere on it.
bool PrefixDominates(const Vector& b, const Vector& a, size_t k) {
  bool strict = false;
  for (size_t i = 0; i <= k; ++i) {
    if (b[i] > a[i]) return false;
    if (b[i] < a[i]) strict = true;
  }
  return strict;
}

// b <= a on every objective of [0..k]; an equal prefix counts. Used where
// the recursion already guarantees strictness on some higher objective.
bool PrefixWeaklyDominates(const Vector& b, const Vector& a, size_t k) {
  for (size_t i = 0; i <= k; ++i) {
    if (b[i] > a[i]) return false;
  }
  return true;
}

// Monotone staircase over (second objective, front number) pairs: keeps
// only the points that maximise the front number for a given bound on the
// second objective, so both coordinates are strictly increasing along the
// vector. MaxAtOrBelow answers "highest front among recorded points whose
// second objective is <= y" in O(log n).
class FrontStairs {
 public:
  int MaxAtOrBelow(double y) const {
    auto it = std::upper_bound(
        steps_.begin(), steps_.end(), y,
        [](double v, const std::pair<double, int>& s) { return v < s.first; });
    return it == steps_.begin() ? -1 : std::prev(it)->second;
  }

  void Add(double y, int f) {
    auto it = std::lower_bound(
        steps_.begin(), steps_.end(), y,
        [](const std::pair<double, int>& s, double v) { return s.first < v; });
    int current = it == steps_.begin() ? -1 : std::prev(it)->second;
    if (it != steps_.end() && it->first == y) {
      current = std::max(current, it->second);
    }
    if (current >= f) return;
    auto last = it;
    while (last != steps_.end() && last->second <= f) ++last;
    if (it != last) {
      *it = {y, f};
      steps_.erase(it + 1, last);
    } else {
      steps_.insert(it, {y, f});
    }
  }

 private:
  std::vector<std::pair<double, int>> steps_;
};

struct SortState {
  // Unique cost vectors in lexicographic ascending order.
  std::vector<const Vector*> points;
  // Front number per unique vector.
  std::vector<int> front;

  const Vector& P(size_t u) const { return *points[u]; }
  double Obj(size_t u, size_t k) const { return (*points[u])[k]; }
};

// Assigns fronts within `ids` considering only the first two objectives
// with standard (strict-somewhere) dominance. `ids` is in lexicographic
// order; points sharing an identical (f0, f1) prefix are processed as one
// run so they never count as dominating each other.
void SweepA(const std::vector<size_t>& ids, SortState* st) {
  FrontStairs stairs;
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i;
    while (j < ids.size() && st->Obj(ids[j], 0) == st->Obj(ids[i], 0) &&
           st->Obj(ids[j], 1) == st->Obj(ids[i], 1)) {
      ++j;
    }
    for (size_t r = i; r < j; ++r) {
      const int d = stairs.MaxAtOrBelow(st->Obj(ids[r], 1));
      if (d >= 0) st->front[ids[r]] = std::max(st->front[ids[r]], d + 1);
    }
    for (size_t r = i; r < j; ++r) {
      stairs.Add(st->Obj(ids[r], 1), st->front[ids[r]]);
    }
    i = j;
  }
}

// Pushes front bounds from `lids` (final front numbers) onto `hids` using
// *weak* dominance on the first two objectives: the callers guarantee
// every l beats every h strictly on some higher objective. Both lists are
// in lexicographic order, so a merge pointer feeds the staircase.
void SweepB(const std::vector<size_t>& lids, const std::vector<size_t>& hids,
            SortState* st) {
  FrontStairs stairs;
  size_t li = 0;
  for (size_t h : hids) {
    const double h0 = st->Obj(h, 0);
    const double h1 = st->Obj(h, 1);
    while (li < lids.size()) {
      const size_t l = lids[li];
      const double l0 = st->Obj(l, 0);
      if (!(l0 < h0 || (l0 == h0 && st->Obj(l, 1) <= h1))) break;
      stairs.Add(st->Obj(l, 1), st->front[l]);
      ++li;
    }
    const int d = stairs.MaxAtOrBelow(h1);
    if (d >= 0) st->front[h] = std::max(st->front[h], d + 1);
  }
}

// Median of objective k over `ids` (mean of the middle pair for even
// sizes, matching Fortin et al.'s reference split).
double MedianOf(const std::vector<size_t>& ids, size_t k,
                const SortState& st) {
  std::vector<double> values;
  values.reserve(ids.size());
  for (size_t u : ids) values.push_back(st.Obj(u, k));
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[(n - 1) / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

// Stable split of `ids` around the median of objective k. Ties on the
// pivot go to whichever side balances the split better (ties to `best`),
// so neither side can absorb everything unless all values are equal —
// which the caller rules out.
void SplitA(const std::vector<size_t>& ids, size_t k, const SortState& st,
            std::vector<size_t>* best, std::vector<size_t>* worst) {
  const double pivot = MedianOf(ids, k, st);
  size_t below = 0;
  size_t equal = 0;
  for (size_t u : ids) {
    const double v = st.Obj(u, k);
    below += v < pivot ? 1 : 0;
    equal += v == pivot ? 1 : 0;
  }
  const auto balance = [&](size_t best_size) {
    const size_t worst_size = ids.size() - best_size;
    return best_size >= worst_size ? best_size - worst_size
                                   : worst_size - best_size;
  };
  const bool ties_to_best = balance(below + equal) <= balance(below);
  for (size_t u : ids) {
    const double v = st.Obj(u, k);
    const bool to_best = v < pivot || (v == pivot && ties_to_best);
    (to_best ? best : worst)->push_back(u);
  }
}

// Stable split of both lists around the median (of the larger list) on
// objective k; "1" sides take the smaller values. Ties go to whichever
// option balances all four parts better (ties to the "1" sides).
void SplitB(const std::vector<size_t>& lids, const std::vector<size_t>& hids,
            size_t k, const SortState& st, std::vector<size_t>* l1,
            std::vector<size_t>* l2, std::vector<size_t>* h1,
            std::vector<size_t>* h2) {
  const double pivot =
      MedianOf(lids.size() > hids.size() ? lids : hids, k, st);
  long balance_a = 0;  // ties to the "1" (better) sides
  long balance_b = 0;  // ties to the "2" sides
  for (const std::vector<size_t>* ids : {&lids, &hids}) {
    for (size_t u : *ids) {
      const double v = st.Obj(u, k);
      balance_a += v < pivot || v == pivot ? 1 : -1;
      balance_b += v < pivot ? 1 : -1;
    }
  }
  const bool ties_to_one = std::labs(balance_a) <= std::labs(balance_b);
  for (size_t u : lids) {
    const double v = st.Obj(u, k);
    (v < pivot || (v == pivot && ties_to_one) ? l1 : l2)->push_back(u);
  }
  for (size_t u : hids) {
    const double v = st.Obj(u, k);
    (v < pivot || (v == pivot && ties_to_one) ? h1 : h2)->push_back(u);
  }
}

void SortA(const std::vector<size_t>& ids, size_t k, SortState* st);

// Raises front numbers of `hids` from the (already final) front numbers
// of `lids`, restricted to objectives [0..k] with weak dominance — every
// call site guarantees each l strictly beats each h on some objective
// above k, so a weak prefix match is full dominance.
void SortB(const std::vector<size_t>& lids, const std::vector<size_t>& hids,
           size_t k, SortState* st) {
  if (lids.empty() || hids.empty()) return;
  if (lids.size() == 1 || hids.size() == 1 || k == 0) {
    for (size_t h : hids) {
      for (size_t l : lids) {
        if (PrefixWeaklyDominates(st->P(l), st->P(h), k)) {
          st->front[h] = std::max(st->front[h], st->front[l] + 1);
        }
      }
    }
    return;
  }
  if (k == 1) {
    SweepB(lids, hids, st);
    return;
  }
  double lmin = st->Obj(lids[0], k);
  double lmax = lmin;
  for (size_t l : lids) {
    lmin = std::min(lmin, st->Obj(l, k));
    lmax = std::max(lmax, st->Obj(l, k));
  }
  double hmin = st->Obj(hids[0], k);
  double hmax = hmin;
  for (size_t h : hids) {
    hmin = std::min(hmin, st->Obj(h, k));
    hmax = std::max(hmax, st->Obj(h, k));
  }
  if (lmax <= hmin) {
    // Objective k never blocks domination: drop it.
    SortB(lids, hids, k - 1, st);
    return;
  }
  if (lmin <= hmax) {
    std::vector<size_t> l1, l2, h1, h2;
    SplitB(lids, hids, k, *st, &l1, &l2, &h1, &h2);
    SortB(l1, h1, k, st);
    SortB(l1, h2, k - 1, st);  // every l1 <= every h2 on objective k
    SortB(l2, h2, k, st);
    // (l2, h1) is skipped: every l2 > every h1 on objective k, so no
    // domination is possible across that pair.
  }
  // Else lmin > hmax: no l can weakly dominate any h on objective k.
}

// Assigns fronts within `ids` (lexicographic order) restricted to
// objectives [0..k] with standard dominance.
void SortA(const std::vector<size_t>& ids, size_t k, SortState* st) {
  if (ids.size() < 2) return;
  if (ids.size() == 2) {
    if (PrefixDominates(st->P(ids[0]), st->P(ids[1]), k)) {
      st->front[ids[1]] =
          std::max(st->front[ids[1]], st->front[ids[0]] + 1);
    }
    return;
  }
  if (k == 1) {
    SweepA(ids, st);
    return;
  }
  bool all_equal = true;
  for (size_t u : ids) {
    if (st->Obj(u, k) != st->Obj(ids[0], k)) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    SortA(ids, k - 1, st);
    return;
  }
  std::vector<size_t> best, worst;
  SplitA(ids, k, *st, &best, &worst);
  SortA(best, k, st);           // finalises fronts of the better half
  SortB(best, worst, k - 1, st);  // best strictly beats worst on k
  SortA(worst, k, st);
}

// Lexicographic order of all points with index tie-break, plus the
// mapping of every point onto its unique-vector id (ids numbered in
// lexicographic order of the unique vectors).
struct LexUnique {
  std::vector<size_t> representatives;  // original index per unique vector
  std::vector<size_t> unique_of;        // original index -> unique id
};

LexUnique LexSortUnique(const std::vector<const Vector*>& costs) {
  const size_t n = costs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (LexLess(*costs[a], *costs[b])) return true;
    if (LexLess(*costs[b], *costs[a])) return false;
    return a < b;
  });
  LexUnique out;
  out.unique_of.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t p = order[i];
    if (out.representatives.empty() ||
        *costs[p] != *costs[out.representatives.back()]) {
      out.representatives.push_back(p);
    }
    out.unique_of[p] = out.representatives.size() - 1;
  }
  return out;
}

// Kung's divide-and-conquer front extraction for three objectives over
// unique, lexicographically sorted points: the top half's front filters
// the bottom half through a (f1, prefix-min f2) staircase, O(u log² u).
void KungFront3(const std::vector<const Vector*>& points, size_t lo,
                size_t hi, std::vector<size_t>* result) {
  if (hi - lo == 1) {
    result->push_back(lo);
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  std::vector<size_t> top, bottom;
  KungFront3(points, lo, mid, &top);
  KungFront3(points, mid, hi, &bottom);
  // Staircase over the top survivors: f1 ascending, prefix-min of f2.
  // Any top point t has t0 <= b0 for every bottom point b (lexicographic
  // order), so t dominates b iff t1 <= b1 and t2 <= b2.
  std::vector<std::pair<double, double>> stairs;
  stairs.reserve(top.size());
  for (size_t t : top) stairs.push_back({(*points[t])[1], (*points[t])[2]});
  std::sort(stairs.begin(), stairs.end());
  double running = std::numeric_limits<double>::infinity();
  for (auto& s : stairs) {
    running = std::min(running, s.second);
    s.second = running;
  }
  result->insert(result->end(), top.begin(), top.end());
  for (size_t b : bottom) {
    const double b1 = (*points[b])[1];
    const double b2 = (*points[b])[2];
    auto it = std::upper_bound(
        stairs.begin(), stairs.end(), b1,
        [](double v, const std::pair<double, double>& s) {
          return v < s.first;
        });
    const bool dominated =
        it != stairs.begin() && std::prev(it)->second <= b2;
    if (!dominated) result->push_back(b);
  }
}

// O(n log n)-ish Pareto front for 1–3 objectives: dedup + lexicographic
// sweep (arity <= 2) or Kung's recursion (arity 3), then map the
// surviving unique vectors back onto all their duplicates, ascending.
std::vector<size_t> FrontByLexSweep(const std::vector<Vector>& costs) {
  const std::vector<const Vector*> borrowed = BorrowAll(costs);
  const LexUnique lex = LexSortUnique(borrowed);
  const size_t u = lex.representatives.size();
  const size_t arity = costs[0].size();
  std::vector<uint8_t> survives(u, 0);
  if (arity == 1) {
    survives[0] = 1;  // unique minimum
  } else if (arity == 2) {
    // A unique vector is dominated iff an earlier (lex-smaller) unique
    // vector has f1 <= its own: track the running minimum.
    double best_f1 = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < u; ++j) {
      const double f1 = (*borrowed[lex.representatives[j]])[1];
      if (f1 < best_f1) {
        survives[j] = 1;
        best_f1 = f1;
      }
    }
  } else {
    std::vector<const Vector*> points(u);
    for (size_t j = 0; j < u; ++j) {
      points[j] = borrowed[lex.representatives[j]];
    }
    std::vector<size_t> front_ids;
    KungFront3(points, 0, u, &front_ids);
    for (size_t j : front_ids) survives[j] = 1;
  }
  std::vector<size_t> front;
  for (size_t i = 0; i < costs.size(); ++i) {
    if (survives[lex.unique_of[i]] != 0) front.push_back(i);
  }
  return front;
}

}  // namespace

bool WeaklyDominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool Dominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  bool strictly_better_somewhere = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool StrictlyDominates(const Vector& a, const Vector& b) {
  MIDAS_CHECK(a.size() == b.size()) << "objective arity mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs) {
  return ParetoFrontIndices(costs, 1);
}

std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs,
                                       size_t threads) {
  if (costs.empty()) return {};
  const size_t arity = costs[0].size();
  for (const Vector& c : costs) {
    MIDAS_CHECK(c.size() == arity) << "objective arity mismatch";
  }
  if (arity >= 1 && arity <= 3) return FrontByLexSweep(costs);
  // Higher arities: membership of each point is an independent scan of
  // the full set, so the chunks write disjoint flag slots and the
  // collected front is identical at any thread count.
  std::vector<uint8_t> non_dominated(costs.size(), 0);
  ParallelForOptions options;
  options.threads = threads;
  const Status st = ParallelFor(
      costs.size(),
      [&costs, &non_dominated](size_t i) {
        bool dominated = false;
        for (size_t j = 0; j < costs.size(); ++j) {
          if (i != j && Dominates(costs[j], costs[i])) {
            dominated = true;
            break;
          }
        }
        non_dominated[i] = dominated ? 0 : 1;
        return Status::OK();
      },
      options);
  MIDAS_CHECK(st.ok()) << "ParetoFrontIndices: " << st.ToString();
  std::vector<size_t> front;
  for (size_t i = 0; i < costs.size(); ++i) {
    if (non_dominated[i] != 0) front.push_back(i);
  }
  return front;
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<Vector>& costs) {
  return FastNonDominatedSort(BorrowAll(costs));
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<const Vector*>& costs) {
  const size_t n = costs.size();
  std::vector<std::vector<size_t>> fronts;
  if (n == 0) return fronts;
  const size_t arity = costs[0]->size();
  for (const Vector* c : costs) {
    MIDAS_CHECK(c->size() == arity) << "objective arity mismatch";
  }
  if (arity == 0) {
    // Zero objectives: nothing dominates anything.
    fronts.emplace_back(n);
    std::iota(fronts[0].begin(), fronts[0].end(), size_t{0});
    return fronts;
  }

  const LexUnique lex = LexSortUnique(costs);
  const size_t u = lex.representatives.size();
  SortState st;
  st.points.resize(u);
  for (size_t j = 0; j < u; ++j) st.points[j] = costs[lex.representatives[j]];
  st.front.assign(u, 0);
  if (arity == 1) {
    // Dominance is a total order on the distinct values: the rank is the
    // position in the sorted unique list.
    for (size_t j = 0; j < u; ++j) st.front[j] = static_cast<int>(j);
  } else {
    std::vector<size_t> ids(u);
    std::iota(ids.begin(), ids.end(), size_t{0});
    SortA(ids, arity - 1, &st);
  }

  const int max_front = *std::max_element(st.front.begin(), st.front.end());
  fronts.resize(static_cast<size_t>(max_front) + 1);
  for (size_t i = 0; i < n; ++i) {
    fronts[st.front[lex.unique_of[i]]].push_back(i);
  }
  return fronts;
}

std::vector<std::vector<size_t>> NonDominatedSortNaive(
    const std::vector<Vector>& costs) {
  return NonDominatedSortNaive(BorrowAll(costs));
}

std::vector<std::vector<size_t>> NonDominatedSortNaive(
    const std::vector<const Vector*>& costs) {
  const size_t n = costs.size();
  std::vector<std::vector<size_t>> dominated_by(n);  // S_p
  std::vector<int> domination_count(n, 0);           // n_p
  std::vector<std::vector<size_t>> fronts;

  std::vector<size_t> first_front;
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (Dominates(*costs[p], *costs[q])) {
        dominated_by[p].push_back(q);
      } else if (Dominates(*costs[q], *costs[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) first_front.push_back(p);
  }
  if (first_front.empty()) return fronts;
  fronts.push_back(std::move(first_front));
  size_t i = 0;
  while (i < fronts.size()) {
    std::vector<size_t> next;
    for (size_t p : fronts[i]) {
      for (size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    if (!next.empty()) fronts.push_back(std::move(next));
    ++i;
  }
  // The propagation order above is arbitrary beyond the first front; sort
  // each layer so the oracle is directly comparable to the fast sort.
  for (std::vector<size_t>& front : fronts) {
    std::sort(front.begin(), front.end());
  }
  return fronts;
}

std::vector<double> CrowdingDistances(const std::vector<Vector>& costs,
                                      const std::vector<size_t>& front) {
  return CrowdingDistances(BorrowAll(costs), front);
}

std::vector<double> CrowdingDistances(const std::vector<const Vector*>& costs,
                                      const std::vector<size_t>& front) {
  std::vector<double> distance(front.size(), 0.0);
  if (front.empty()) return distance;
  const size_t num_objectives = costs[front[0]]->size();
  std::vector<size_t> order(front.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t m = 0; m < num_objectives; ++m) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*costs[front[a]])[m] < (*costs[front[b]])[m];
    });
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    const double range =
        (*costs[front[order.back()]])[m] - (*costs[front[order.front()]])[m];
    if (range <= 0.0) continue;
    for (size_t k = 1; k + 1 < order.size(); ++k) {
      distance[order[k]] += ((*costs[front[order[k + 1]]])[m] -
                             (*costs[front[order[k - 1]]])[m]) /
                            range;
    }
  }
  return distance;
}

StatusOr<std::vector<size_t>> DomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples) {
  if (!p1 || !p2) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    if (WeaklyDominates(p1(parameter_samples[i]), p2(parameter_samples[i]))) {
      region.push_back(i);
    }
  }
  return region;
}

StatusOr<std::vector<size_t>> StriDomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples) {
  if (!p1 || !p2) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    if (StrictlyDominates(p1(parameter_samples[i]),
                          p2(parameter_samples[i]))) {
      region.push_back(i);
    }
  }
  return region;
}

StatusOr<std::vector<size_t>> ParetoRegion(
    const ParametricCost& plan,
    const std::vector<ParametricCost>& alternatives,
    const std::vector<Vector>& parameter_samples) {
  if (!plan) return Status::InvalidArgument("null cost function");
  std::vector<size_t> region;
  for (size_t i = 0; i < parameter_samples.size(); ++i) {
    const Vector mine = plan(parameter_samples[i]);
    bool beaten = false;
    for (const ParametricCost& alt : alternatives) {
      if (!alt) return Status::InvalidArgument("null cost function");
      if (StrictlyDominates(alt(parameter_samples[i]), mine)) {
        beaten = true;
        break;
      }
    }
    if (!beaten) region.push_back(i);
  }
  return region;
}

}  // namespace midas
