#ifndef MIDAS_OPTIMIZER_PARETO_H_
#define MIDAS_OPTIMIZER_PARETO_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// All objectives are minimised throughout the optimizer library.

/// a weakly dominates b: a_n <= b_n for every metric (paper Eq. 1).
bool WeaklyDominates(const Vector& a, const Vector& b);

/// a dominates b in the standard Pareto sense: a <= b everywhere and
/// a < b somewhere.
bool Dominates(const Vector& a, const Vector& b);

/// a strictly dominates b: a_n < b_n for every metric (paper Eq. 3).
bool StrictlyDominates(const Vector& a, const Vector& b);

/// Indices of the non-dominated points of `costs` (the Pareto front),
/// ascending, using standard dominance. Duplicate cost vectors all
/// survive.
std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs);

/// Same front. For the 1–3 objective cases the paper's policies use
/// (time / money / latency trade-offs) the front is extracted by a
/// lexicographic sweep (2 objectives) or Kung's divide-and-conquer
/// (3 objectives) in O(n log n) / O(n log² n); higher arities fall back
/// to the O(n²) dominance scan split over `threads` concurrent chunks
/// (1 = serial, 0 = the process default). Every path returns the same
/// ascending index list at any thread count.
std::vector<size_t> ParetoFrontIndices(const std::vector<Vector>& costs,
                                       size_t threads);

/// Fast non-dominated sort: partitions all points into fronts; result[0]
/// is the Pareto front, result[1] the next layer, etc. Indices within a
/// front are ascending. Implemented as the Jensen/Fortin divide-and-
/// conquer sort (generalised sweep over lexicographically ordered unique
/// cost vectors, O(n log^(M-1) n)) — bit-identical in ranking to
/// `NonDominatedSortNaive` below, which is kept as the test oracle.
std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<Vector>& costs);

/// Zero-copy variant over borrowed objective vectors (callers holding
/// Individuals pass pointers instead of copying every objective vector
/// into a scratch array).
std::vector<std::vector<size_t>> FastNonDominatedSort(
    const std::vector<const Vector*>& costs);

/// Reference non-dominated sort (Deb et al. 2002): the O(n²) adjacency-
/// list algorithm, kept as the oracle the fast sort is tested against the
/// same way `MultiplyReferenceInto` anchors the blocked GEMM. Indices
/// within a front are ascending, so the result is directly comparable to
/// `FastNonDominatedSort`.
std::vector<std::vector<size_t>> NonDominatedSortNaive(
    const std::vector<Vector>& costs);

/// Zero-copy variant over borrowed objective vectors.
std::vector<std::vector<size_t>> NonDominatedSortNaive(
    const std::vector<const Vector*>& costs);

/// Crowding distance of each point within one front (Deb et al. 2002).
/// Boundary points get +infinity.
std::vector<double> CrowdingDistances(const std::vector<Vector>& costs,
                                      const std::vector<size_t>& front);

/// Zero-copy variant over borrowed objective vectors.
std::vector<double> CrowdingDistances(const std::vector<const Vector*>& costs,
                                      const std::vector<size_t>& front);

// --- Parametric definitions of §2.3 (after Trummer & Koch) -----------------
//
// Plans have parameter-dependent costs c_n(p, x). Over a finite sample X of
// the parameter space we can compute where one plan dominates another
// (Eq. 2) and each plan's Pareto region (Eq. 4).

/// Cost function of one plan: maps a parameter vector x to its cost vector.
using ParametricCost = std::function<Vector(const Vector& x)>;

/// Dom(p1, p2) of Eq. 2: the subset of `parameter_samples` where p1 weakly
/// dominates p2. Returns indices into `parameter_samples`.
StatusOr<std::vector<size_t>> DomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples);

/// StriDom(p1, p2) of Eq. 3 over the sample.
StatusOr<std::vector<size_t>> StriDomRegion(
    const ParametricCost& p1, const ParametricCost& p2,
    const std::vector<Vector>& parameter_samples);

/// PaReg(p) of Eq. 4: parameter samples where no alternative plan strictly
/// dominates `plan`. `alternatives` excludes (or may include) the plan
/// itself — a plan never strictly dominates itself, so either is safe.
StatusOr<std::vector<size_t>> ParetoRegion(
    const ParametricCost& plan, const std::vector<ParametricCost>& alternatives,
    const std::vector<Vector>& parameter_samples);

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_PARETO_H_
