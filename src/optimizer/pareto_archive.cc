#include "optimizer/pareto_archive.h"

#include <algorithm>

#include "optimizer/pareto.h"

namespace midas {

bool ParetoArchiveCore::Insert(Vector cost, std::vector<size_t>* evicted) {
  ++considered_;
  evicted->clear();
  if (member_set_.count(cost) != 0) {
    ++duplicate_rejections_;
    return false;
  }
  // Members are mutually non-dominated, so the newcomer cannot both be
  // dominated by one member and dominate another: the first dominator
  // found proves no eviction has been recorded yet.
  std::vector<size_t>& out = *evicted;
  for (size_t i = 0; i < costs_.size(); ++i) {
    if (Dominates(costs_[i], cost)) {
      ++dominated_rejections_;
      out.clear();
      return false;
    }
    if (Dominates(cost, costs_[i])) out.push_back(i);
  }
  if (!out.empty()) {
    for (size_t i : out) member_set_.erase(costs_[i]);
    size_t write = out.front();
    size_t next = 0;
    for (size_t read = write; read < costs_.size(); ++read) {
      if (next < out.size() && out[next] == read) {
        ++next;
        continue;
      }
      costs_[write++] = std::move(costs_[read]);
    }
    costs_.resize(write);
    evictions_ += out.size();
  }
  member_set_.insert(cost);
  costs_.push_back(std::move(cost));
  peak_size_ = std::max(peak_size_, costs_.size());
  return true;
}

std::vector<Vector> ParetoArchiveCore::TakeCosts() {
  member_set_.clear();
  std::vector<Vector> out = std::move(costs_);
  costs_.clear();
  return out;
}

void ParetoArchiveCore::Clear() {
  costs_.clear();
  member_set_.clear();
}

}  // namespace midas
