#include "optimizer/pareto_archive.h"

#include <algorithm>
#include <numeric>

#include "optimizer/pareto.h"

namespace midas {

bool ParetoArchiveCore::Insert(Vector cost, std::vector<size_t>* evicted) {
  size_t replaced_pos = 0;
  // With a monotone sequence an equal member always has a smaller
  // sequence, so kReplacedRepresentative cannot occur and the outcome
  // collapses to the historical accept/reject semantics.
  return InsertSequenced(std::move(cost), next_auto_seq_, evicted,
                         &replaced_pos) == SequencedInsert::kInserted;
}

ParetoArchiveCore::SequencedInsert ParetoArchiveCore::InsertSequenced(
    Vector cost, uint64_t seq, std::vector<size_t>* evicted,
    size_t* replaced_pos) {
  ++considered_;
  if (seq >= next_auto_seq_) next_auto_seq_ = seq + 1;
  evicted->clear();
  if (member_set_.count(cost) != 0) {
    // The bitwise-equal member is unique; find its position to compare
    // sequences (O(front), same bound as the dominance pass below).
    const auto it = std::find(costs_.begin(), costs_.end(), cost);
    const size_t pos = static_cast<size_t>(it - costs_.begin());
    if (seqs_[pos] <= seq) {
      ++duplicate_rejections_;
      return SequencedInsert::kRejectedDuplicate;
    }
    seqs_[pos] = seq;
    *replaced_pos = pos;
    ++duplicate_replacements_;
    return SequencedInsert::kReplacedRepresentative;
  }
  // Members are mutually non-dominated, so the newcomer cannot both be
  // dominated by one member and dominate another: the first dominator
  // found proves no eviction has been recorded yet.
  std::vector<size_t>& out = *evicted;
  for (size_t i = 0; i < costs_.size(); ++i) {
    if (Dominates(costs_[i], cost)) {
      ++dominated_rejections_;
      out.clear();
      return SequencedInsert::kRejectedDominated;
    }
    if (Dominates(cost, costs_[i])) out.push_back(i);
  }
  if (!out.empty()) {
    for (size_t i : out) member_set_.erase(costs_[i]);
    size_t write = out.front();
    size_t next = 0;
    for (size_t read = write; read < costs_.size(); ++read) {
      if (next < out.size() && out[next] == read) {
        ++next;
        continue;
      }
      costs_[write] = std::move(costs_[read]);
      seqs_[write] = seqs_[read];
      ++write;
    }
    costs_.resize(write);
    seqs_.resize(write);
    evictions_ += out.size();
  }
  member_set_.insert(cost);
  costs_.push_back(std::move(cost));
  seqs_.push_back(seq);
  peak_size_ = std::max(peak_size_, costs_.size());
  return SequencedInsert::kInserted;
}

std::vector<Vector> ParetoArchiveCore::TakeCosts() {
  member_set_.clear();
  std::vector<Vector> out = std::move(costs_);
  costs_.clear();
  seqs_.clear();
  return out;
}

void ParetoArchiveCore::TakeMembers(std::vector<Vector>* costs,
                                    std::vector<uint64_t>* seqs) {
  member_set_.clear();
  *costs = std::move(costs_);
  *seqs = std::move(seqs_);
  costs_.clear();
  seqs_.clear();
}

void ParetoArchiveCore::SortBySequence(std::vector<size_t>* permutation) {
  std::vector<size_t> order(costs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](size_t a, size_t b) { return seqs_[a] < seqs_[b]; });
  std::vector<Vector> costs;
  std::vector<uint64_t> seqs;
  costs.reserve(order.size());
  seqs.reserve(order.size());
  for (size_t from : order) {
    costs.push_back(std::move(costs_[from]));
    seqs.push_back(seqs_[from]);
  }
  costs_ = std::move(costs);
  seqs_ = std::move(seqs);
  if (permutation != nullptr) *permutation = std::move(order);
}

void ParetoArchiveCore::Clear() {
  costs_.clear();
  seqs_.clear();
  member_set_.clear();
}

}  // namespace midas
