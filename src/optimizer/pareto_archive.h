#ifndef MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_
#define MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief Online Pareto archive over cost vectors (all objectives
/// minimised): the streaming counterpart of `ParetoFrontIndices` +
/// first-representative dedup.
///
/// Feeding every candidate of a set through `Insert` in order leaves the
/// archive holding exactly the distinct non-dominated cost vectors, each
/// represented by its *first* occurrence and kept in arrival order — the
/// same (plan, cost) sequence the materialize-everything pipeline
/// produces, but with O(front) resident state instead of O(candidates).
///
/// Insert semantics:
///  - a cost bitwise equal to a member is rejected (hashed O(1) dedup,
///    `VectorHash`), keeping the earlier representative;
///  - a cost dominated by any member is rejected;
///  - otherwise the cost is appended and every member it dominates is
///    evicted, preserving the relative order of the survivors.
///
/// Each insert is O(archive size); the archive never holds a dominated
/// point, so the peak working set of a streaming pass is bounded by
/// O(max front + chunk).
class ParetoArchiveCore {
 public:
  /// Attempts to add `cost`. Returns true and appends it if it joins the
  /// archive; `evicted` then holds the ascending positions (in the
  /// pre-insert member order) of the members it displaced, so a caller
  /// tracking parallel payloads can mirror the removal. On a false
  /// return (duplicate or dominated) the archive is untouched and
  /// `evicted` is left empty.
  bool Insert(Vector cost, std::vector<size_t>* evicted);

  /// Members in arrival order (mutually non-dominated, distinct).
  const std::vector<Vector>& costs() const { return costs_; }
  size_t size() const { return costs_.size(); }
  bool empty() const { return costs_.empty(); }

  /// Moves the members out and resets the archive (stats survive).
  std::vector<Vector> TakeCosts();

  void Clear();

  /// High-water mark of the member count.
  size_t peak_size() const { return peak_size_; }
  /// Total costs offered to Insert.
  uint64_t considered() const { return considered_; }
  /// Rejected as bitwise duplicates of a member.
  uint64_t duplicate_rejections() const { return duplicate_rejections_; }
  /// Rejected as dominated by a member.
  uint64_t dominated_rejections() const { return dominated_rejections_; }
  /// Members displaced by later inserts.
  uint64_t evictions() const { return evictions_; }

 private:
  std::vector<Vector> costs_;
  std::unordered_set<Vector, VectorHash> member_set_;
  size_t peak_size_ = 0;
  uint64_t considered_ = 0;
  uint64_t duplicate_rejections_ = 0;
  uint64_t dominated_rejections_ = 0;
  uint64_t evictions_ = 0;
};

/// \brief `ParetoArchiveCore` plus a payload carried alongside every cost
/// (the physical plan that produced it): payloads ride through the same
/// insert/evict lifecycle, so `payloads()[i]` always corresponds to
/// `costs()[i]`.
template <typename Payload>
class ParetoArchive {
 public:
  /// Returns true iff the (cost, payload) pair joined the archive.
  bool Insert(Vector cost, Payload payload) {
    evicted_.clear();
    if (!core_.Insert(std::move(cost), &evicted_)) return false;
    if (!evicted_.empty()) {
      size_t write = evicted_.front();
      size_t next = 0;
      for (size_t read = write; read < payloads_.size(); ++read) {
        if (next < evicted_.size() && evicted_[next] == read) {
          ++next;
          continue;
        }
        payloads_[write++] = std::move(payloads_[read]);
      }
      payloads_.resize(write);
    }
    payloads_.push_back(std::move(payload));
    return true;
  }

  const std::vector<Vector>& costs() const { return core_.costs(); }
  const std::vector<Payload>& payloads() const { return payloads_; }
  size_t size() const { return core_.size(); }
  bool empty() const { return core_.empty(); }

  /// Moves the members out (costs and payloads stay index-aligned) and
  /// resets the archive; stats survive.
  std::vector<Vector> TakeCosts() { return core_.TakeCosts(); }
  std::vector<Payload> TakePayloads() { return std::move(payloads_); }

  void Clear() {
    core_.Clear();
    payloads_.clear();
  }

  size_t peak_size() const { return core_.peak_size(); }
  uint64_t considered() const { return core_.considered(); }
  uint64_t duplicate_rejections() const {
    return core_.duplicate_rejections();
  }
  uint64_t dominated_rejections() const {
    return core_.dominated_rejections();
  }
  uint64_t evictions() const { return core_.evictions(); }

 private:
  ParetoArchiveCore core_;
  std::vector<Payload> payloads_;
  std::vector<size_t> evicted_;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_
