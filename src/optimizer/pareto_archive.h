#ifndef MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_
#define MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief Online Pareto archive over cost vectors (all objectives
/// minimised): the streaming counterpart of `ParetoFrontIndices` +
/// first-representative dedup.
///
/// Feeding every candidate of a set through `Insert` in order leaves the
/// archive holding exactly the distinct non-dominated cost vectors, each
/// represented by its *first* occurrence and kept in arrival order — the
/// same (plan, cost) sequence the materialize-everything pipeline
/// produces, but with O(front) resident state instead of O(candidates).
///
/// Insert semantics:
///  - a cost bitwise equal to a member is rejected (hashed O(1) dedup,
///    `VectorHash`), keeping the earlier representative;
///  - a cost dominated by any member is rejected;
///  - otherwise the cost is appended and every member it dominates is
///    evicted, preserving the relative order of the survivors.
///
/// Each insert is O(archive size); the archive never holds a dominated
/// point, so the peak working set of a streaming pass is bounded by
/// O(max front + chunk).
///
/// Every member also carries a sequence number — its global arrival rank
/// in the candidate stream. `Insert` assigns sequences from an internal
/// monotone counter; `InsertSequenced` takes an explicit rank so disjoint
/// shards of one stream can fold into independent archives and later be
/// recombined with `MergeFrom`. Dedup under explicit sequences is
/// *dedup-stable*: of two bitwise-equal costs the one with the smaller
/// sequence wins regardless of insertion order, which together with the
/// transitivity of dominance makes merging associative and commutative —
/// any merge tree over any partition of the stream yields the same member
/// set, and `SortBySequence` then reproduces the serial arrival order
/// exactly.
class ParetoArchiveCore {
 public:
  /// Outcome of a sequenced insertion attempt.
  enum class SequencedInsert {
    /// The cost joined the archive (possibly evicting members).
    kInserted,
    /// A bitwise-equal member existed with a larger sequence; the member
    /// kept its position but adopted the smaller incoming sequence.
    kReplacedRepresentative,
    /// A bitwise-equal member existed with a smaller-or-equal sequence.
    kRejectedDuplicate,
    /// A member dominates the cost.
    kRejectedDominated,
  };

  /// Attempts to add `cost`. Returns true and appends it if it joins the
  /// archive; `evicted` then holds the ascending positions (in the
  /// pre-insert member order) of the members it displaced, so a caller
  /// tracking parallel payloads can mirror the removal. On a false
  /// return (duplicate or dominated) the archive is untouched and
  /// `evicted` is left empty. The member's sequence is the next value of
  /// the internal arrival counter (which counts every offer, accepted or
  /// not, so sequences match candidate-stream ranks).
  bool Insert(Vector cost, std::vector<size_t>* evicted);

  /// `Insert` with an explicit global sequence number. On
  /// `kReplacedRepresentative`, `*replaced_pos` is the member position
  /// whose sequence (and, for payload-carrying wrappers, payload) must be
  /// swapped for the incoming one; on every other outcome it is left
  /// untouched. `evicted` is filled exactly as for `Insert` and is empty
  /// unless the outcome is `kInserted`.
  SequencedInsert InsertSequenced(Vector cost, uint64_t seq,
                                  std::vector<size_t>* evicted,
                                  size_t* replaced_pos);

  /// Members in arrival order (mutually non-dominated, distinct).
  const std::vector<Vector>& costs() const { return costs_; }
  /// Sequence numbers aligned with `costs()`.
  const std::vector<uint64_t>& seqs() const { return seqs_; }
  size_t size() const { return costs_.size(); }
  bool empty() const { return costs_.empty(); }

  /// Moves the members out and resets the archive (stats survive).
  std::vector<Vector> TakeCosts();

  /// Moves costs and their aligned sequences out and resets the archive
  /// (stats survive).
  void TakeMembers(std::vector<Vector>* costs, std::vector<uint64_t>* seqs);

  /// Reorders the members ascending by sequence number (ties keep their
  /// current relative order). When `permutation` is non-null it receives
  /// the applied ordering: new position i holds the member formerly at
  /// `(*permutation)[i]`, so wrappers can mirror the reorder onto
  /// payloads.
  void SortBySequence(std::vector<size_t>* permutation = nullptr);

  void Clear();

  /// High-water mark of the member count.
  size_t peak_size() const { return peak_size_; }
  /// Total costs offered to Insert.
  uint64_t considered() const { return considered_; }
  /// Rejected as bitwise duplicates of a member.
  uint64_t duplicate_rejections() const { return duplicate_rejections_; }
  /// Rejected as bitwise duplicates but with a smaller sequence, so the
  /// member adopted the incoming sequence (and payload) in place.
  uint64_t duplicate_replacements() const { return duplicate_replacements_; }
  /// Rejected as dominated by a member.
  uint64_t dominated_rejections() const { return dominated_rejections_; }
  /// Members displaced by later inserts.
  uint64_t evictions() const { return evictions_; }

 private:
  std::vector<Vector> costs_;
  std::vector<uint64_t> seqs_;
  std::unordered_set<Vector, VectorHash> member_set_;
  uint64_t next_auto_seq_ = 0;
  size_t peak_size_ = 0;
  uint64_t considered_ = 0;
  uint64_t duplicate_rejections_ = 0;
  uint64_t duplicate_replacements_ = 0;
  uint64_t dominated_rejections_ = 0;
  uint64_t evictions_ = 0;
};

/// \brief `ParetoArchiveCore` plus a payload carried alongside every cost
/// (the physical plan that produced it): payloads ride through the same
/// insert/evict/replace lifecycle, so `payloads()[i]` always corresponds
/// to `costs()[i]`.
template <typename Payload>
class ParetoArchive {
 public:
  /// Returns true iff the (cost, payload) pair joined the archive.
  bool Insert(Vector cost, Payload payload) {
    evicted_.clear();
    if (!core_.Insert(std::move(cost), &evicted_)) return false;
    CompactEvicted();
    payloads_.push_back(std::move(payload));
    return true;
  }

  /// `Insert` with an explicit global sequence number (see
  /// `ParetoArchiveCore::InsertSequenced`). Returns true iff the archive
  /// changed: the pair joined, or a bitwise-equal member with a larger
  /// sequence handed its slot to this earlier representative.
  bool InsertSequenced(Vector cost, uint64_t seq, Payload payload) {
    evicted_.clear();
    size_t replaced_pos = 0;
    switch (core_.InsertSequenced(std::move(cost), seq, &evicted_,
                                  &replaced_pos)) {
      case ParetoArchiveCore::SequencedInsert::kRejectedDuplicate:
      case ParetoArchiveCore::SequencedInsert::kRejectedDominated:
        return false;
      case ParetoArchiveCore::SequencedInsert::kReplacedRepresentative:
        payloads_[replaced_pos] = std::move(payload);
        return true;
      case ParetoArchiveCore::SequencedInsert::kInserted:
        break;
    }
    CompactEvicted();
    payloads_.push_back(std::move(payload));
    return true;
  }

  /// Drains `other` into this archive via sequenced inserts. Dedup
  /// stability (smaller sequence wins) and transitivity of dominance make
  /// the operation associative and commutative on the member set: merging
  /// shard archives in any tree shape yields the same members, ready for
  /// `SortBySequence`. Only members move — `other`'s lifetime counters
  /// (considered/evictions/peaks) stay behind, so read per-shard stats
  /// *before* merging; this archive counts each incoming member as one
  /// offered insert.
  void MergeFrom(ParetoArchive&& other) {
    std::vector<Vector> costs;
    std::vector<uint64_t> seqs;
    other.core_.TakeMembers(&costs, &seqs);
    std::vector<Payload> payloads = std::move(other.payloads_);
    other.payloads_.clear();
    for (size_t i = 0; i < costs.size(); ++i) {
      InsertSequenced(std::move(costs[i]), seqs[i], std::move(payloads[i]));
    }
  }

  /// Folds `archives` into one with a deterministic balanced merge tree
  /// (pairwise rounds, halving each round); returns an empty archive for
  /// empty input. The result's member set is independent of the tree
  /// shape — the tree only balances merge work.
  static ParetoArchive MergeTree(std::vector<ParetoArchive>&& archives) {
    if (archives.empty()) return ParetoArchive();
    size_t count = archives.size();
    while (count > 1) {
      const size_t half = (count + 1) / 2;
      for (size_t i = 0; i + half < count; ++i) {
        archives[i].MergeFrom(std::move(archives[i + half]));
      }
      count = half;
    }
    return std::move(archives.front());
  }

  /// Reorders members (and their payloads) ascending by sequence number.
  void SortBySequence() {
    std::vector<size_t> permutation;
    core_.SortBySequence(&permutation);
    std::vector<Payload> sorted;
    sorted.reserve(payloads_.size());
    for (size_t from : permutation) sorted.push_back(std::move(payloads_[from]));
    payloads_ = std::move(sorted);
  }

  const std::vector<Vector>& costs() const { return core_.costs(); }
  const std::vector<uint64_t>& seqs() const { return core_.seqs(); }
  const std::vector<Payload>& payloads() const { return payloads_; }
  size_t size() const { return core_.size(); }
  bool empty() const { return core_.empty(); }

  /// Moves the members out (costs and payloads stay index-aligned) and
  /// resets the archive; stats survive.
  std::vector<Vector> TakeCosts() { return core_.TakeCosts(); }
  std::vector<Payload> TakePayloads() { return std::move(payloads_); }

  void Clear() {
    core_.Clear();
    payloads_.clear();
  }

  size_t peak_size() const { return core_.peak_size(); }
  uint64_t considered() const { return core_.considered(); }
  uint64_t duplicate_rejections() const {
    return core_.duplicate_rejections();
  }
  uint64_t duplicate_replacements() const {
    return core_.duplicate_replacements();
  }
  uint64_t dominated_rejections() const {
    return core_.dominated_rejections();
  }
  uint64_t evictions() const { return core_.evictions(); }

 private:
  /// Mirrors the core's latest eviction list onto `payloads_` with the
  /// same stable compaction.
  void CompactEvicted() {
    if (evicted_.empty()) return;
    size_t write = evicted_.front();
    size_t next = 0;
    for (size_t read = write; read < payloads_.size(); ++read) {
      if (next < evicted_.size() && evicted_[next] == read) {
        ++next;
        continue;
      }
      payloads_[write++] = std::move(payloads_[read]);
    }
    payloads_.resize(write);
  }

  ParetoArchiveCore core_;
  std::vector<Payload> payloads_;
  std::vector<size_t> evicted_;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_PARETO_ARCHIVE_H_
