#include "optimizer/problem.h"

#include <algorithm>
#include <cmath>

namespace midas {

Vector MooProblem::ClampToBounds(Vector x) const {
  for (size_t i = 0; i < x.size() && i < num_variables(); ++i) {
    auto [lo, hi] = bounds(i);
    x[i] = std::clamp(x[i], lo, hi);
  }
  return x;
}

namespace {
double ZdtG(const Vector& x) {
  double sum = 0.0;
  for (size_t i = 1; i < x.size(); ++i) sum += x[i];
  return 1.0 + 9.0 * sum / static_cast<double>(x.size() - 1);
}
}  // namespace

Vector Zdt1::Evaluate(const Vector& x) const {
  const double f1 = x[0];
  const double g = ZdtG(x);
  const double f2 = g * (1.0 - std::sqrt(f1 / g));
  return {f1, f2};
}

Vector Zdt2::Evaluate(const Vector& x) const {
  const double f1 = x[0];
  const double g = ZdtG(x);
  const double f2 = g * (1.0 - (f1 / g) * (f1 / g));
  return {f1, f2};
}

Vector Zdt3::Evaluate(const Vector& x) const {
  const double f1 = x[0];
  const double g = ZdtG(x);
  const double ratio = f1 / g;
  const double f2 =
      g * (1.0 - std::sqrt(ratio) - ratio * std::sin(10.0 * M_PI * f1));
  return {f1, f2};
}

Vector Schaffer::Evaluate(const Vector& x) const {
  const double v = x[0];
  return {v * v, (v - 2.0) * (v - 2.0)};
}

}  // namespace midas
