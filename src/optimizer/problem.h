#ifndef MIDAS_OPTIMIZER_PROBLEM_H_
#define MIDAS_OPTIMIZER_PROBLEM_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// \brief A box-constrained multi-objective minimisation problem
/// (Eq. 13: minimise F(x) = (f_1(x), ..., f_K(x)) over x ∈ Ω ⊆ R^L).
class MooProblem {
 public:
  virtual ~MooProblem() = default;

  virtual std::string name() const = 0;
  virtual size_t num_variables() const = 0;
  virtual size_t num_objectives() const = 0;

  /// Inclusive [lower, upper] bound of decision variable `var`.
  virtual std::pair<double, double> bounds(size_t var) const = 0;

  /// Objective vector at x (length num_variables()). Implementations may
  /// assume x is within bounds.
  virtual Vector Evaluate(const Vector& x) const = 0;

  /// Clamps x into the box (helper for genetic operators).
  Vector ClampToBounds(Vector x) const;
};

// --- Standard benchmark problems used to validate the optimizers -----------

/// ZDT1: convex Pareto front f2 = 1 - sqrt(f1) on [0,1]^n.
class Zdt1 : public MooProblem {
 public:
  explicit Zdt1(size_t num_variables = 30) : n_(num_variables) {}
  std::string name() const override { return "ZDT1"; }
  size_t num_variables() const override { return n_; }
  size_t num_objectives() const override { return 2; }
  std::pair<double, double> bounds(size_t) const override { return {0, 1}; }
  Vector Evaluate(const Vector& x) const override;

 private:
  size_t n_;
};

/// ZDT2: non-convex front f2 = 1 - f1^2 — the case where the Weighted Sum
/// Model provably misses solutions (§2.6 motivation).
class Zdt2 : public MooProblem {
 public:
  explicit Zdt2(size_t num_variables = 30) : n_(num_variables) {}
  std::string name() const override { return "ZDT2"; }
  size_t num_variables() const override { return n_; }
  size_t num_objectives() const override { return 2; }
  std::pair<double, double> bounds(size_t) const override { return {0, 1}; }
  Vector Evaluate(const Vector& x) const override;

 private:
  size_t n_;
};

/// ZDT3: disconnected front.
class Zdt3 : public MooProblem {
 public:
  explicit Zdt3(size_t num_variables = 30) : n_(num_variables) {}
  std::string name() const override { return "ZDT3"; }
  size_t num_variables() const override { return n_; }
  size_t num_objectives() const override { return 2; }
  std::pair<double, double> bounds(size_t) const override { return {0, 1}; }
  Vector Evaluate(const Vector& x) const override;

 private:
  size_t n_;
};

/// Schaffer's single-variable problem: f1 = x², f2 = (x-2)². Tiny and
/// convex; handy for fast unit tests.
class Schaffer : public MooProblem {
 public:
  std::string name() const override { return "Schaffer"; }
  size_t num_variables() const override { return 1; }
  size_t num_objectives() const override { return 2; }
  std::pair<double, double> bounds(size_t) const override {
    return {-3.0, 5.0};
  }
  Vector Evaluate(const Vector& x) const override;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_PROBLEM_H_
