#include "optimizer/spea2.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimizer/pareto.h"

namespace midas {

namespace {

// Squared Euclidean distance in objective space.
double Distance2(const Vector& a, const Vector& b) {
  double d2 = 0.0;
  for (size_t m = 0; m < a.size(); ++m) {
    d2 += (a[m] - b[m]) * (a[m] - b[m]);
  }
  return d2;
}

// SPEA2 fitness: raw dominated-strength sum + kth-nearest density.
// Lower is better; values < 1 mark non-dominated individuals.
std::vector<double> ComputeFitness(const std::vector<Individual>& pool) {
  const size_t n = pool.size();
  std::vector<int> strength(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && Dominates(pool[i].objectives, pool[j].objectives)) {
        ++strength[i];
      }
    }
  }
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(n))));
  std::vector<double> fitness(n, 0.0);
  std::vector<double> distances;
  distances.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double raw = 0.0;
    distances.clear();
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates(pool[j].objectives, pool[i].objectives)) {
        raw += strength[j];
      }
      distances.push_back(Distance2(pool[i].objectives, pool[j].objectives));
    }
    double sigma_k = 0.0;
    if (!distances.empty()) {
      const size_t idx = std::min(k, distances.size()) - 1;
      std::nth_element(distances.begin(),
                       distances.begin() + static_cast<ptrdiff_t>(idx),
                       distances.end());
      sigma_k = std::sqrt(distances[idx]);
    }
    fitness[i] = raw + 1.0 / (sigma_k + 2.0);
  }
  return fitness;
}

// Environmental selection: the non-dominated set, truncated by removing
// the member with the smallest nearest-neighbour distance while too big,
// or topped up with the best dominated members while too small.
std::vector<Individual> EnvironmentalSelection(
    const std::vector<Individual>& pool, const std::vector<double>& fitness,
    size_t target) {
  std::vector<size_t> chosen;
  std::vector<size_t> rest;
  for (size_t i = 0; i < pool.size(); ++i) {
    (fitness[i] < 1.0 ? chosen : rest).push_back(i);
  }
  if (chosen.size() < target) {
    std::sort(rest.begin(), rest.end(), [&fitness](size_t a, size_t b) {
      return fitness[a] < fitness[b];
    });
    for (size_t i : rest) {
      if (chosen.size() >= target) break;
      chosen.push_back(i);
    }
  }
  while (chosen.size() > target) {
    // Remove the individual with the smallest distance to its nearest
    // surviving neighbour (ties resolved by the second-nearest, which the
    // simple min here approximates).
    size_t victim = 0;
    double smallest = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < chosen.size(); ++a) {
      double nearest = std::numeric_limits<double>::infinity();
      for (size_t b = 0; b < chosen.size(); ++b) {
        if (a == b) continue;
        nearest = std::min(nearest, Distance2(pool[chosen[a]].objectives,
                                              pool[chosen[b]].objectives));
      }
      if (nearest < smallest) {
        smallest = nearest;
        victim = a;
      }
    }
    chosen.erase(chosen.begin() + static_cast<ptrdiff_t>(victim));
  }
  std::vector<Individual> archive;
  archive.reserve(chosen.size());
  for (size_t i : chosen) archive.push_back(pool[i]);
  return archive;
}

}  // namespace

Spea2::Spea2(Spea2Options options) : options_(options) {}

StatusOr<MooResult> Spea2::Optimize(const MooProblem& problem) const {
  if (options_.population_size < 4 || options_.archive_size < 4) {
    return Status::InvalidArgument(
        "population and archive must hold at least 4");
  }
  if (problem.num_variables() == 0 || problem.num_objectives() == 0) {
    return Status::InvalidArgument("degenerate problem");
  }
  Rng rng(options_.seed);

  std::vector<Individual> population;
  population.reserve(options_.population_size);
  for (size_t i = 0; i < options_.population_size; ++i) {
    population.push_back(RandomIndividual(problem, &rng));
  }
  std::vector<Individual> archive;

  for (size_t gen = 0; gen <= options_.generations; ++gen) {
    std::vector<Individual> pool = population;
    pool.insert(pool.end(), archive.begin(), archive.end());
    const std::vector<double> fitness = ComputeFitness(pool);
    archive = EnvironmentalSelection(pool, fitness, options_.archive_size);
    if (gen == options_.generations) break;

    // Mating selection: binary tournament on SPEA2 fitness within the
    // archive (lower fitness wins).
    const std::vector<double> archive_fitness = ComputeFitness(archive);
    auto tournament = [&]() -> const Individual& {
      const size_t a = rng.Index(archive.size());
      const size_t b = rng.Index(archive.size());
      return archive_fitness[a] <= archive_fitness[b] ? archive[a]
                                                      : archive[b];
    };
    std::vector<Individual> offspring;
    offspring.reserve(options_.population_size);
    while (offspring.size() < options_.population_size) {
      auto [c1, c2] = SbxCrossover(problem, tournament().variables,
                                   tournament().variables,
                                   options_.crossover, &rng);
      for (Vector* child : {&c1, &c2}) {
        if (offspring.size() >= options_.population_size) break;
        Individual o;
        o.variables = PolynomialMutation(problem, std::move(*child),
                                         options_.mutation, &rng);
        o.objectives = problem.Evaluate(o.variables);
        offspring.push_back(std::move(o));
      }
    }
    population = std::move(offspring);
  }

  MooResult result;
  result.population = std::move(archive);
  RankAndCrowd(&result.population);
  for (size_t i = 0; i < result.population.size(); ++i) {
    if (result.population[i].rank == 0) result.front.push_back(i);
  }
  return result;
}

}  // namespace midas
