#ifndef MIDAS_OPTIMIZER_SPEA2_H_
#define MIDAS_OPTIMIZER_SPEA2_H_

#include "optimizer/genetic_operators.h"
#include "optimizer/nsga2.h"

namespace midas {

struct Spea2Options {
  size_t population_size = 100;
  /// Archive size (the returned front is the archive's non-dominated set).
  size_t archive_size = 100;
  size_t generations = 100;
  SbxOptions crossover;
  MutationOptions mutation;
  uint64_t seed = 1;
};

/// \brief SPEA2 (Zitzler, Laumanns, Thiele 2001; the paper's reference
/// [37]) — strength-Pareto evolutionary algorithm with fine-grained
/// fitness and nearest-neighbour density.
///
/// Fitness of an individual is the sum of the strengths (number of
/// solutions each dominator itself dominates) of everything dominating it,
/// plus a density term 1 / (σ_k + 2) from the k-th nearest neighbour in
/// objective space (k = sqrt(N + archive)). Environmental selection keeps
/// the non-dominated set, truncating by iteratively removing the most
/// crowded member when it overflows, or filling with the best dominated
/// individuals when it underflows.
class Spea2 {
 public:
  explicit Spea2(Spea2Options options = Spea2Options());

  StatusOr<MooResult> Optimize(const MooProblem& problem) const;

  const Spea2Options& options() const { return options_; }

 private:
  Spea2Options options_;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_SPEA2_H_
