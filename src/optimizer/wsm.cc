#include "optimizer/wsm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimizer/genetic_operators.h"

namespace midas {

namespace {

Status ValidateWeights(const Vector& weights) {
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    sum += w;
  }
  if (sum <= 0.0) return Status::InvalidArgument("weights sum to zero");
  return Status::OK();
}

}  // namespace

StatusOr<double> WeightedSum(const Vector& costs, const Vector& weights) {
  if (costs.size() != weights.size()) {
    return Status::InvalidArgument("weights/costs arity mismatch");
  }
  MIDAS_RETURN_IF_ERROR(ValidateWeights(weights));
  double total = 0.0;
  for (size_t i = 0; i < costs.size(); ++i) total += weights[i] * costs[i];
  return total;
}

StatusOr<size_t> WsmSelect(const std::vector<Vector>& candidate_costs,
                           const Vector& weights) {
  if (candidate_costs.empty()) {
    return Status::InvalidArgument("no candidates");
  }
  const size_t arity = candidate_costs[0].size();
  if (weights.size() != arity) {
    return Status::InvalidArgument("weights/costs arity mismatch");
  }
  MIDAS_RETURN_IF_ERROR(ValidateWeights(weights));
  for (const Vector& c : candidate_costs) {
    if (c.size() != arity) {
      return Status::InvalidArgument("ragged candidate costs");
    }
  }
  // Min-max normalisation per metric.
  Vector lo(arity), hi(arity);
  for (size_t m = 0; m < arity; ++m) {
    lo[m] = hi[m] = candidate_costs[0][m];
    for (const Vector& c : candidate_costs) {
      lo[m] = std::min(lo[m], c[m]);
      hi[m] = std::max(hi[m], c[m]);
    }
  }
  size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidate_costs.size(); ++i) {
    double score = 0.0;
    for (size_t m = 0; m < arity; ++m) {
      const double range = hi[m] - lo[m];
      if (range > 0.0) {
        score += weights[m] * (candidate_costs[i][m] - lo[m]) / range;
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

WsmGeneticOptimizer::WsmGeneticOptimizer(WsmGaOptions options)
    : options_(options) {}

StatusOr<WsmGeneticOptimizer::Result> WsmGeneticOptimizer::Optimize(
    const MooProblem& problem, const Vector& weights) const {
  if (weights.size() != problem.num_objectives()) {
    return Status::InvalidArgument("weights arity mismatch");
  }
  MIDAS_RETURN_IF_ERROR(ValidateWeights(weights));
  if (options_.population_size < 4) {
    return Status::InvalidArgument("population must hold at least 4");
  }
  Rng rng(options_.seed);

  auto fitness = [&](const Vector& objectives) {
    double f = 0.0;
    for (size_t m = 0; m < objectives.size(); ++m) {
      f += weights[m] * objectives[m];
    }
    return f;
  };

  struct Member {
    Vector variables;
    Vector objectives;
    double fitness;
  };
  std::vector<Member> population;
  population.reserve(options_.population_size);
  for (size_t i = 0; i < options_.population_size; ++i) {
    Individual ind = RandomIndividual(problem, &rng);
    population.push_back(
        {ind.variables, ind.objectives, fitness(ind.objectives)});
  }

  SbxOptions sbx;
  sbx.crossover_probability = options_.crossover_probability;
  MutationOptions mut;
  mut.mutation_probability = options_.mutation_probability;

  auto tournament = [&]() -> const Member& {
    const Member& a = population[rng.Index(population.size())];
    const Member& b = population[rng.Index(population.size())];
    return a.fitness <= b.fitness ? a : b;
  };

  for (size_t gen = 0; gen < options_.generations; ++gen) {
    std::vector<Member> offspring;
    offspring.reserve(options_.population_size);
    while (offspring.size() < options_.population_size) {
      auto [c1, c2] = SbxCrossover(problem, tournament().variables,
                                   tournament().variables, sbx, &rng);
      for (Vector* child : {&c1, &c2}) {
        if (offspring.size() >= options_.population_size) break;
        Member m;
        m.variables =
            PolynomialMutation(problem, std::move(*child), mut, &rng);
        m.objectives = problem.Evaluate(m.variables);
        m.fitness = fitness(m.objectives);
        offspring.push_back(std::move(m));
      }
    }
    // Elitist truncation of the combined pool by scalar fitness.
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
    std::sort(population.begin(), population.end(),
              [](const Member& a, const Member& b) {
                return a.fitness < b.fitness;
              });
    population.resize(options_.population_size);
  }

  Result out;
  out.variables = population.front().variables;
  out.objectives = population.front().objectives;
  out.scalar_fitness = population.front().fitness;
  return out;
}

}  // namespace midas
