#ifndef MIDAS_OPTIMIZER_WSM_H_
#define MIDAS_OPTIMIZER_WSM_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "optimizer/problem.h"

namespace midas {

/// Weighted-sum scalarisation of a cost vector with *normalised* costs:
/// each metric is first divided by its range over the candidate set so the
/// weights compare like with like. Weights must be non-negative and sum to
/// a positive value.
StatusOr<double> WeightedSum(const Vector& costs, const Vector& weights);

/// \brief Scalarises every candidate and returns the argmin index — the
/// Weighted Sum Model (Helff & Orazio 2016) the original IReS optimizer
/// used, and the baseline of Figure 3 (right).
///
/// Costs are min-max normalised per metric over the candidate set before
/// weighting; a metric with zero range contributes zero.
StatusOr<size_t> WsmSelect(const std::vector<Vector>& candidate_costs,
                           const Vector& weights);

struct WsmGaOptions {
  size_t population_size = 100;
  size_t generations = 100;
  double crossover_probability = 0.9;
  double mutation_probability = -1.0;  // <=0: 1/num_variables
  uint64_t seed = 1;
};

/// \brief Single-objective genetic optimizer over a MooProblem whose
/// fitness is the weighted sum of the objectives — the full "Multi-
/// Objective Optimization based on the Weighted Sum Model" branch of
/// Figure 3. Changing the weights requires a complete re-run, which is
/// exactly the drawback the paper cites (§2.6).
class WsmGeneticOptimizer {
 public:
  explicit WsmGeneticOptimizer(WsmGaOptions options = WsmGaOptions());

  struct Result {
    Vector variables;
    Vector objectives;
    double scalar_fitness = 0.0;
  };

  /// Weights apply to the problem's raw (un-normalised) objectives.
  StatusOr<Result> Optimize(const MooProblem& problem,
                            const Vector& weights) const;

 private:
  WsmGaOptions options_;
};

}  // namespace midas

#endif  // MIDAS_OPTIMIZER_WSM_H_
