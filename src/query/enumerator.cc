#include "query/enumerator.h"

#include <algorithm>

namespace midas {

PlanEnumerator::PlanEnumerator(const Federation* federation,
                               const Catalog* catalog,
                               EnumeratorOptions options)
    : federation_(federation),
      catalog_(catalog),
      options_(std::move(options)) {}

uint64_t PlanEnumerator::CountResourceConfigurations(int vcpu_pool,
                                                     int memory_gib_pool) {
  if (vcpu_pool <= 0 || memory_gib_pool <= 0) return 0;
  return static_cast<uint64_t>(vcpu_pool) *
         static_cast<uint64_t>(memory_gib_pool);
}

namespace {

// Recursively emits all join-commutation variants of `node`. Parents are
// shallow-cloned (their subtrees are rebuilt from the variants anyway)
// and each variant subtree is moved rather than re-cloned on its final
// pairing, so a deep tree costs roughly half the node copies of the
// clone-everything version.
void CommuteVariants(const PlanNode& node,
                     std::vector<std::unique_ptr<PlanNode>>* out) {
  if (node.kind != OperatorKind::kJoin) {
    if (node.children.empty()) {
      out->push_back(node.Clone());
      return;
    }
    // Unary operator: recurse into the single child.
    std::vector<std::unique_ptr<PlanNode>> child_variants;
    CommuteVariants(*node.children[0], &child_variants);
    out->reserve(out->size() + child_variants.size());
    for (auto& child : child_variants) {
      auto copy = node.CloneShallow();
      copy->children.push_back(std::move(child));
      out->push_back(std::move(copy));
    }
    return;
  }
  std::vector<std::unique_ptr<PlanNode>> left_variants;
  std::vector<std::unique_ptr<PlanNode>> right_variants;
  CommuteVariants(*node.children[0], &left_variants);
  CommuteVariants(*node.children[1], &right_variants);
  out->reserve(out->size() + 2 * left_variants.size() * right_variants.size());
  for (size_t li = 0; li < left_variants.size(); ++li) {
    auto& lv = left_variants[li];
    for (size_t ri = 0; ri < right_variants.size(); ++ri) {
      auto& rv = right_variants[ri];
      // lv's last use is its pairing with the final rv; rv's last use is
      // its pairing with the final lv.
      const bool lv_final_use = ri + 1 == right_variants.size();
      const bool rv_final_use = li + 1 == left_variants.size();
      // Original orientation.
      auto original = node.CloneShallow();
      original->children.push_back(lv->Clone());
      original->children.push_back(rv->Clone());
      out->push_back(std::move(original));
      // Commuted orientation swaps inputs and join columns.
      auto commuted = node.CloneShallow();
      commuted->children.push_back(rv_final_use ? std::move(rv) : rv->Clone());
      commuted->children.push_back(lv_final_use ? std::move(lv) : lv->Clone());
      std::swap(commuted->left_join_column, commuted->right_join_column);
      out->push_back(std::move(commuted));
    }
  }
}

}  // namespace

std::vector<QueryPlan> PlanEnumerator::JoinOrderVariants(
    const QueryPlan& logical) const {
  std::vector<QueryPlan> out;
  if (!options_.enumerate_join_orders) {
    out.push_back(logical);
    return out;
  }
  std::vector<std::unique_ptr<PlanNode>> roots;
  CommuteVariants(*logical.root(), &roots);
  out.reserve(roots.size());
  for (auto& root : roots) out.emplace_back(std::move(root));
  return out;
}

StatusOr<std::vector<QueryPlan>> PlanEnumerator::EnumeratePhysical(
    const QueryPlan& logical) const {
  std::vector<QueryPlan> plans;
  MIDAS_RETURN_IF_ERROR(
      ForEachPhysical(logical, [&plans](QueryPlan&& plan) {
        plans.push_back(std::move(plan));
        return Status::OK();
      }));
  return plans;
}

Status PlanEnumerator::EnumerateChunked(const QueryPlan& logical,
                                        size_t chunk_size,
                                        const ChunkVisitor& visitor) const {
  if (!visitor) return Status::InvalidArgument("null chunk visitor");
  if (chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  std::vector<QueryPlan> chunk;
  chunk.reserve(std::min(chunk_size, options_.max_plans));
  MIDAS_RETURN_IF_ERROR(
      ForEachPhysical(logical, [&](QueryPlan&& plan) -> Status {
        chunk.push_back(std::move(plan));
        if (chunk.size() < chunk_size) return Status::OK();
        std::vector<QueryPlan> full;
        full.swap(chunk);
        chunk.reserve(chunk_size);
        return visitor(std::move(full));
      }));
  if (!chunk.empty()) {
    MIDAS_RETURN_IF_ERROR(visitor(std::move(chunk)));
  }
  return Status::OK();
}

Status PlanEnumerator::ForEachPhysical(
    const QueryPlan& logical,
    const std::function<Status(QueryPlan&&)>& emit) const {
  if (federation_ == nullptr || catalog_ == nullptr) {
    return Status::FailedPrecondition("enumerator missing environment");
  }
  MIDAS_RETURN_IF_ERROR(logical.Validate(*catalog_));
  if (options_.node_counts.empty()) {
    return Status::InvalidArgument("no candidate node counts");
  }

  // Resolve base table placements once; sorted + deduplicated.
  std::vector<SiteId> data_sites;
  for (const std::string& table : logical.BaseTables()) {
    MIDAS_ASSIGN_OR_RETURN(Federation::Placement placement,
                           federation_->TablePlacement(table));
    data_sites.push_back(placement.site);
  }
  std::sort(data_sites.begin(), data_sites.end());
  data_sites.erase(std::unique(data_sites.begin(), data_sites.end()),
                   data_sites.end());

  // Candidate compute placements: every (site, engine) pair in the
  // federation.
  struct Compute {
    SiteId site;
    EngineKind engine;
  };
  std::vector<Compute> computes;
  for (const CloudSite& site : federation_->sites()) {
    for (EngineKind engine : site.engines()) {
      computes.push_back({site.id(), engine});
    }
  }
  if (computes.empty()) {
    return Status::FailedPrecondition("federation hosts no engines");
  }

  std::vector<QueryPlan> variants = JoinOrderVariants(logical);
  size_t emitted = 0;

  for (const QueryPlan& variant : variants) {
    for (const Compute& compute : computes) {
      // Participating sites for this choice: data sites plus compute site.
      std::vector<SiteId> used_sites = data_sites;
      if (std::find(used_sites.begin(), used_sites.end(), compute.site) ==
          used_sites.end()) {
        used_sites.push_back(compute.site);
      }
      std::sort(used_sites.begin(), used_sites.end());

      // Cartesian product of node counts over the participating sites.
      std::vector<size_t> pick(used_sites.size(), 0);
      while (true) {
        // Materialise one annotated plan.
        QueryPlan plan = variant;
        auto nodes_at = [&](SiteId s) {
          for (size_t i = 0; i < used_sites.size(); ++i) {
            if (used_sites[i] == s) return options_.node_counts[pick[i]];
          }
          return options_.node_counts[0];
        };
        bool feasible = true;
        for (PlanNode* node : plan.MutableNodes()) {
          if (node->kind == OperatorKind::kScan) {
            auto placement = federation_->TablePlacement(node->table);
            if (!placement.ok()) {
              feasible = false;
              break;
            }
            node->site = placement->site;
            node->engine = placement->engine;
            node->num_nodes = nodes_at(placement->site);
          } else {
            node->site = compute.site;
            node->engine = compute.engine;
            node->num_nodes = nodes_at(compute.site);
          }
          // Respect per-site elasticity limits.
          auto site = federation_->site(*node->site);
          if (!site.ok() || node->num_nodes > (*site)->max_nodes()) {
            feasible = false;
            break;
          }
        }
        if (feasible) {
          MIDAS_RETURN_IF_ERROR(EstimateCardinalities(*catalog_, &plan));
          MIDAS_RETURN_IF_ERROR(emit(std::move(plan)));
          if (++emitted >= options_.max_plans) return Status::OK();
        }
        // Advance the mixed-radix counter.
        size_t d = 0;
        while (d < pick.size()) {
          if (++pick[d] < options_.node_counts.size()) break;
          pick[d] = 0;
          ++d;
        }
        if (d == pick.size()) break;
      }
    }
  }
  if (emitted == 0) {
    return Status::FailedPrecondition(
        "no feasible physical plan (check node_counts vs site limits)");
  }
  return Status::OK();
}

}  // namespace midas
