#include "query/enumerator.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace midas {

PlanEnumerator::PlanEnumerator(const Federation* federation,
                               const Catalog* catalog,
                               EnumeratorOptions options)
    : federation_(federation),
      catalog_(catalog),
      options_(std::move(options)) {}

uint64_t PlanEnumerator::CountResourceConfigurations(int vcpu_pool,
                                                     int memory_gib_pool) {
  if (vcpu_pool <= 0 || memory_gib_pool <= 0) return 0;
  return static_cast<uint64_t>(vcpu_pool) *
         static_cast<uint64_t>(memory_gib_pool);
}

namespace {

// Number of variants CommuteVariants emits for `node` — exact, so the
// hot-loop vectors below can reserve once instead of growing.
uint64_t CountCommuteVariants(const PlanNode& node) {
  if (node.kind != OperatorKind::kJoin) {
    return node.children.empty() ? 1 : CountCommuteVariants(*node.children[0]);
  }
  return 2 * CountCommuteVariants(*node.children[0]) *
         CountCommuteVariants(*node.children[1]);
}

// Recursively emits all join-commutation variants of `node`. Parents are
// shallow-cloned (their subtrees are rebuilt from the variants anyway)
// and each variant subtree is moved rather than re-cloned on its final
// pairing, so a deep tree costs roughly half the node copies of the
// clone-everything version.
void CommuteVariants(const PlanNode& node,
                     std::vector<std::unique_ptr<PlanNode>>* out) {
  if (node.kind != OperatorKind::kJoin) {
    if (node.children.empty()) {
      out->push_back(node.Clone());
      return;
    }
    // Unary operator: recurse into the single child.
    std::vector<std::unique_ptr<PlanNode>> child_variants;
    child_variants.reserve(CountCommuteVariants(*node.children[0]));
    CommuteVariants(*node.children[0], &child_variants);
    out->reserve(out->size() + child_variants.size());
    for (auto& child : child_variants) {
      auto copy = node.CloneShallow();
      copy->children.push_back(std::move(child));
      out->push_back(std::move(copy));
    }
    return;
  }
  std::vector<std::unique_ptr<PlanNode>> left_variants;
  std::vector<std::unique_ptr<PlanNode>> right_variants;
  left_variants.reserve(CountCommuteVariants(*node.children[0]));
  right_variants.reserve(CountCommuteVariants(*node.children[1]));
  CommuteVariants(*node.children[0], &left_variants);
  CommuteVariants(*node.children[1], &right_variants);
  out->reserve(out->size() + 2 * left_variants.size() * right_variants.size());
  for (size_t li = 0; li < left_variants.size(); ++li) {
    auto& lv = left_variants[li];
    for (size_t ri = 0; ri < right_variants.size(); ++ri) {
      auto& rv = right_variants[ri];
      // lv's last use is its pairing with the final rv; rv's last use is
      // its pairing with the final lv.
      const bool lv_final_use = ri + 1 == right_variants.size();
      const bool rv_final_use = li + 1 == left_variants.size();
      // Original orientation.
      auto original = node.CloneShallow();
      original->children.push_back(lv->Clone());
      original->children.push_back(rv->Clone());
      out->push_back(std::move(original));
      // Commuted orientation swaps inputs and join columns.
      auto commuted = node.CloneShallow();
      commuted->children.push_back(rv_final_use ? std::move(rv) : rv->Clone());
      commuted->children.push_back(lv_final_use ? std::move(lv) : lv->Clone());
      std::swap(commuted->left_join_column, commuted->right_join_column);
      out->push_back(std::move(commuted));
    }
  }
}

// Annotates `node` and its subtree in place: scans pin to their table's
// placement, every other operator runs at the chosen compute, and each
// node's VM count comes from `nodes_at` (the current mixed-radix pick).
// Feasibility was established before materialisation, so this walk only
// assigns. Recursing directly instead of materialising a node-pointer
// vector per plan keeps the per-pick cost allocation-free.
template <typename NodesAt>
Status AnnotateNode(
    PlanNode* node,
    const std::vector<std::pair<std::string, Federation::Placement>>&
        placements,
    SiteId compute_site, EngineKind compute_engine, const NodesAt& nodes_at) {
  if (node->kind == OperatorKind::kScan) {
    const Federation::Placement* placement = nullptr;
    for (const auto& entry : placements) {
      if (entry.first == node->table) {
        placement = &entry.second;
        break;
      }
    }
    if (placement == nullptr) {
      return Status::Internal("scan table missing from resolved placements");
    }
    node->site = placement->site;
    node->engine = placement->engine;
    node->num_nodes = nodes_at(placement->site);
  } else {
    node->site = compute_site;
    node->engine = compute_engine;
    node->num_nodes = nodes_at(compute_site);
  }
  for (auto& child : node->children) {
    MIDAS_RETURN_IF_ERROR(AnnotateNode(child.get(), placements, compute_site,
                                       compute_engine, nodes_at));
  }
  return Status::OK();
}

}  // namespace

std::vector<QueryPlan> PlanEnumerator::JoinOrderVariants(
    const QueryPlan& logical) const {
  std::vector<QueryPlan> out;
  if (!options_.enumerate_join_orders) {
    out.push_back(logical);
    return out;
  }
  std::vector<std::unique_ptr<PlanNode>> roots;
  roots.reserve(CountCommuteVariants(*logical.root()));
  CommuteVariants(*logical.root(), &roots);
  out.reserve(roots.size());
  for (auto& root : roots) out.emplace_back(std::move(root));
  return out;
}

Status PlanEnumerator::ResolveSpace(const QueryPlan& logical,
                                    EnumerationSpace* space) const {
  if (federation_ == nullptr || catalog_ == nullptr) {
    return Status::FailedPrecondition("enumerator missing environment");
  }
  MIDAS_RETURN_IF_ERROR(logical.Validate(*catalog_));
  if (options_.node_counts.empty()) {
    return Status::InvalidArgument("no candidate node counts");
  }

  // Resolve base table placements once; sorted + deduplicated.
  for (const std::string& table : logical.BaseTables()) {
    MIDAS_ASSIGN_OR_RETURN(Federation::Placement placement,
                           federation_->TablePlacement(table));
    space->data_sites.push_back(placement.site);
    space->placements.emplace_back(table, placement);
  }
  std::sort(space->data_sites.begin(), space->data_sites.end());
  space->data_sites.erase(
      std::unique(space->data_sites.begin(), space->data_sites.end()),
      space->data_sites.end());

  // Candidate compute placements: every (site, engine) pair in the
  // federation.
  for (const CloudSite& site : federation_->sites()) {
    for (EngineKind engine : site.engines()) {
      space->computes.push_back({site.id(), engine});
    }
  }
  if (space->computes.empty()) {
    return Status::FailedPrecondition("federation hosts no engines");
  }

  space->variants = JoinOrderVariants(logical);
  for (const PlanNode* node : logical.Nodes()) {
    if (node->kind != OperatorKind::kScan) {
      space->has_compute_node = true;
      break;
    }
  }
  return Status::OK();
}

StatusOr<PlanEnumerator::StratumSpec> PlanEnumerator::MakeStratumSpec(
    const EnumerationSpace& space, size_t stratum_index) const {
  const size_t n_counts = options_.node_counts.size();
  const size_t n_computes = space.computes.size();
  const size_t n_strata = space.variants.size() * n_computes * n_counts;
  if (stratum_index >= n_strata) {
    return Status::InvalidArgument("stratum index out of range");
  }
  StratumSpec spec;
  spec.leading_digit = stratum_index % n_counts;
  const size_t vc = stratum_index / n_counts;
  spec.compute = vc % n_computes;
  spec.variant = vc / n_computes;

  // Participating sites for this choice: data sites plus compute site.
  const Compute& compute = space.computes[spec.compute];
  spec.used_sites = space.data_sites;
  if (std::find(spec.used_sites.begin(), spec.used_sites.end(),
                compute.site) == spec.used_sites.end()) {
    spec.used_sites.push_back(compute.site);
  }
  std::sort(spec.used_sites.begin(), spec.used_sites.end());

  // A site constrains feasibility iff some operator actually runs there:
  // data sites always host their scans; the compute site hosts work only
  // when the plan has a non-scan operator. Unconstrained sites admit
  // every VM count (their digit never touches a plan).
  spec.allowed.resize(spec.used_sites.size());
  for (size_t i = 0; i < spec.used_sites.size(); ++i) {
    const SiteId site_id = spec.used_sites[i];
    const bool constrained =
        std::binary_search(space.data_sites.begin(), space.data_sites.end(),
                           site_id) ||
        (site_id == compute.site && space.has_compute_node);
    std::vector<char>& allowed = spec.allowed[i];
    allowed.assign(options_.node_counts.size(), 1);
    if (!constrained) continue;
    auto site = federation_->site(site_id);
    for (size_t k = 0; k < options_.node_counts.size(); ++k) {
      // Respect per-site elasticity limits (an unresolvable site admits
      // nothing, mirroring the defensive skip of the materialising loop).
      allowed[k] = site.ok() && options_.node_counts[k] <= (*site)->max_nodes()
                       ? 1
                       : 0;
    }
  }
  return spec;
}

uint64_t PlanEnumerator::StratumFeasibleCount(const StratumSpec& spec) {
  const size_t digits = spec.used_sites.size();
  if (spec.allowed[digits - 1][spec.leading_digit] == 0) return 0;
  uint64_t product = 1;
  for (size_t i = 0; i + 1 < digits; ++i) {
    uint64_t admissible = 0;
    for (char a : spec.allowed[i]) admissible += a != 0 ? 1 : 0;
    if (admissible == 0) return 0;
    // Saturate rather than overflow: callers only compare counts against
    // max_plans, so any value past the cap behaves identically.
    if (product > std::numeric_limits<uint64_t>::max() / admissible) {
      return std::numeric_limits<uint64_t>::max();
    }
    product *= admissible;
  }
  return product;
}

Status PlanEnumerator::EnumerateStratum(
    const EnumerationSpace& space, const StratumSpec& spec,
    uint64_t* next_seq,
    const std::function<Status(QueryPlan&&, uint64_t)>& emit) const {
  if (*next_seq >= options_.max_plans) return Status::OK();
  if (StratumFeasibleCount(spec) == 0) return Status::OK();
  const QueryPlan& variant = space.variants[spec.variant];
  const Compute& compute = space.computes[spec.compute];
  const std::vector<int>& counts = options_.node_counts;
  const size_t digits = spec.used_sites.size();

  // Cartesian product of node counts over the participating sites, with
  // the leading (slowest) digit pinned to this stratum.
  std::vector<size_t> pick(digits, 0);
  pick[digits - 1] = spec.leading_digit;
  const auto nodes_at = [&](SiteId s) {
    for (size_t i = 0; i < digits; ++i) {
      if (spec.used_sites[i] == s) return counts[pick[i]];
    }
    return counts[0];
  };
  while (true) {
    // Feasibility needs only the per-site admissibility of the pick, so
    // infeasible picks skip plan materialisation entirely.
    bool feasible = true;
    for (size_t i = 0; i + 1 < digits; ++i) {
      if (spec.allowed[i][pick[i]] == 0) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      QueryPlan plan = variant;
      MIDAS_RETURN_IF_ERROR(AnnotateNode(plan.mutable_root(), space.placements,
                                         compute.site, compute.engine,
                                         nodes_at));
      MIDAS_RETURN_IF_ERROR(EstimateCardinalities(*catalog_, &plan));
      const uint64_t seq = (*next_seq)++;
      MIDAS_RETURN_IF_ERROR(emit(std::move(plan), seq));
      if (*next_seq >= options_.max_plans) return Status::OK();
    }
    // Advance the mixed-radix counter below the leading digit.
    size_t d = 0;
    while (d + 1 < digits) {
      if (++pick[d] < counts.size()) break;
      pick[d] = 0;
      ++d;
    }
    if (d + 1 >= digits) break;
  }
  return Status::OK();
}

StatusOr<std::vector<QueryPlan>> PlanEnumerator::EnumeratePhysical(
    const QueryPlan& logical) const {
  std::vector<QueryPlan> plans;
  MIDAS_RETURN_IF_ERROR(
      ForEachPhysical(logical, [&plans](QueryPlan&& plan) {
        plans.push_back(std::move(plan));
        return Status::OK();
      }));
  return plans;
}

Status PlanEnumerator::EnumerateChunked(const QueryPlan& logical,
                                        size_t chunk_size,
                                        const ChunkVisitor& visitor) const {
  if (!visitor) return Status::InvalidArgument("null chunk visitor");
  if (chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  std::vector<QueryPlan> chunk;
  chunk.reserve(std::min(chunk_size, options_.max_plans));
  MIDAS_RETURN_IF_ERROR(
      ForEachPhysical(logical, [&](QueryPlan&& plan) -> Status {
        chunk.push_back(std::move(plan));
        if (chunk.size() < chunk_size) return Status::OK();
        std::vector<QueryPlan> full;
        full.swap(chunk);
        chunk.reserve(chunk_size);
        return visitor(std::move(full));
      }));
  if (!chunk.empty()) {
    MIDAS_RETURN_IF_ERROR(visitor(std::move(chunk)));
  }
  return Status::OK();
}

Status PlanEnumerator::ForEachPhysical(
    const QueryPlan& logical,
    const std::function<Status(QueryPlan&&)>& emit) const {
  EnumerationSpace space;
  MIDAS_RETURN_IF_ERROR(ResolveSpace(logical, &space));
  const size_t n_strata = space.variants.size() * space.computes.size() *
                          options_.node_counts.size();
  uint64_t next_seq = 0;
  for (size_t s = 0; s < n_strata && next_seq < options_.max_plans; ++s) {
    MIDAS_ASSIGN_OR_RETURN(StratumSpec spec, MakeStratumSpec(space, s));
    MIDAS_RETURN_IF_ERROR(EnumerateStratum(
        space, spec, &next_seq,
        [&emit](QueryPlan&& plan, uint64_t) { return emit(std::move(plan)); }));
  }
  if (next_seq == 0) {
    return Status::FailedPrecondition(
        "no feasible physical plan (check node_counts vs site limits)");
  }
  return Status::OK();
}

StatusOr<std::vector<EnumerationShard>> PlanEnumerator::PartitionShards(
    const QueryPlan& logical, size_t num_shards) const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  EnumerationSpace space;
  MIDAS_RETURN_IF_ERROR(ResolveSpace(logical, &space));
  const size_t n_strata = space.variants.size() * space.computes.size() *
                          options_.node_counts.size();
  const uint64_t cap = options_.max_plans;
  std::vector<EnumerationShard::Stratum> entries;
  uint64_t prefix = 0;
  for (size_t s = 0; s < n_strata && prefix < cap; ++s) {
    MIDAS_ASSIGN_OR_RETURN(StratumSpec spec, MakeStratumSpec(space, s));
    const uint64_t count = StratumFeasibleCount(spec);
    if (count > 0) {
      entries.push_back({s, prefix, std::min(count, cap - prefix)});
    }
    prefix = count > std::numeric_limits<uint64_t>::max() - prefix
                 ? std::numeric_limits<uint64_t>::max()
                 : prefix + count;
  }
  if (entries.empty()) {
    return Status::FailedPrecondition(
        "no feasible physical plan (check node_counts vs site limits)");
  }

  // Greedy LPT over the capped stratum sizes: biggest strata first, each
  // to the currently lightest shard (ties to the lower shard id). Fully
  // deterministic, so every caller partitions identically.
  std::vector<size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&entries](size_t a, size_t b) {
    return entries[a].feasible > entries[b].feasible;
  });
  std::vector<EnumerationShard> shards(num_shards);
  for (size_t e : order) {
    size_t best = 0;
    for (size_t sh = 1; sh < num_shards; ++sh) {
      if (shards[sh].planned_emissions < shards[best].planned_emissions) {
        best = sh;
      }
    }
    shards[best].strata.push_back(entries[e]);
    shards[best].planned_emissions += entries[e].feasible;
  }
  for (EnumerationShard& shard : shards) {
    std::sort(shard.strata.begin(), shard.strata.end(),
              [](const EnumerationShard::Stratum& a,
                 const EnumerationShard::Stratum& b) {
                return a.index < b.index;
              });
  }
  return shards;
}

Status PlanEnumerator::EnumerateShardChunked(
    const QueryPlan& logical, const EnumerationShard& shard, size_t chunk_size,
    const SequencedChunkVisitor& visitor) const {
  if (!visitor) return Status::InvalidArgument("null chunk visitor");
  if (chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  EnumerationSpace space;
  MIDAS_RETURN_IF_ERROR(ResolveSpace(logical, &space));
  const size_t reserve = static_cast<size_t>(
      std::min<uint64_t>(chunk_size, shard.planned_emissions));
  std::vector<QueryPlan> chunk;
  std::vector<uint64_t> seqs;
  chunk.reserve(reserve);
  seqs.reserve(reserve);
  const auto flush = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    std::vector<QueryPlan> full_chunk;
    std::vector<uint64_t> full_seqs;
    full_chunk.swap(chunk);
    full_seqs.swap(seqs);
    chunk.reserve(reserve);
    seqs.reserve(reserve);
    return visitor(std::move(full_chunk), std::move(full_seqs));
  };
  for (const EnumerationShard::Stratum& stratum : shard.strata) {
    MIDAS_ASSIGN_OR_RETURN(StratumSpec spec,
                           MakeStratumSpec(space, stratum.index));
    uint64_t next_seq = stratum.seq_base;
    MIDAS_RETURN_IF_ERROR(EnumerateStratum(
        space, spec, &next_seq,
        [&](QueryPlan&& plan, uint64_t seq) -> Status {
          chunk.push_back(std::move(plan));
          seqs.push_back(seq);
          if (chunk.size() < chunk_size) return Status::OK();
          return flush();
        }));
  }
  return flush();
}

}  // namespace midas
