#include "query/enumerator.h"

#include <algorithm>
#include <set>

namespace midas {

PlanEnumerator::PlanEnumerator(const Federation* federation,
                               const Catalog* catalog,
                               EnumeratorOptions options)
    : federation_(federation),
      catalog_(catalog),
      options_(std::move(options)) {}

uint64_t PlanEnumerator::CountResourceConfigurations(int vcpu_pool,
                                                     int memory_gib_pool) {
  if (vcpu_pool <= 0 || memory_gib_pool <= 0) return 0;
  return static_cast<uint64_t>(vcpu_pool) *
         static_cast<uint64_t>(memory_gib_pool);
}

namespace {

// Recursively emits all join-commutation variants of `node`.
void CommuteVariants(const PlanNode& node,
                     std::vector<std::unique_ptr<PlanNode>>* out) {
  if (node.kind != OperatorKind::kJoin) {
    if (node.children.empty()) {
      out->push_back(node.Clone());
      return;
    }
    // Unary operator: recurse into the single child.
    std::vector<std::unique_ptr<PlanNode>> child_variants;
    CommuteVariants(*node.children[0], &child_variants);
    for (auto& child : child_variants) {
      auto copy = node.Clone();
      copy->children[0] = std::move(child);
      out->push_back(std::move(copy));
    }
    return;
  }
  std::vector<std::unique_ptr<PlanNode>> left_variants;
  std::vector<std::unique_ptr<PlanNode>> right_variants;
  CommuteVariants(*node.children[0], &left_variants);
  CommuteVariants(*node.children[1], &right_variants);
  for (const auto& lv : left_variants) {
    for (const auto& rv : right_variants) {
      // Original orientation.
      auto original = node.Clone();
      original->children[0] = lv->Clone();
      original->children[1] = rv->Clone();
      out->push_back(std::move(original));
      // Commuted orientation swaps inputs and join columns.
      auto commuted = node.Clone();
      commuted->children[0] = rv->Clone();
      commuted->children[1] = lv->Clone();
      std::swap(commuted->left_join_column, commuted->right_join_column);
      out->push_back(std::move(commuted));
    }
  }
}

}  // namespace

std::vector<QueryPlan> PlanEnumerator::JoinOrderVariants(
    const QueryPlan& logical) const {
  std::vector<QueryPlan> out;
  if (!options_.enumerate_join_orders) {
    out.push_back(logical);
    return out;
  }
  std::vector<std::unique_ptr<PlanNode>> roots;
  CommuteVariants(*logical.root(), &roots);
  out.reserve(roots.size());
  for (auto& root : roots) out.emplace_back(std::move(root));
  return out;
}

StatusOr<std::vector<QueryPlan>> PlanEnumerator::EnumeratePhysical(
    const QueryPlan& logical) const {
  if (federation_ == nullptr || catalog_ == nullptr) {
    return Status::FailedPrecondition("enumerator missing environment");
  }
  MIDAS_RETURN_IF_ERROR(logical.Validate(*catalog_));
  if (options_.node_counts.empty()) {
    return Status::InvalidArgument("no candidate node counts");
  }

  // Resolve base table placements once.
  std::set<SiteId> data_sites;
  for (const std::string& table : logical.BaseTables()) {
    MIDAS_ASSIGN_OR_RETURN(Federation::Placement placement,
                           federation_->TablePlacement(table));
    data_sites.insert(placement.site);
  }

  // Candidate compute placements: every (site, engine) pair in the
  // federation.
  struct Compute {
    SiteId site;
    EngineKind engine;
  };
  std::vector<Compute> computes;
  for (const CloudSite& site : federation_->sites()) {
    for (EngineKind engine : site.engines()) {
      computes.push_back({site.id(), engine});
    }
  }
  if (computes.empty()) {
    return Status::FailedPrecondition("federation hosts no engines");
  }

  std::vector<QueryPlan> variants = JoinOrderVariants(logical);
  std::vector<QueryPlan> plans;

  for (const QueryPlan& variant : variants) {
    for (const Compute& compute : computes) {
      // Participating sites for this choice: data sites plus compute site.
      std::vector<SiteId> used_sites(data_sites.begin(), data_sites.end());
      if (std::find(used_sites.begin(), used_sites.end(), compute.site) ==
          used_sites.end()) {
        used_sites.push_back(compute.site);
      }
      std::sort(used_sites.begin(), used_sites.end());

      // Cartesian product of node counts over the participating sites.
      std::vector<size_t> pick(used_sites.size(), 0);
      while (true) {
        // Materialise one annotated plan.
        QueryPlan plan = variant;
        auto nodes_at = [&](SiteId s) {
          for (size_t i = 0; i < used_sites.size(); ++i) {
            if (used_sites[i] == s) return options_.node_counts[pick[i]];
          }
          return options_.node_counts[0];
        };
        bool feasible = true;
        for (PlanNode* node : plan.MutableNodes()) {
          if (node->kind == OperatorKind::kScan) {
            auto placement = federation_->TablePlacement(node->table);
            if (!placement.ok()) {
              feasible = false;
              break;
            }
            node->site = placement->site;
            node->engine = placement->engine;
            node->num_nodes = nodes_at(placement->site);
          } else {
            node->site = compute.site;
            node->engine = compute.engine;
            node->num_nodes = nodes_at(compute.site);
          }
          // Respect per-site elasticity limits.
          auto site = federation_->site(*node->site);
          if (!site.ok() || node->num_nodes > (*site)->max_nodes()) {
            feasible = false;
            break;
          }
        }
        if (feasible) {
          MIDAS_RETURN_IF_ERROR(EstimateCardinalities(*catalog_, &plan));
          plans.push_back(std::move(plan));
          if (plans.size() >= options_.max_plans) return plans;
        }
        // Advance the mixed-radix counter.
        size_t d = 0;
        while (d < pick.size()) {
          if (++pick[d] < options_.node_counts.size()) break;
          pick[d] = 0;
          ++d;
        }
        if (d == pick.size()) break;
      }
    }
  }
  if (plans.empty()) {
    return Status::FailedPrecondition(
        "no feasible physical plan (check node_counts vs site limits)");
  }
  return plans;
}

}  // namespace midas
