#ifndef MIDAS_QUERY_ENUMERATOR_H_
#define MIDAS_QUERY_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "federation/federation.h"
#include "query/plan.h"

namespace midas {

struct EnumeratorOptions {
  /// Candidate VM counts per participating site.
  std::vector<int> node_counts = {1, 2, 4, 8};
  /// When true, also emit the commuted variant of every join.
  bool enumerate_join_orders = true;
  /// Hard cap on the number of emitted plans (guards combinatorial
  /// explosion for many-join queries).
  size_t max_plans = 20000;
};

/// \brief Generates the set P of equivalent physical QEPs for a logical
/// plan in a federation (§2.3): join-order commutations × compute
/// site/engine placement × per-site VM counts.
///
/// Scans are pinned to their table's placement (data does not move at rest);
/// every other operator is assigned to a chosen compute (site, engine), and
/// each participating site gets a VM count from `node_counts` — the
/// x_nodeA / x_nodeB knobs of Example 2.1. In a cloud the same logical plan
/// thus explodes into many equivalent QEPs (Example 3.1).
class PlanEnumerator {
 public:
  PlanEnumerator(const Federation* federation, const Catalog* catalog,
                 EnumeratorOptions options = EnumeratorOptions());

  /// Receives one batch of annotated physical plans, in enumeration
  /// order, with ownership. Returning a non-OK status aborts the
  /// enumeration and propagates out of `EnumerateChunked`.
  using ChunkVisitor = std::function<Status(std::vector<QueryPlan>&& chunk)>;

  /// Emits fully annotated physical plans with cardinalities estimated.
  /// The logical plan must validate and every scanned table must have a
  /// placement in the federation.
  StatusOr<std::vector<QueryPlan>> EnumeratePhysical(
      const QueryPlan& logical) const;

  /// Streaming enumeration: generates exactly the plans (and order) of
  /// `EnumeratePhysical`, but hands them to `visitor` in batches of at
  /// most `chunk_size` so no more than one chunk is ever materialised at
  /// a time — the generator half of the O(front + chunk) streaming
  /// pipeline. Fails with the same errors as `EnumeratePhysical`
  /// (including "no feasible physical plan" when nothing is emitted);
  /// `chunk_size` must be positive and `visitor` non-null.
  Status EnumerateChunked(const QueryPlan& logical, size_t chunk_size,
                          const ChunkVisitor& visitor) const;

  /// Example 3.1: number of distinct (vCPU, memory-GiB) execution
  /// configurations available from a resource pool — 70 x 260 = 18,200.
  static uint64_t CountResourceConfigurations(int vcpu_pool,
                                              int memory_gib_pool);

 private:
  /// Shared generator core: invokes `emit` once per feasible annotated
  /// plan, stopping after `options_.max_plans` emissions.
  Status ForEachPhysical(
      const QueryPlan& logical,
      const std::function<Status(QueryPlan&&)>& emit) const;

  std::vector<QueryPlan> JoinOrderVariants(const QueryPlan& logical) const;

  const Federation* federation_;
  const Catalog* catalog_;
  EnumeratorOptions options_;
};

}  // namespace midas

#endif  // MIDAS_QUERY_ENUMERATOR_H_
