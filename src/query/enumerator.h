#ifndef MIDAS_QUERY_ENUMERATOR_H_
#define MIDAS_QUERY_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "federation/federation.h"
#include "query/plan.h"

namespace midas {

struct EnumeratorOptions {
  /// Candidate VM counts per participating site.
  std::vector<int> node_counts = {1, 2, 4, 8};
  /// When true, also emit the commuted variant of every join.
  bool enumerate_join_orders = true;
  /// Hard cap on the number of emitted plans (guards combinatorial
  /// explosion for many-join queries).
  size_t max_plans = 20000;
};

/// \brief One disjoint slice of the physical plan space, produced by
/// `PlanEnumerator::PartitionShards`.
///
/// The plan space factors into *strata*: one per (join-order variant ×
/// compute placement × leading VM-count digit) triple, where the leading
/// digit is the slowest-moving position of the per-site VM-count counter.
/// Serial enumeration visits strata in ascending `Stratum::index` order
/// and the plans inside one stratum contiguously, so every feasible plan
/// has a *global sequence number* — its 0-based emission index in
/// `EnumeratePhysical` order — computable per stratum in closed form
/// without enumerating anything. A shard owns whole strata; shards from
/// one `PartitionShards` call are disjoint and together cover exactly the
/// serial emission sequence (max_plans cap included).
struct EnumerationShard {
  struct Stratum {
    /// Position in the (variant × compute × leading-digit) grid, in
    /// serial enumeration order.
    size_t index = 0;
    /// Global sequence number of this stratum's first feasible plan.
    uint64_t seq_base = 0;
    /// Feasible plans the stratum emits (after the global max_plans cap).
    uint64_t feasible = 0;
  };
  /// Owned strata, ascending by `index`.
  std::vector<Stratum> strata;
  /// Total plans this shard emits (sum of `Stratum::feasible`).
  uint64_t planned_emissions = 0;
};

/// \brief Generates the set P of equivalent physical QEPs for a logical
/// plan in a federation (§2.3): join-order commutations × compute
/// site/engine placement × per-site VM counts.
///
/// Scans are pinned to their table's placement (data does not move at rest);
/// every other operator is assigned to a chosen compute (site, engine), and
/// each participating site gets a VM count from `node_counts` — the
/// x_nodeA / x_nodeB knobs of Example 2.1. In a cloud the same logical plan
/// thus explodes into many equivalent QEPs (Example 3.1).
class PlanEnumerator {
 public:
  PlanEnumerator(const Federation* federation, const Catalog* catalog,
                 EnumeratorOptions options = EnumeratorOptions());

  /// Receives one batch of annotated physical plans, in enumeration
  /// order, with ownership. Returning a non-OK status aborts the
  /// enumeration and propagates out of `EnumerateChunked`.
  using ChunkVisitor = std::function<Status(std::vector<QueryPlan>&& chunk)>;

  /// Receives one batch of annotated physical plans plus each plan's
  /// global sequence number (`seqs[i]` is `chunk[i]`'s 0-based emission
  /// index in `EnumeratePhysical` order). Returning a non-OK status
  /// aborts the enumeration and propagates out of
  /// `EnumerateShardChunked`.
  using SequencedChunkVisitor = std::function<Status(
      std::vector<QueryPlan>&& chunk, std::vector<uint64_t>&& seqs)>;

  /// Emits fully annotated physical plans with cardinalities estimated.
  /// The logical plan must validate and every scanned table must have a
  /// placement in the federation.
  StatusOr<std::vector<QueryPlan>> EnumeratePhysical(
      const QueryPlan& logical) const;

  /// Streaming enumeration: generates exactly the plans (and order) of
  /// `EnumeratePhysical`, but hands them to `visitor` in batches of at
  /// most `chunk_size` so no more than one chunk is ever materialised at
  /// a time — the generator half of the O(front + chunk) streaming
  /// pipeline. Fails with the same errors as `EnumeratePhysical`
  /// (including "no feasible physical plan" when nothing is emitted);
  /// `chunk_size` must be positive and `visitor` non-null.
  Status EnumerateChunked(const QueryPlan& logical, size_t chunk_size,
                          const ChunkVisitor& visitor) const;

  /// Deterministically splits the plan space of `logical` into
  /// `num_shards` disjoint shards of whole strata, balanced by feasible
  /// plan count (greedy longest-processing-time over the closed-form
  /// stratum sizes, ties to the lower shard id). The union of the shards
  /// is exactly the serial emission sequence of `EnumeratePhysical` —
  /// same plans, same global sequence numbers, same max_plans cap.
  /// Shards may come back empty when there are fewer non-empty strata
  /// than shards. Fails with `EnumeratePhysical`'s resolution errors,
  /// with "no feasible physical plan" when the whole space is infeasible,
  /// and rejects `num_shards == 0`.
  StatusOr<std::vector<EnumerationShard>> PartitionShards(
      const QueryPlan& logical, size_t num_shards) const;

  /// Streams one shard: enumerates exactly the plans of the shard's
  /// strata (in ascending stratum order, serial order within each) and
  /// hands them to `visitor` in batches of at most `chunk_size` together
  /// with their global sequence numbers. Unlike `EnumerateChunked` an
  /// empty shard is not an error — infeasibility of the whole space is
  /// `PartitionShards`'s job. The shard must come from `PartitionShards`
  /// on the same enumerator and logical plan.
  Status EnumerateShardChunked(const QueryPlan& logical,
                               const EnumerationShard& shard,
                               size_t chunk_size,
                               const SequencedChunkVisitor& visitor) const;

  /// Example 3.1: number of distinct (vCPU, memory-GiB) execution
  /// configurations available from a resource pool — 70 x 260 = 18,200.
  static uint64_t CountResourceConfigurations(int vcpu_pool,
                                              int memory_gib_pool);

 private:
  struct Compute {
    SiteId site;
    EngineKind engine;
  };

  /// Everything `logical`'s plan space depends on, resolved once per
  /// enumeration: table placements, candidate computes, join-order
  /// variants. The stratum grid is
  /// `variants × computes × node_counts` (leading digit last,
  /// `Stratum::index = (v * |computes| + c) * |node_counts| + digit`).
  struct EnumerationSpace {
    std::vector<SiteId> data_sites;
    std::vector<std::pair<std::string, Federation::Placement>> placements;
    std::vector<Compute> computes;
    std::vector<QueryPlan> variants;
    /// True when the plan has at least one non-scan operator, i.e. the
    /// compute site actually hosts work and constrains feasibility.
    bool has_compute_node = false;
  };

  /// Per-stratum derived state: the participating sites and which VM
  /// counts each of them admits.
  struct StratumSpec {
    size_t variant = 0;
    size_t compute = 0;
    size_t leading_digit = 0;
    std::vector<SiteId> used_sites;
    /// allowed[i][k] — may site used_sites[i] run with node_counts[k]?
    /// (Always true for a site hosting no operator of the plan.)
    std::vector<std::vector<char>> allowed;
  };

  Status ResolveSpace(const QueryPlan& logical, EnumerationSpace* space) const;

  StatusOr<StratumSpec> MakeStratumSpec(const EnumerationSpace& space,
                                        size_t stratum_index) const;

  /// Closed-form number of feasible plans in a stratum (before the
  /// max_plans cap): the product over participating sites of the number
  /// of admissible VM counts, with the leading digit pinned.
  static uint64_t StratumFeasibleCount(const StratumSpec& spec);

  /// Emits every feasible plan of one stratum in serial order, assigning
  /// consecutive global sequence numbers from `*next_seq` and honouring
  /// the global `options_.max_plans` cap.
  Status EnumerateStratum(
      const EnumerationSpace& space, const StratumSpec& spec,
      uint64_t* next_seq,
      const std::function<Status(QueryPlan&&, uint64_t)>& emit) const;

  /// Shared generator core: invokes `emit` once per feasible annotated
  /// plan, stopping after `options_.max_plans` emissions.
  Status ForEachPhysical(
      const QueryPlan& logical,
      const std::function<Status(QueryPlan&&)>& emit) const;

  std::vector<QueryPlan> JoinOrderVariants(const QueryPlan& logical) const;

  const Federation* federation_;
  const Catalog* catalog_;
  EnumeratorOptions options_;
};

}  // namespace midas

#endif  // MIDAS_QUERY_ENUMERATOR_H_
