#include "query/plan.h"

#include <algorithm>
#include <sstream>

namespace midas {

std::string OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kScan:
      return "Scan";
    case OperatorKind::kFilter:
      return "Filter";
    case OperatorKind::kProject:
      return "Project";
    case OperatorKind::kJoin:
      return "Join";
    case OperatorKind::kAggregate:
      return "Aggregate";
    case OperatorKind::kSort:
      return "Sort";
  }
  return "?";
}

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MIDAS_PLAN_NODE_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MIDAS_PLAN_NODE_POOL_DISABLED 1
#endif
#endif

#ifndef MIDAS_PLAN_NODE_POOL_DISABLED

// Slab pool behind PlanNode::operator new/delete. Each thread owns a free
// list of fixed-size slots; an empty list is refilled by carving a fresh
// slab from the global heap (one ::operator new per kSlabNodes nodes).
// Slots freed on a thread re-enter only that thread's list, so the hot
// path is entirely lock- and atomic-free; cross-thread handoff of the
// node itself is the caller's synchronisation, as with any allocator.
// Slabs are intentionally retained for the process lifetime: static
// destructors may still free PlanNodes, and the per-node amortised cost
// is what matters, not slab reclamation.
struct FreeSlot {
  FreeSlot* next;
};

constexpr size_t kSlabNodes = 256;
constexpr size_t kSlotSize =
    sizeof(PlanNode) > sizeof(FreeSlot) ? sizeof(PlanNode) : sizeof(FreeSlot);

thread_local FreeSlot* t_free_list = nullptr;

void* PoolAllocate() {
  if (t_free_list == nullptr) {
    // sizeof(PlanNode) is a multiple of its alignment and ::operator new
    // returns max_align_t-aligned storage, so consecutive slots are
    // correctly aligned for PlanNode.
    char* slab = static_cast<char*>(::operator new(kSlabNodes * kSlotSize));
    for (size_t i = kSlabNodes; i > 0; --i) {
      auto* slot = reinterpret_cast<FreeSlot*>(slab + (i - 1) * kSlotSize);
      slot->next = t_free_list;
      t_free_list = slot;
    }
  }
  FreeSlot* slot = t_free_list;
  t_free_list = slot->next;
  return slot;
}

void PoolFree(void* ptr) {
  auto* slot = static_cast<FreeSlot*>(ptr);
  slot->next = t_free_list;
  t_free_list = slot;
}

#endif  // MIDAS_PLAN_NODE_POOL_DISABLED

}  // namespace

void* PlanNode::operator new(size_t size) {
#ifndef MIDAS_PLAN_NODE_POOL_DISABLED
  if (size == sizeof(PlanNode)) return PoolAllocate();
#endif
  return ::operator new(size);
}

void PlanNode::operator delete(void* ptr, size_t size) noexcept {
  if (ptr == nullptr) return;
#ifndef MIDAS_PLAN_NODE_POOL_DISABLED
  if (size == sizeof(PlanNode)) {
    PoolFree(ptr);
    return;
  }
#endif
  ::operator delete(ptr, size);
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = CloneShallow();
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::unique_ptr<PlanNode> PlanNode::CloneShallow() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->table = table;
  copy->scan_fraction = scan_fraction;
  copy->predicates = predicates;
  copy->columns = columns;
  copy->left_join_column = left_join_column;
  copy->right_join_column = right_join_column;
  copy->join_selectivity_override = join_selectivity_override;
  copy->num_groups = num_groups;
  copy->site = site;
  copy->engine = engine;
  copy->num_nodes = num_nodes;
  copy->output_rows = output_rows;
  copy->output_bytes = output_bytes;
  return copy;
}

QueryPlan::QueryPlan(const QueryPlan& other)
    : root_(other.root_ ? other.root_->Clone() : nullptr) {}

QueryPlan& QueryPlan::operator=(const QueryPlan& other) {
  if (this != &other) {
    root_ = other.root_ ? other.root_->Clone() : nullptr;
  }
  return *this;
}

namespace {

void CollectPreOrder(const PlanNode* node,
                     std::vector<const PlanNode*>* out) {
  if (node == nullptr) return;
  out->push_back(node);
  for (const auto& child : node->children) CollectPreOrder(child.get(), out);
}

void CollectPreOrderMutable(PlanNode* node, std::vector<PlanNode*>* out) {
  if (node == nullptr) return;
  out->push_back(node);
  for (auto& child : node->children) {
    CollectPreOrderMutable(child.get(), out);
  }
}

size_t ExpectedArity(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kScan:
      return 0;
    case OperatorKind::kJoin:
      return 2;
    default:
      return 1;
  }
}

}  // namespace

std::vector<const PlanNode*> QueryPlan::Nodes() const {
  std::vector<const PlanNode*> out;
  CollectPreOrder(root_.get(), &out);
  return out;
}

std::vector<PlanNode*> QueryPlan::MutableNodes() {
  std::vector<PlanNode*> out;
  CollectPreOrderMutable(root_.get(), &out);
  return out;
}

std::vector<std::string> QueryPlan::BaseTables() const {
  std::vector<std::string> out;
  for (const PlanNode* node : Nodes()) {
    if (node->kind == OperatorKind::kScan) out.push_back(node->table);
  }
  return out;
}

Status QueryPlan::Validate(const Catalog& catalog) const {
  if (root_ == nullptr) return Status::InvalidArgument("empty plan");
  for (const PlanNode* node : Nodes()) {
    if (node->children.size() != ExpectedArity(node->kind)) {
      return Status::InvalidArgument(
          OperatorKindName(node->kind) + " expects " +
          std::to_string(ExpectedArity(node->kind)) + " inputs, has " +
          std::to_string(node->children.size()));
    }
    if (node->kind == OperatorKind::kScan && !catalog.Contains(node->table)) {
      return Status::NotFound("scan of unknown table: " + node->table);
    }
    if (node->kind == OperatorKind::kJoin &&
        (node->left_join_column.empty() || node->right_join_column.empty())) {
      return Status::InvalidArgument("join without join columns");
    }
    if (node->num_nodes <= 0) {
      return Status::InvalidArgument("operator annotated with <= 0 VMs");
    }
  }
  return Status::OK();
}

std::string QueryPlan::ToString() const {
  std::ostringstream os;
  struct Frame {
    const PlanNode* node;
    int depth;
  };
  std::vector<Frame> stack;
  if (root_) stack.push_back({root_.get(), 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    os << std::string(static_cast<size_t>(f.depth) * 2, ' ')
       << OperatorKindName(f.node->kind);
    if (f.node->kind == OperatorKind::kScan) os << "(" << f.node->table << ")";
    if (f.node->kind == OperatorKind::kJoin) {
      os << "(" << f.node->left_join_column << " = "
         << f.node->right_join_column << ")";
    }
    if (f.node->engine.has_value()) {
      os << " @" << EngineKindName(*f.node->engine);
      if (f.node->site.has_value()) os << "/site" << *f.node->site;
      os << " x" << f.node->num_nodes;
    }
    if (f.node->output_rows > 0.0) {
      os << "  [rows=" << static_cast<uint64_t>(f.node->output_rows) << "]";
    }
    os << "\n";
    // Push children in reverse so the left child prints first.
    for (auto it = f.node->children.rbegin(); it != f.node->children.rend();
         ++it) {
      stack.push_back({it->get(), f.depth + 1});
    }
  }
  return os.str();
}

std::unique_ptr<PlanNode> MakeScan(const std::string& table) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kScan;
  node->table = table;
  return node;
}

std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> input,
                                     std::vector<Predicate> predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kFilter;
  node->predicates = std::move(predicates);
  node->children.push_back(std::move(input));
  return node;
}

std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> input,
                                      std::vector<std::string> columns) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kProject;
  node->columns = std::move(columns);
  node->children.push_back(std::move(input));
  return node;
}

std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   const std::string& left_column,
                                   const std::string& right_column) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kJoin;
  node->left_join_column = left_column;
  node->right_join_column = right_column;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> input,
                                        uint64_t num_groups) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kAggregate;
  node->num_groups = num_groups;
  node->children.push_back(std::move(input));
  return node;
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> input) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OperatorKind::kSort;
  node->children.push_back(std::move(input));
  return node;
}

StatusOr<QueryPlan> Combine(QueryPlan p1, QueryPlan p2, OperatorKind op,
                            const std::string& left_column,
                            const std::string& right_column) {
  if (op != OperatorKind::kJoin) {
    return Status::InvalidArgument("Combine requires a binary operator");
  }
  if (p1.empty() || p2.empty()) {
    return Status::InvalidArgument("Combine of an empty plan");
  }
  auto joined = MakeJoin(p1.ReleaseRoot(), p2.ReleaseRoot(), left_column,
                         right_column);
  return QueryPlan(std::move(joined));
}

namespace {

struct NodeStats {
  double rows = 0.0;
  double width = 0.0;  // bytes per row
  // NDV of the join column as seen at this node (propagated from the base
  // table, capped by the current row count).
  double join_ndv = 1.0;
};

// Finds the NDV of `column` in any base table below `node`.
double FindColumnNdv(const Catalog& catalog, const PlanNode& node,
                     const std::string& column) {
  if (node.kind == OperatorKind::kScan) {
    auto table = catalog.Find(node.table);
    if (!table.ok()) return 1.0;
    auto col = (*table)->FindColumn(column);
    if (!col.ok()) return 0.0;  // column not here
    return static_cast<double>((*col)->distinct_values);
  }
  for (const auto& child : node.children) {
    const double ndv = FindColumnNdv(catalog, *child, column);
    if (ndv > 0.0) return ndv;
  }
  return 0.0;
}

// Locates the base table that provides `column` under `node` (for filter
// selectivity estimation).
const TableDef* FindProvidingTable(const Catalog& catalog,
                                   const PlanNode& node,
                                   const std::string& column) {
  if (node.kind == OperatorKind::kScan) {
    auto table = catalog.Find(node.table);
    if (!table.ok()) return nullptr;
    if ((*table)->FindColumn(column).ok()) return *table;
    return nullptr;
  }
  for (const auto& child : node.children) {
    const TableDef* t = FindProvidingTable(catalog, *child, column);
    if (t != nullptr) return t;
  }
  return nullptr;
}

StatusOr<NodeStats> EstimateNode(const Catalog& catalog, PlanNode* node) {
  NodeStats stats;
  switch (node->kind) {
    case OperatorKind::kScan: {
      MIDAS_ASSIGN_OR_RETURN(const TableDef* table,
                             catalog.Find(node->table));
      if (node->scan_fraction <= 0.0 || node->scan_fraction > 1.0) {
        return Status::InvalidArgument("scan_fraction outside (0, 1]");
      }
      stats.rows = static_cast<double>(table->row_count) *
                   node->scan_fraction;
      stats.width = table->RowWidthBytes();
      break;
    }
    case OperatorKind::kFilter: {
      MIDAS_ASSIGN_OR_RETURN(NodeStats in,
                             EstimateNode(catalog, node->children[0].get()));
      double selectivity = 1.0;
      for (const Predicate& p : node->predicates) {
        const TableDef* table =
            FindProvidingTable(catalog, *node->children[0], p.column);
        if (table == nullptr && !p.selectivity_override.has_value()) {
          return Status::NotFound("filter column unresolvable: " + p.column);
        }
        if (p.selectivity_override.has_value()) {
          selectivity *= *p.selectivity_override;
        } else {
          MIDAS_ASSIGN_OR_RETURN(double s, EstimateSelectivity(*table, p));
          selectivity *= s;
        }
      }
      stats.rows = in.rows * std::clamp(selectivity, 0.0, 1.0);
      stats.width = in.width;
      break;
    }
    case OperatorKind::kProject: {
      MIDAS_ASSIGN_OR_RETURN(NodeStats in,
                             EstimateNode(catalog, node->children[0].get()));
      stats.rows = in.rows;
      // Width of the retained columns, resolved against base tables.
      double width = 0.0;
      for (const std::string& col : node->columns) {
        const TableDef* table =
            FindProvidingTable(catalog, *node->children[0], col);
        if (table == nullptr) {
          return Status::NotFound("projected column unresolvable: " + col);
        }
        MIDAS_ASSIGN_OR_RETURN(const ColumnDef* cd, table->FindColumn(col));
        width += cd->avg_width_bytes;
      }
      stats.width = width > 0.0 ? width : in.width;
      break;
    }
    case OperatorKind::kJoin: {
      MIDAS_ASSIGN_OR_RETURN(NodeStats left,
                             EstimateNode(catalog, node->children[0].get()));
      MIDAS_ASSIGN_OR_RETURN(NodeStats right,
                             EstimateNode(catalog, node->children[1].get()));
      double selectivity;
      if (node->join_selectivity_override.has_value()) {
        selectivity = *node->join_selectivity_override;
      } else {
        const double ndv_l =
            FindColumnNdv(catalog, *node->children[0], node->left_join_column);
        const double ndv_r = FindColumnNdv(catalog, *node->children[1],
                                           node->right_join_column);
        if (ndv_l <= 0.0 || ndv_r <= 0.0) {
          return Status::NotFound("join column unresolvable");
        }
        selectivity = 1.0 / std::max(ndv_l, ndv_r);
      }
      stats.rows = left.rows * right.rows * selectivity;
      stats.width = left.width + right.width;
      break;
    }
    case OperatorKind::kAggregate: {
      MIDAS_ASSIGN_OR_RETURN(NodeStats in,
                             EstimateNode(catalog, node->children[0].get()));
      stats.rows = std::min(in.rows, static_cast<double>(node->num_groups));
      stats.width = 16.0;  // group key + aggregate value
      break;
    }
    case OperatorKind::kSort: {
      MIDAS_ASSIGN_OR_RETURN(NodeStats in,
                             EstimateNode(catalog, node->children[0].get()));
      stats = in;
      break;
    }
  }
  node->output_rows = stats.rows;
  node->output_bytes = stats.rows * stats.width;
  return stats;
}

}  // namespace

Status EstimateCardinalities(const Catalog& catalog, QueryPlan* plan) {
  if (plan == nullptr || plan->empty()) {
    return Status::InvalidArgument("empty plan");
  }
  MIDAS_RETURN_IF_ERROR(plan->Validate(catalog));
  return EstimateNode(catalog, plan->mutable_root()).status();
}

}  // namespace midas
