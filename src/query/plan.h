#ifndef MIDAS_QUERY_PLAN_H_
#define MIDAS_QUERY_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/site.h"
#include "query/predicate.h"
#include "query/schema.h"

namespace midas {

/// \brief Relational operators a Query Execution Plan is built from
/// (the set O of §2.3).
enum class OperatorKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
};

std::string OperatorKindName(OperatorKind kind);

/// \brief One node of a QEP tree: the logical operator, its physical
/// annotations (which site/engine executes it and with how many VMs), and
/// the cardinality estimates derived for it.
struct PlanNode {
  OperatorKind kind = OperatorKind::kScan;

  // --- logical payload (fields used depend on `kind`) ---
  std::string table;                    // kScan: base table name
  /// kScan: fraction of the table actually read (partition pruning on
  /// date-range predicates); 1.0 = full scan.
  double scan_fraction = 1.0;
  std::vector<Predicate> predicates;    // kFilter
  std::vector<std::string> columns;     // kProject: retained columns
  std::string left_join_column;         // kJoin
  std::string right_join_column;        // kJoin
  std::optional<double> join_selectivity_override;  // kJoin
  uint64_t num_groups = 1;              // kAggregate: output groups

  // --- physical annotations (set by the enumerator / optimizer) ---
  std::optional<SiteId> site;
  std::optional<EngineKind> engine;
  int num_nodes = 1;

  // --- derived statistics (filled by EstimateCardinalities) ---
  double output_rows = 0.0;
  double output_bytes = 0.0;

  std::vector<std::unique_ptr<PlanNode>> children;

  /// Pooled allocation: enumeration materialises and frees millions of
  /// node trees, so PlanNodes draw from slab-backed thread-local free
  /// lists instead of the global heap — no allocator lock on the shard
  /// hot path. A freed slot is recycled only by the thread that freed it;
  /// slabs live for the process lifetime. Disabled under asan/tsan so the
  /// sanitizers keep full heap instrumentation on nodes.
  static void* operator new(size_t size);
  static void operator delete(void* ptr, size_t size) noexcept;

  std::unique_ptr<PlanNode> Clone() const;
  /// Copies the node's payload and annotations but none of its children —
  /// for callers (e.g. the enumerator's commutation recursion) that
  /// rebuild the child list themselves instead of paying for a deep copy
  /// they would immediately discard.
  std::unique_ptr<PlanNode> CloneShallow() const;
};

/// \brief A Query Execution Plan p ∈ P: an operator tree over base tables.
class QueryPlan {
 public:
  QueryPlan() = default;
  explicit QueryPlan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {}

  QueryPlan(const QueryPlan& other);
  QueryPlan& operator=(const QueryPlan& other);
  QueryPlan(QueryPlan&&) = default;
  QueryPlan& operator=(QueryPlan&&) = default;

  bool empty() const { return root_ == nullptr; }
  const PlanNode* root() const { return root_.get(); }
  PlanNode* mutable_root() { return root_.get(); }

  /// Detaches and returns the root, leaving the plan empty (used by
  /// Combine to splice plans without copying).
  std::unique_ptr<PlanNode> ReleaseRoot() { return std::move(root_); }

  /// Pre-order list of all nodes (root first).
  std::vector<const PlanNode*> Nodes() const;
  std::vector<PlanNode*> MutableNodes();

  /// Names of all base tables scanned by the plan.
  std::vector<std::string> BaseTables() const;

  /// Checks the tree is structurally sound and resolvable against the
  /// catalog (tables/columns exist, operator arities correct).
  Status Validate(const Catalog& catalog) const;

  /// Indented textual rendering for debugging and the examples.
  std::string ToString() const;

 private:
  std::unique_ptr<PlanNode> root_;
};

/// Leaf constructors.
std::unique_ptr<PlanNode> MakeScan(const std::string& table);
std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> input,
                                     std::vector<Predicate> predicates);
std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> input,
                                      std::vector<std::string> columns);
std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   const std::string& left_column,
                                   const std::string& right_column);
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> input,
                                        uint64_t num_groups);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> input);

/// The paper's Combine(p1, p2, o) (§2.3): a plan is divisible into two
/// sub-plans joined by an operator. Consumes both inputs; `op` must be a
/// binary operator (currently kJoin).
StatusOr<QueryPlan> Combine(QueryPlan p1, QueryPlan p2, OperatorKind op,
                            const std::string& left_column,
                            const std::string& right_column);

/// Fills output_rows / output_bytes for every node bottom-up using System-R
/// style estimation: scans read the full table, filters apply conjunction
/// selectivity, joins use 1/max(NDV) (or the override), aggregates emit
/// num_groups rows, projects scale width by retained columns.
Status EstimateCardinalities(const Catalog& catalog, QueryPlan* plan);

}  // namespace midas

#endif  // MIDAS_QUERY_PLAN_H_
