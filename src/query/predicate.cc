#include "query/predicate.h"

#include <algorithm>

namespace midas {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

StatusOr<double> EstimateSelectivity(const TableDef& table,
                                     const Predicate& predicate) {
  if (predicate.selectivity_override.has_value()) {
    const double s = *predicate.selectivity_override;
    if (s < 0.0 || s > 1.0) {
      return Status::InvalidArgument("selectivity override outside [0, 1]");
    }
    return s;
  }
  MIDAS_ASSIGN_OR_RETURN(const ColumnDef* col,
                         table.FindColumn(predicate.column));
  const double ndv = std::max<double>(1.0, col->distinct_values);
  switch (predicate.op) {
    case CompareOp::kEq:
      return 1.0 / ndv;
    case CompareOp::kNe:
      return 1.0 - 1.0 / ndv;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      return 1.0 / 3.0;
    case CompareOp::kBetween:
      return 1.0 / 4.0;
    case CompareOp::kLike:
      return 1.0 / 10.0;
  }
  return Status::Internal("unhandled compare op");
}

StatusOr<double> EstimateConjunctionSelectivity(
    const TableDef& table, const std::vector<Predicate>& predicates) {
  double s = 1.0;
  for (const Predicate& p : predicates) {
    MIDAS_ASSIGN_OR_RETURN(double ps, EstimateSelectivity(table, p));
    s *= ps;
  }
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace midas
