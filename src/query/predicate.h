#ifndef MIDAS_QUERY_PREDICATE_H_
#define MIDAS_QUERY_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/schema.h"

namespace midas {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween, kLike };

std::string CompareOpName(CompareOp op);

/// \brief A simple column-vs-constant predicate with an optional explicit
/// selectivity override (used by the TPC-H query templates whose reference
/// selectivities are known).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  /// When set, used verbatim; otherwise estimated from column statistics.
  std::optional<double> selectivity_override;
};

/// System-R style selectivity defaults when only NDV statistics exist:
/// eq -> 1/NDV, range -> 1/3, between -> 1/4, ne -> 1 - 1/NDV, like -> 1/10.
StatusOr<double> EstimateSelectivity(const TableDef& table,
                                     const Predicate& predicate);

/// Product of per-predicate selectivities (independence assumption),
/// clamped to [0, 1].
StatusOr<double> EstimateConjunctionSelectivity(
    const TableDef& table, const std::vector<Predicate>& predicates);

}  // namespace midas

#endif  // MIDAS_QUERY_PREDICATE_H_
