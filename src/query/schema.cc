#include "query/schema.h"

namespace midas {

double TableDef::RowWidthBytes() const {
  double width = 0.0;
  for (const ColumnDef& col : columns) width += col.avg_width_bytes;
  return width;
}

StatusOr<const ColumnDef*> TableDef::FindColumn(
    const std::string& column) const {
  for (const ColumnDef& col : columns) {
    if (col.name == column) return &col;
  }
  return Status::NotFound("column " + column + " not in table " + name);
}

Status Catalog::AddTable(TableDef table) {
  if (Contains(table.name)) {
    return Status::AlreadyExists("duplicate table: " + table.name);
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

StatusOr<const TableDef*> Catalog::Find(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (t.name == name) return &t;
  }
  return Status::NotFound("table not in catalog: " + name);
}

bool Catalog::Contains(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (t.name == name) return true;
  }
  return false;
}

double Catalog::TotalBytes() const {
  double total = 0.0;
  for (const TableDef& t : tables_) total += t.SizeBytes();
  return total;
}

}  // namespace midas
