#ifndef MIDAS_QUERY_SCHEMA_H_
#define MIDAS_QUERY_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace midas {

enum class ColumnType { kInt, kDouble, kString, kDate };

/// \brief Column metadata with the statistics the selectivity and
/// cardinality estimators need.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Average encoded width in bytes.
  double avg_width_bytes = 8.0;
  /// Number of distinct values (for equality selectivity, 1/NDV).
  uint64_t distinct_values = 1;
};

/// \brief Base-table metadata: columns plus cardinality.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  uint64_t row_count = 0;

  double RowWidthBytes() const;
  double SizeBytes() const { return RowWidthBytes() * row_count; }

  StatusOr<const ColumnDef*> FindColumn(const std::string& column) const;
};

/// \brief Collection of table definitions a query is resolved against.
class Catalog {
 public:
  Catalog() = default;

  Status AddTable(TableDef table);
  StatusOr<const TableDef*> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Total data volume across all tables (bytes).
  double TotalBytes() const;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace midas

#endif  // MIDAS_QUERY_SCHEMA_H_
