#include "regression/dream.h"

#include <algorithm>

#include "regression/incremental_ols.h"

namespace midas {

StatusOr<Vector> DreamEstimate::Predict(const Vector& x) const {
  if (models.empty()) {
    return Status::FailedPrecondition("DREAM estimate holds no models");
  }
  Vector out;
  out.reserve(models.size());
  for (const OlsModel& model : models) {
    MIDAS_ASSIGN_OR_RETURN(double c, model.Predict(x));
    out.push_back(c);
  }
  return out;
}

StatusOr<Matrix> DreamEstimate::PredictBatch(const Matrix& X) const {
  Matrix coeffs;
  Matrix out;
  MIDAS_RETURN_IF_ERROR(PredictBatchInto(X, &coeffs, &out));
  return out;
}

Status DreamEstimate::PredictBatchInto(const Matrix& X, Matrix* coeffs_scratch,
                                       Matrix* out) const {
  if (models.empty()) {
    return Status::FailedPrecondition("DREAM estimate holds no models");
  }
  const size_t n_metrics = models.size();
  // Stack the per-metric slopes into one L × M coefficient matrix and seed
  // the output with the intercepts; the GEMM then adds the feature terms
  // in ascending feature order, matching OlsModel::Predict's association.
  Matrix& coeffs = *coeffs_scratch;
  coeffs.Resize(X.cols(), n_metrics);
  out->Resize(X.rows(), n_metrics);
  for (size_t m = 0; m < n_metrics; ++m) {
    const Vector& beta = models[m].coefficients();
    if (beta.empty()) {
      return Status::FailedPrecondition("model is not fitted");
    }
    if (beta.size() - 1 != X.cols()) {
      return Status::InvalidArgument("feature length mismatch");
    }
    for (size_t l = 0; l + 1 < beta.size(); ++l) coeffs(l, m) = beta[l + 1];
    for (size_t r = 0; r < X.rows(); ++r) (*out)(r, m) = beta[0];
  }
  MIDAS_RETURN_IF_ERROR(X.MultiplyInto(coeffs, out, /*accumulate=*/true));
  return Status::OK();
}

Dream::Dream(DreamOptions options) : options_(std::move(options)) {}

StatusOr<DreamEstimate> Dream::EstimateCostValue(
    const TrainingSet& history) const {
  const size_t l = history.num_features();
  const size_t m_min = l + 2;  // smallest statistically valid window
  if (history.num_metrics() == 0) {
    return Status::InvalidArgument("training set declares no cost metrics");
  }
  if (history.size() < m_min) {
    return Status::FailedPrecondition(
        "DREAM needs at least L + 2 = " + std::to_string(m_min) +
        " observations, have " + std::to_string(history.size()));
  }
  size_t m_cap = options_.m_max == 0 ? history.size() : options_.m_max;
  m_cap = std::min(m_cap, history.size());
  m_cap = std::max(m_cap, m_min);

  StatusOr<DreamEstimate> best =
      options_.engine == DreamEngine::kBatch
          ? EstimateBatch(history, m_min, m_cap)
          : EstimateIncremental(history, m_min, m_cap);
  if (best.ok() && best->models.empty()) {
    return Status::Internal(
        "DREAM could not fit any window (degenerate history)");
  }
  return best;
}

DreamEstimate Dream::MakeWindowEstimate(std::vector<OlsModel> models,
                                        size_t window_size) const {
  DreamEstimate est;
  est.window_size = window_size;
  est.r_squared.reserve(models.size());
  bool all_reach = true;
  for (const OlsModel& model : models) {
    const double r2 = options_.use_adjusted_r2 ? model.adjusted_r_squared()
                                               : model.r_squared();
    est.r_squared.push_back(r2);
    if (r2 < options_.r2_require) all_reach = false;
  }
  est.converged = all_reach;
  est.models = std::move(models);
  return est;
}

namespace {

// Rank-revealing batch fit of every metric over the window; false when any
// metric's fit fails (degenerate window — the caller keeps growing).
bool FitWindowBatch(const TrainingWindow& window, size_t n_metrics,
                    const OlsOptions& options, std::vector<OlsModel>* out) {
  out->clear();
  const std::vector<Vector> xs = window.CopyFeatures();
  for (size_t metric = 0; metric < n_metrics; ++metric) {
    auto fit = FitOls(xs, window.CopyCosts(metric), options);
    if (!fit.ok()) return false;
    out->push_back(std::move(fit).ValueOrDie());
  }
  return true;
}

}  // namespace

StatusOr<DreamEstimate> Dream::EstimateIncremental(const TrainingSet& history,
                                                   size_t m_min,
                                                   size_t m_cap) const {
  const size_t n_metrics = history.num_metrics();
  MIDAS_ASSIGN_OR_RETURN(TrainingWindow window, history.RecentWindow(m_cap));
  // window.at(0) is the *oldest* observation any window up to the cap can
  // use; the window of size m covers indices [m_cap - m, m_cap). The
  // normal-equation statistics are order independent, so growing m by one
  // feeds the engine the next *older* observation — each exactly once.
  IncrementalOls engine(history.num_features(), n_metrics);
  for (size_t i = m_cap - m_min; i < m_cap; ++i) {
    MIDAS_RETURN_IF_ERROR(engine.Add(window.features(i), window.at(i).costs));
  }
  DreamEstimate best;
  std::vector<OlsModel> models;
  for (size_t m = m_min; m <= m_cap; ++m) {
    if (m > m_min) {
      const size_t next_older = m_cap - m;
      MIDAS_RETURN_IF_ERROR(engine.Add(window.features(next_older),
                                       window.at(next_older).costs));
    }
    if (!engine.FitAll(&models).ok() &&
        // Shared Gram matrix numerically singular (collinear or constant
        // feature): this window needs the rank-revealing batch path.
        !FitWindowBatch(window.Newest(m), n_metrics, options_.ols, &models)) {
      continue;  // degenerate window: keep growing
    }
    best = MakeWindowEstimate(std::move(models), m);
    if (best.converged) return best;
    models.clear();
  }
  // R² requirement not met anywhere up to the cap: Algorithm 1 returns the
  // models at the largest window tried.
  return best;
}

StatusOr<DreamEstimate> Dream::EstimateBatch(const TrainingSet& history,
                                             size_t m_min,
                                             size_t m_cap) const {
  const size_t n_metrics = history.num_metrics();
  DreamEstimate best;
  for (size_t m = m_min; m <= m_cap; ++m) {
    MIDAS_ASSIGN_OR_RETURN(TrainingWindow window, history.RecentWindow(m));
    std::vector<OlsModel> models;
    if (!FitWindowBatch(window, n_metrics, options_.ols, &models)) {
      continue;  // degenerate window: keep growing
    }
    best = MakeWindowEstimate(std::move(models), m);
    if (best.converged) return best;
  }
  return best;
}

StatusOr<Vector> Dream::PredictCosts(const TrainingSet& history,
                                     const Vector& x) const {
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate est, EstimateCostValue(history));
  return est.Predict(x);
}

StatusOr<Matrix> Dream::PredictCostsBatch(const TrainingSet& history,
                                          const Matrix& X) const {
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate est, EstimateCostValue(history));
  return est.PredictBatch(X);
}

StatusOr<TrainingSet> Dream::MakeReducedTrainingSet(
    const TrainingSet& history) const {
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate est, EstimateCostValue(history));
  TrainingSet reduced(history.feature_names(), history.metric_names());
  const size_t start = history.size() - est.window_size;
  for (size_t i = start; i < history.size(); ++i) {
    MIDAS_RETURN_IF_ERROR(reduced.Add(history.at(i)));
  }
  return reduced;
}

}  // namespace midas
