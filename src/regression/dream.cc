#include "regression/dream.h"

#include <algorithm>

namespace midas {

StatusOr<Vector> DreamEstimate::Predict(const Vector& x) const {
  if (models.empty()) {
    return Status::FailedPrecondition("DREAM estimate holds no models");
  }
  Vector out;
  out.reserve(models.size());
  for (const OlsModel& model : models) {
    MIDAS_ASSIGN_OR_RETURN(double c, model.Predict(x));
    out.push_back(c);
  }
  return out;
}

Dream::Dream(DreamOptions options) : options_(std::move(options)) {}

StatusOr<DreamEstimate> Dream::EstimateCostValue(
    const TrainingSet& history) const {
  const size_t l = history.num_features();
  const size_t n_metrics = history.num_metrics();
  if (n_metrics == 0) {
    return Status::InvalidArgument("training set declares no cost metrics");
  }
  const size_t m_min = l + 2;  // smallest statistically valid window
  if (history.size() < m_min) {
    return Status::FailedPrecondition(
        "DREAM needs at least L + 2 = " + std::to_string(m_min) +
        " observations, have " + std::to_string(history.size()));
  }
  size_t m_cap = options_.m_max == 0 ? history.size() : options_.m_max;
  m_cap = std::min(m_cap, history.size());
  m_cap = std::max(m_cap, m_min);

  DreamEstimate best;
  for (size_t m = m_min; m <= m_cap; ++m) {
    MIDAS_ASSIGN_OR_RETURN(std::vector<Vector> xs, history.RecentFeatures(m));
    DreamEstimate current;
    current.window_size = m;
    current.models.reserve(n_metrics);
    current.r_squared.reserve(n_metrics);
    bool fit_ok = true;
    bool all_reach = true;
    for (size_t metric = 0; metric < n_metrics; ++metric) {
      MIDAS_ASSIGN_OR_RETURN(Vector ys, history.RecentCosts(m, metric));
      auto fit = FitOls(xs, ys, options_.ols);
      if (!fit.ok()) {
        fit_ok = false;
        break;
      }
      const double r2 = options_.use_adjusted_r2 ? fit->adjusted_r_squared()
                                                 : fit->r_squared();
      current.r_squared.push_back(r2);
      current.models.push_back(std::move(fit).ValueOrDie());
      if (r2 < options_.r2_require) all_reach = false;
    }
    if (!fit_ok) continue;  // degenerate window: keep growing
    current.converged = all_reach;
    best = std::move(current);
    if (all_reach) return best;
  }
  if (best.models.empty()) {
    return Status::Internal(
        "DREAM could not fit any window (degenerate history)");
  }
  // R² requirement not met anywhere up to the cap: Algorithm 1 returns the
  // models at the largest window tried.
  return best;
}

StatusOr<Vector> Dream::PredictCosts(const TrainingSet& history,
                                     const Vector& x) const {
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate est, EstimateCostValue(history));
  return est.Predict(x);
}

StatusOr<TrainingSet> Dream::MakeReducedTrainingSet(
    const TrainingSet& history) const {
  MIDAS_ASSIGN_OR_RETURN(DreamEstimate est, EstimateCostValue(history));
  TrainingSet reduced(history.feature_names(), history.metric_names());
  const size_t start = history.size() - est.window_size;
  for (size_t i = start; i < history.size(); ++i) {
    MIDAS_RETURN_IF_ERROR(reduced.Add(history.at(i)));
  }
  return reduced;
}

}  // namespace midas
