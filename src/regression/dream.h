#ifndef MIDAS_REGRESSION_DREAM_H_
#define MIDAS_REGRESSION_DREAM_H_

#include <vector>

#include "regression/ols.h"
#include "regression/training_set.h"

namespace midas {

/// \brief Which fitting engine backs Algorithm 1's window growth.
enum class DreamEngine {
  /// Maintains the shared normal-equation statistics (XᵀX once for all
  /// metrics, Xᵀy/Σy/Σy² per metric) and grows the window via rank-1
  /// updates: O(L² + N·L) per added observation and O(L³ + N·L²) per
  /// window solve, independent of the window size m. Numerically singular
  /// windows (collinear or constant features) fall back to the
  /// rank-revealing batch fit below. This is the default.
  kIncremental,
  /// Refits every window from scratch with batch FitOls (pivoted QR per
  /// metric over the m window rows) — the original implementation, kept as
  /// the reference path for equivalence tests and benchmarks.
  kBatch,
};

/// \brief Configuration for the Dynamic REgression AlgorithM.
struct DreamOptions {
  /// R²_require of Algorithm 1: the window stops growing once every metric's
  /// MLR reaches this coefficient of determination. The paper recommends 0.8
  /// "to provide a sufficient quality of service level".
  double r2_require = 0.8;

  /// M_max of Algorithm 1: hard cap on the window size. 0 means "all
  /// available history".
  size_t m_max = 0;

  /// Algorithm 1's literal stopping statistic is R² (Eq. 14, the
  /// default). When true, the *adjusted* R² is used instead, discounting
  /// the mechanical fit inflation of windows barely larger than the
  /// coefficient count. The ablation bench compares both.
  bool use_adjusted_r2 = false;

  /// When true, the fit must also be numerically sound (non-degenerate
  /// window); degenerate windows keep growing even if R² looks good.
  OlsOptions ols;

  /// Fitting engine; see DreamEngine. Both engines implement the same
  /// Algorithm 1 semantics and agree on the selected window, models and
  /// convergence flag (up to floating-point noise).
  DreamEngine engine = DreamEngine::kIncremental;
};

/// \brief Result of one DREAM estimation pass: the fitted per-metric MLR
/// models plus the window that satisfied (or exhausted) the R² requirement.
struct DreamEstimate {
  /// One fitted model per cost metric, in TrainingSet metric order.
  std::vector<OlsModel> models;
  /// Final window size m (number of newest observations used).
  size_t window_size = 0;
  /// R² per metric at the final window.
  std::vector<double> r_squared;
  /// True when every metric reached r2_require before hitting the cap.
  bool converged = false;

  /// Predicted cost vector (one value per metric) for feature vector x.
  StatusOr<Vector> Predict(const Vector& x) const;

  /// Batched Predict: evaluates every metric over the whole batch with one
  /// intercept-initialised GEMM against the stacked coefficient matrix
  /// (X.rows() × L times L × num-metrics). Row r of the result matches
  /// Predict(X.Row(r)): bit-identical under the scalar kernel tier, and
  /// within 1e-12 relative error under a vector tier (linalg/simd.h).
  StatusOr<Matrix> PredictBatch(const Matrix& X) const;

  /// As PredictBatch, but writing into *out and rebuilding the stacked
  /// coefficient matrix inside *coeffs_scratch, so a serving loop reuses
  /// both buffers across calls instead of allocating them per batch.
  Status PredictBatchInto(const Matrix& X, Matrix* coeffs_scratch,
                          Matrix* out) const;
};

/// \brief DREAM — the paper's core contribution (Algorithm 1,
/// EstimateCostValue).
///
/// Fits one Multiple Linear Regression per cost metric over the *newest* m
/// observations of a training set, growing m one observation at a time from
/// the statistical minimum m = L + 2 until every metric's R² reaches
/// r2_require or m hits M_max / end of history. Keeping m small both speeds
/// up the estimation of the thousands of equivalent QEPs a cloud federation
/// generates (Example 3.1) and avoids training on expired measurements in a
/// drifting environment.
class Dream {
 public:
  explicit Dream(DreamOptions options = DreamOptions());

  const DreamOptions& options() const { return options_; }

  /// Algorithm 1. Fails if the history holds fewer than L + 2 observations.
  StatusOr<DreamEstimate> EstimateCostValue(const TrainingSet& history) const;

  /// Convenience: estimate then predict the cost vector of x.
  StatusOr<Vector> PredictCosts(const TrainingSet& history,
                                const Vector& x) const;

  /// Batched PredictCosts: runs Algorithm 1 *once* and scores every row of
  /// X against the fitted window (one row of costs per feature row, one
  /// column per metric). This is the amortisation batch callers rely on —
  /// the per-row path re-runs the window growth for every candidate.
  StatusOr<Matrix> PredictCostsBatch(const TrainingSet& history,
                                     const Matrix& X) const;

  /// The "new training set" output of Figure 2: the chosen window copied
  /// into a fresh TrainingSet, which the Modelling module can train on
  /// instead of the full history.
  StatusOr<TrainingSet> MakeReducedTrainingSet(
      const TrainingSet& history) const;

 private:
  StatusOr<DreamEstimate> EstimateIncremental(const TrainingSet& history,
                                              size_t m_min,
                                              size_t m_cap) const;
  StatusOr<DreamEstimate> EstimateBatch(const TrainingSet& history,
                                        size_t m_min, size_t m_cap) const;

  /// Shared epilogue of one window attempt: records R² per metric and the
  /// convergence verdict against r2_require.
  DreamEstimate MakeWindowEstimate(std::vector<OlsModel> models,
                                   size_t window_size) const;

  DreamOptions options_;
};

}  // namespace midas

#endif  // MIDAS_REGRESSION_DREAM_H_
