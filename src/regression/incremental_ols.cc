#include "regression/incremental_ols.h"

#include <algorithm>

#include "linalg/decomposition.h"

namespace midas {

IncrementalOls::IncrementalOls(size_t num_features, size_t num_metrics)
    : num_features_(num_features),
      num_metrics_(num_metrics),
      gram_(num_features + 1, num_features + 1),
      xty_(num_metrics, Vector(num_features + 1, 0.0)),
      sum_y_(num_metrics, 0.0),
      sum_yy_(num_metrics, 0.0),
      design_row_(num_features + 1, 0.0) {}

Status IncrementalOls::Add(const Vector& features, const Vector& costs) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument("observation feature arity mismatch");
  }
  if (costs.size() != num_metrics_) {
    return Status::InvalidArgument("observation metric arity mismatch");
  }
  design_row_[0] = 1.0;
  std::copy(features.begin(), features.end(), design_row_.begin() + 1);
  gram_.AddOuterProduct(design_row_);
  for (size_t metric = 0; metric < num_metrics_; ++metric) {
    const double y = costs[metric];
    Vector& xty = xty_[metric];
    for (size_t i = 0; i <= num_features_; ++i) xty[i] += design_row_[i] * y;
    sum_y_[metric] += y;
    sum_yy_[metric] += y * y;
  }
  ++num_observations_;
  return Status::OK();
}

void IncrementalOls::Reset() {
  num_observations_ = 0;
  gram_ = Matrix(num_features_ + 1, num_features_ + 1);
  for (Vector& v : xty_) std::fill(v.begin(), v.end(), 0.0);
  std::fill(sum_y_.begin(), sum_y_.end(), 0.0);
  std::fill(sum_yy_.begin(), sum_yy_.end(), 0.0);
}

Status IncrementalOls::FitAll(std::vector<OlsModel>* out) const {
  out->clear();
  const size_t m = num_observations_;
  if (m < num_features_ + 2) {
    return Status::FailedPrecondition(
        "need at least L + 2 observations to fit an MLR with L variables");
  }
  // One shared factorisation; its failure means the window's design matrix
  // is numerically rank deficient for *every* metric.
  MIDAS_RETURN_IF_ERROR(CholeskyFactorInto(gram_, &chol_));
  out->reserve(num_metrics_);
  Vector beta;
  for (size_t metric = 0; metric < num_metrics_; ++metric) {
    MIDAS_RETURN_IF_ERROR(CholeskySolveFactored(chol_, xty_[metric], &beta));
    // SSE = yᵀy − βᵀXᵀy holds at the least-squares optimum; rounding can
    // push either moment difference a hair negative, so clamp at zero.
    const double sse = std::max(0.0, sum_yy_[metric] - Dot(beta, xty_[metric]));
    const double sst = std::max(
        0.0,
        sum_yy_[metric] - sum_y_[metric] * sum_y_[metric] /
                              static_cast<double>(m));
    out->emplace_back(std::move(beta), sse, sst, m, sum_yy_[metric]);
  }
  return Status::OK();
}

}  // namespace midas
