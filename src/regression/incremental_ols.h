#ifndef MIDAS_REGRESSION_INCREMENTAL_OLS_H_
#define MIDAS_REGRESSION_INCREMENTAL_OLS_H_

#include <vector>

#include "regression/ols.h"

namespace midas {

/// \brief Incremental multi-metric OLS over a growing observation window.
///
/// Maintains the sufficient statistics of the normal equations instead of
/// the observations themselves:
///
///   - XᵀX  — the (L+1)x(L+1) Gram matrix of the design matrix (leading
///            ones column + features), shared by *all* N metrics because
///            they regress on the same features,
///   - Xᵀy, Σy, Σy² — one triple per metric.
///
/// Adding one observation is a rank-1 update: O(L²) on the shared Gram
/// matrix plus O(N·L) on the per-metric moments. Fitting at the current
/// window is one Cholesky factorisation of XᵀX — O(L³), shared across
/// metrics — followed by N O(L²) triangular solves; SSE and SST come out
/// algebraically (SSE = Σy² − βᵀXᵀy, SST = Σy² − (Σy)²/m) without
/// re-predicting the m window rows. Growing a window from M to M_max
/// therefore costs O(m·(L² + N·L) ) in updates plus O(m·(L³ + N·L²)) in
/// solves — independent of the window contents' length m per step, unlike
/// a batch refit whose per-step cost itself grows with m.
///
/// The price of the normal equations is numerical: a collinear or constant
/// feature makes XᵀX singular, and conditioning is squared relative to a QR
/// on X. Fit() reports that as a Status failure (the Cholesky pivot check is
/// relative to the Gram diagonal), and callers such as Dream fall back to
/// the rank-revealing batch FitOls for that window.
class IncrementalOls {
 public:
  /// \param num_features L — length of each feature vector.
  /// \param num_metrics N — number of simultaneously regressed responses.
  IncrementalOls(size_t num_features, size_t num_metrics);

  size_t num_features() const { return num_features_; }
  size_t num_metrics() const { return num_metrics_; }
  /// Number of observations accumulated so far (the current window size m).
  size_t size() const { return num_observations_; }

  /// Rank-1 update with one observation. Fails on arity mismatch.
  Status Add(const Vector& features, const Vector& costs);

  /// Drops all accumulated statistics; dimensions are kept and the
  /// internal buffers stay allocated.
  void Reset();

  /// Fits all N metrics at the current window. Requires size() >= L + 2
  /// (the same statistical minimum as batch FitOls). Fails when the shared
  /// Gram matrix is numerically rank deficient; the caller decides whether
  /// to fall back to a rank-revealing batch fit or grow the window.
  ///
  /// On success appends one OlsModel per metric (in metric order) to *out,
  /// which is cleared first.
  Status FitAll(std::vector<OlsModel>* out) const;

 private:
  size_t num_features_;
  size_t num_metrics_;
  size_t num_observations_ = 0;

  Matrix gram_;                    // XᵀX, (L+1)x(L+1), shared across metrics
  std::vector<Vector> xty_;        // per metric, length L+1
  Vector sum_y_;                   // per metric, Σy
  Vector sum_yy_;                  // per metric, Σy²

  // Scratch reused across Add/FitAll calls so the steady state allocates
  // only the per-model coefficient vectors it hands out.
  mutable Vector design_row_;      // [1, x₁, .., x_L]
  mutable Matrix chol_;            // Cholesky factor buffer
};

}  // namespace midas

#endif  // MIDAS_REGRESSION_INCREMENTAL_OLS_H_
