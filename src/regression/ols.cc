#include "regression/ols.h"

#include "linalg/simd.h"

#include <cmath>

#include "linalg/decomposition.h"

namespace midas {

OlsModel::OlsModel(Vector coefficients, double sse, double sst,
                   size_t num_samples, double sum_yy)
    : coefficients_(std::move(coefficients)),
      sse_(sse),
      sst_(sst),
      num_samples_(num_samples),
      sum_yy_(sum_yy) {}

double OlsModel::r_squared() const {
  if (sst_ == 0.0) {
    // Constant response: R² is formally undefined. A perfect fit earns the
    // conventional 1; residual error beyond rounding noise means the model
    // failed to reproduce even a constant, which is the opposite of
    // explanatory power — report 0 instead of the old (vacuously
    // optimistic) 1.
    return sse_ > 1e-12 * std::max(sum_yy_, 1e-12) ? 0.0 : 1.0;
  }
  return 1.0 - sse_ / sst_;
}

double OlsModel::adjusted_r_squared() const {
  const double n = static_cast<double>(num_samples_);
  const double l = static_cast<double>(num_features());
  if (n - l - 1.0 <= 0.0) return r_squared();
  return 1.0 - (1.0 - r_squared()) * (n - 1.0) / (n - l - 1.0);
}

StatusOr<double> OlsModel::Predict(const Vector& x) const {
  if (coefficients_.empty()) {
    return Status::FailedPrecondition("model is not fitted");
  }
  if (x.size() != num_features()) {
    return Status::InvalidArgument("feature length mismatch");
  }
  // Intercept-seeded ascending dot, dispatched through the kernel layer;
  // the scalar tier reproduces this exact association.
  return simd::DotAcc(coefficients_[0], coefficients_.data() + 1, x.data(),
                      x.size());
}

Status OlsModel::PredictBatch(const Matrix& X, Vector* out) const {
  if (coefficients_.empty()) {
    return Status::FailedPrecondition("model is not fitted");
  }
  if (X.cols() != num_features()) {
    return Status::InvalidArgument("feature length mismatch");
  }
  out->resize(X.rows());
  const size_t l = num_features();
  for (size_t r = 0; r < X.rows(); ++r) {
    (*out)[r] = simd::DotAcc(coefficients_[0], coefficients_.data() + 1,
                             X.RowData(r), l);
  }
  return Status::OK();
}

namespace {

// Design matrix A of Eq. 8: leading column of ones, then the features.
Matrix BuildDesignMatrix(const std::vector<Vector>& features) {
  const size_t m = features.size();
  const size_t l = features.empty() ? 0 : features[0].size();
  Matrix a(m, l + 1);
  for (size_t r = 0; r < m; ++r) {
    a.At(r, 0) = 1.0;
    for (size_t c = 0; c < l; ++c) a.At(r, c + 1) = features[r][c];
  }
  return a;
}

// Ridge solve of (AᵀA + λ' I) B = AᵀC, with λ' scaled to the problem:
// λ' = λ · trace(AᵀA) / cols, so the penalty is meaningful regardless of
// the features' magnitudes.
StatusOr<Vector> RidgeSolve(const Matrix& a, const Vector& y, double lambda) {
  Matrix ata = a.Gram();  // AᵀA without materializing the transpose
  double trace = 0.0;
  for (size_t i = 0; i < ata.rows(); ++i) trace += ata.At(i, i);
  const double scaled =
      std::max(lambda * trace / static_cast<double>(ata.rows()), 1e-12);
  for (size_t i = 0; i < ata.rows(); ++i) ata.At(i, i) += scaled;
  MIDAS_ASSIGN_OR_RETURN(Vector aty, a.TransposeTimesVector(y));
  return CholeskySolve(ata, aty);
}

}  // namespace

StatusOr<OlsModel> FitOls(const std::vector<Vector>& features,
                          const Vector& response, const OlsOptions& options) {
  const size_t m = features.size();
  if (m != response.size()) {
    return Status::InvalidArgument("features/response size mismatch");
  }
  if (m == 0) return Status::InvalidArgument("empty training data");
  const size_t l = features[0].size();
  for (const Vector& row : features) {
    if (row.size() != l) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }
  if (m < l + 2) {
    return Status::InvalidArgument(
        "need at least L + 2 observations to fit an MLR with L variables");
  }

  const Matrix a = BuildDesignMatrix(features);
  Vector beta;
  // Rank-revealing solve: dependent columns (e.g., a feature constant over
  // the window) get zero coefficients instead of failing the fit.
  auto qr_solution = PivotedLeastSquaresSolve(a, response);
  if (qr_solution.ok()) {
    beta = std::move(qr_solution).ValueOrDie();
  } else if (options.ridge_fallback > 0.0) {
    MIDAS_ASSIGN_OR_RETURN(beta, RidgeSolve(a, response,
                                            options.ridge_fallback));
  } else {
    return qr_solution.status();
  }

  MIDAS_ASSIGN_OR_RETURN(Vector fitted, a.MultiplyVector(beta));
  double sse = 0.0;
  double mean = 0.0;
  for (double y : response) mean += y;
  mean /= static_cast<double>(m);
  double sst = 0.0;
  double sum_yy = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double e = response[i] - fitted[i];
    sse += e * e;
    sst += (response[i] - mean) * (response[i] - mean);
    sum_yy += response[i] * response[i];
  }
  return OlsModel(std::move(beta), sse, sst, m, sum_yy);
}

}  // namespace midas
