#ifndef MIDAS_REGRESSION_OLS_H_
#define MIDAS_REGRESSION_OLS_H_

#include <vector>

#include "linalg/matrix.h"

namespace midas {

/// \brief A fitted ordinary-least-squares Multiple Linear Regression model
/// (paper §2.5):  ĉ = β̂0 + β̂1 x1 + ... + β̂L xL.
///
/// Produced by FitOls below. Holds the coefficient vector (intercept first)
/// plus the goodness-of-fit statistics the paper's Algorithm 1 consumes.
class OlsModel {
 public:
  OlsModel() = default;
  /// \param sum_yy Σy² of the fitted response — the scale against which a
  /// residual counts as genuinely nonzero in the SST == 0 degenerate case
  /// (see r_squared()). 0 means "unknown", making any positive SSE count.
  OlsModel(Vector coefficients, double sse, double sst, size_t num_samples,
           double sum_yy = 0.0);

  /// β̂, intercept at index 0, then one slope per feature.
  const Vector& coefficients() const { return coefficients_; }

  /// Number of features L (coefficients().size() - 1).
  size_t num_features() const {
    return coefficients_.empty() ? 0 : coefficients_.size() - 1;
  }

  size_t num_samples() const { return num_samples_; }

  /// Sum of squared errors, Eq. 11.
  double sse() const { return sse_; }
  /// Total sum of squares around the response mean.
  double sst() const { return sst_; }

  /// Coefficient of determination R² = 1 - SSE/SST (Eq. 14). When SST == 0
  /// (constant response) returns 1 for a perfect fit and 0 when residual
  /// error remains — "perfect" judged relative to the response magnitude
  /// Σy², so rounding noise in an exactly-reproduced constant still earns 1.
  double r_squared() const;

  /// Adjusted R², penalising model size: 1-(1-R²)(n-1)/(n-L-1).
  double adjusted_r_squared() const;

  /// Predicts the cost for a feature vector of length num_features().
  StatusOr<double> Predict(const Vector& x) const;

  /// Batched Predict: one matrix-vector product over the whole design
  /// matrix, (*out)[r] = β̂0 + Σ_l β̂_{l+1} X(r, l) with the terms added in
  /// the same order as the scalar path, so batch == scalar bit-for-bit.
  Status PredictBatch(const Matrix& X, Vector* out) const;

 private:
  Vector coefficients_;
  double sse_ = 0.0;
  double sst_ = 0.0;
  size_t num_samples_ = 0;
  double sum_yy_ = 0.0;
};

struct OlsOptions {
  /// Ridge penalty added to the normal equations when the design matrix is
  /// rank-deficient (e.g., a window of identical feature vectors). 0 disables
  /// the fallback and rank deficiency becomes an error.
  double ridge_fallback = 1e-6;
};

/// Fits ĉ = β̂0 + Σ β̂l x_l by least squares (Eq. 12, B = (AᵀA)⁻¹AᵀC, solved
/// via Householder QR for numerical stability).
///
/// \param features one row per observation (each of length L)
/// \param response one cost value per observation
/// Requires features.size() == response.size() >= L + 2 — the statistical
/// minimum the paper uses (Soong 2004) — so that R² is meaningful.
StatusOr<OlsModel> FitOls(const std::vector<Vector>& features,
                          const Vector& response,
                          const OlsOptions& options = OlsOptions());

}  // namespace midas

#endif  // MIDAS_REGRESSION_OLS_H_
