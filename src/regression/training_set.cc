#include "regression/training_set.h"

#include <algorithm>

#include "common/logging.h"

namespace midas {

TrainingWindow TrainingWindow::Newest(size_t m) const {
  MIDAS_CHECK(m <= count_) << "sub-window larger than window";
  return TrainingWindow(data_ + (count_ - m), m);
}

TrainingSet::TrainingSet(std::vector<std::string> feature_names,
                         std::vector<std::string> metric_names)
    : feature_names_(std::move(feature_names)),
      metric_names_(std::move(metric_names)) {}

Status TrainingSet::Add(Observation obs) {
  if (obs.features.size() != num_features()) {
    return Status::InvalidArgument("observation feature arity mismatch");
  }
  if (obs.costs.size() != num_metrics()) {
    return Status::InvalidArgument("observation metric arity mismatch");
  }
  if (!observations_.empty() &&
      obs.timestamp < observations_.back().timestamp) {
    return Status::InvalidArgument(
        "observations must be appended in timestamp order");
  }
  observations_.push_back(std::move(obs));
  return Status::OK();
}

Status TrainingSet::Add(Vector features, Vector costs) {
  Observation obs;
  obs.timestamp = observations_.empty() ? 0 : latest_timestamp() + 1;
  obs.features = std::move(features);
  obs.costs = std::move(costs);
  return Add(std::move(obs));
}

int64_t TrainingSet::latest_timestamp() const {
  return observations_.empty() ? 0 : observations_.back().timestamp;
}

std::vector<Vector> TrainingWindow::CopyFeatures() const {
  std::vector<Vector> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(data_[i].features);
  return out;
}

Vector TrainingWindow::CopyCosts(size_t metric) const {
  Vector out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(data_[i].costs[metric]);
  return out;
}

StatusOr<TrainingWindow> TrainingSet::RecentWindow(size_t m) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  return TrainingWindow(observations_.data() + (size() - m), m);
}

StatusOr<std::vector<Vector>> TrainingSet::RecentFeatures(size_t m) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  std::vector<Vector> out;
  out.reserve(m);
  for (size_t i = size() - m; i < size(); ++i) {
    out.push_back(observations_[i].features);
  }
  return out;
}

StatusOr<Vector> TrainingSet::RecentCosts(size_t m,
                                          size_t metric_index) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  if (metric_index >= num_metrics()) {
    return Status::OutOfRange("metric index out of range");
  }
  Vector out;
  out.reserve(m);
  for (size_t i = size() - m; i < size(); ++i) {
    out.push_back(observations_[i].costs[metric_index]);
  }
  return out;
}

void TrainingSet::TrimToNewest(size_t keep) {
  if (keep >= size()) return;
  observations_.erase(observations_.begin(),
                      observations_.end() - static_cast<ptrdiff_t>(keep));
}

void TrainingSet::EvictOlderThan(int64_t cutoff) {
  auto first_kept = std::find_if(
      observations_.begin(), observations_.end(),
      [cutoff](const Observation& o) { return o.timestamp >= cutoff; });
  observations_.erase(observations_.begin(), first_kept);
}

}  // namespace midas
