#include "regression/training_set.h"

#include <algorithm>

namespace midas {

namespace {
/// First buffer size; small histories are common in tests and the drift
/// experiments trim aggressively.
constexpr size_t kInitialCapacity = 16;
}  // namespace

TrainingWindow TrainingWindow::Newest(size_t m) const {
  MIDAS_CHECK(m <= count_) << "sub-window larger than window";
  return TrainingWindow(data_ + (count_ - m), m, owner_, generation_);
}

TrainingSet::TrainingSet(std::vector<std::string> feature_names,
                         std::vector<std::string> metric_names)
    : feature_names_(std::move(feature_names)),
      metric_names_(std::move(metric_names)) {}

void TrainingSet::Reallocate(size_t min_capacity) {
  auto grown = std::make_shared<Buffer>(
      std::max({min_capacity, count_ * 2, kInitialCapacity}));
  for (size_t i = 0; i < count_; ++i) grown->slots[i] = buffer_->slots[i];
  grown->committed.store(count_, std::memory_order_relaxed);
  buffer_ = std::move(grown);
}

Status TrainingSet::Add(Observation obs) {
  if (obs.features.size() != num_features()) {
    return Status::InvalidArgument("observation feature arity mismatch");
  }
  if (obs.costs.size() != num_metrics()) {
    return Status::InvalidArgument("observation metric arity mismatch");
  }
  if (count_ > 0 && obs.timestamp < at(count_ - 1).timestamp) {
    return Status::InvalidArgument(
        "observations must be appended in timestamp order");
  }
  if (buffer_ == nullptr) {
    buffer_ = std::make_shared<Buffer>(kInitialCapacity);
  }
  // Claim slot count_ of the shared buffer via the committed high-water
  // mark. Losing the race means a sibling copy (an earlier fork of this
  // history) already extended the buffer past our length, so our append
  // must diverge into a fresh buffer; frozen copies are never affected
  // either way, because slots below their length are immutable.
  size_t expected = count_;
  if (count_ == buffer_->slots.size() ||
      !buffer_->committed.compare_exchange_strong(expected, count_ + 1,
                                                  std::memory_order_acq_rel)) {
    Reallocate(count_ + 1);
    buffer_->committed.store(count_ + 1, std::memory_order_relaxed);
  }
  buffer_->slots[count_] = std::move(obs);
  ++count_;
  ++generation_;
  return Status::OK();
}

Status TrainingSet::Add(Vector features, Vector costs) {
  Observation obs;
  obs.timestamp = count_ == 0 ? 0 : latest_timestamp() + 1;
  obs.features = std::move(features);
  obs.costs = std::move(costs);
  return Add(std::move(obs));
}

int64_t TrainingSet::latest_timestamp() const {
  return count_ == 0 ? 0 : at(count_ - 1).timestamp;
}

std::vector<Vector> TrainingWindow::CopyFeatures() const {
  CheckFresh();
  std::vector<Vector> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(data_[i].features);
  return out;
}

Vector TrainingWindow::CopyCosts(size_t metric) const {
  CheckFresh();
  Vector out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(data_[i].costs[metric]);
  return out;
}

StatusOr<TrainingWindow> TrainingSet::RecentWindow(size_t m) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  return TrainingWindow(buffer_ == nullptr
                            ? nullptr
                            : buffer_->slots.data() + (size() - m),
                        m, this, generation_);
}

StatusOr<std::vector<Vector>> TrainingSet::RecentFeatures(size_t m) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  std::vector<Vector> out;
  out.reserve(m);
  for (size_t i = size() - m; i < size(); ++i) {
    out.push_back(at(i).features);
  }
  return out;
}

StatusOr<Vector> TrainingSet::RecentCosts(size_t m,
                                          size_t metric_index) const {
  if (m > size()) {
    return Status::OutOfRange("window larger than history");
  }
  if (metric_index >= num_metrics()) {
    return Status::OutOfRange("metric index out of range");
  }
  Vector out;
  out.reserve(m);
  for (size_t i = size() - m; i < size(); ++i) {
    out.push_back(at(i).costs[metric_index]);
  }
  return out;
}

void TrainingSet::TrimToNewest(size_t keep) {
  if (keep >= size()) return;
  auto kept = std::make_shared<Buffer>(std::max(keep, kInitialCapacity));
  for (size_t i = 0; i < keep; ++i) {
    kept->slots[i] = buffer_->slots[count_ - keep + i];
  }
  kept->committed.store(keep, std::memory_order_relaxed);
  buffer_ = std::move(kept);
  count_ = keep;
  ++generation_;
}

void TrainingSet::EvictOlderThan(int64_t cutoff) {
  size_t first_kept = 0;
  while (first_kept < count_ && at(first_kept).timestamp < cutoff) {
    ++first_kept;
  }
  if (first_kept == 0) return;
  TrimToNewest(count_ - first_kept);
}

}  // namespace midas
