#ifndef MIDAS_REGRESSION_TRAINING_SET_H_
#define MIDAS_REGRESSION_TRAINING_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace midas {

/// \brief One historical measurement: the feature vector x (e.g., data
/// sizes, node counts — paper Example 2.1) and the observed value of every
/// cost metric (execution time, monetary cost, ...).
struct Observation {
  /// Logical time of the measurement; the store keeps observations ordered
  /// by ascending timestamp so "most recent window" is well defined.
  int64_t timestamp = 0;
  Vector features;
  Vector costs;
};

/// \brief Zero-copy view of the newest `size()` observations of a
/// TrainingSet, oldest of the window first (the same orientation as
/// RecentFeatures/RecentCosts, without materializing per-window copies).
///
/// Invalidated by any mutation of the underlying TrainingSet, exactly like
/// an iterator; windows are meant to be taken, consumed and dropped within
/// one estimation pass.
class TrainingWindow {
 public:
  TrainingWindow() = default;
  TrainingWindow(const Observation* data, size_t count)
      : data_(data), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// i = 0 is the oldest observation of the window, i = size() - 1 the
  /// newest.
  const Observation& at(size_t i) const { return data_[i]; }
  const Vector& features(size_t i) const { return data_[i].features; }
  double cost(size_t i, size_t metric) const {
    return data_[i].costs[metric];
  }

  /// The newest m observations of this window as a sub-view (m <= size(),
  /// checked).
  TrainingWindow Newest(size_t m) const;

  /// Materialized copies for consumers of the batch OLS interface (the
  /// rank-revealing fallback path); the hot path never calls these.
  std::vector<Vector> CopyFeatures() const;
  Vector CopyCosts(size_t metric) const;

 private:
  const Observation* data_ = nullptr;
  size_t count_ = 0;
};

/// \brief Ordered store of multi-metric cost observations (Figure 2's
/// "training set").
///
/// Observations are appended in timestamp order (enforced); windows are
/// always taken from the *newest* end, which is what lets DREAM avoid
/// expired information.
class TrainingSet {
 public:
  /// \param feature_names one per regression variable x_l (fixes L)
  /// \param metric_names one per cost metric c_n (fixes N)
  TrainingSet(std::vector<std::string> feature_names,
              std::vector<std::string> metric_names);

  size_t num_features() const { return feature_names_.size(); }
  size_t num_metrics() const { return metric_names_.size(); }
  size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Appends an observation. Fails when dimensions mismatch or the
  /// timestamp is older than the latest stored one.
  Status Add(Observation obs);

  /// Convenience overload that stamps the observation with
  /// latest_timestamp + 1.
  Status Add(Vector features, Vector costs);

  const Observation& at(size_t i) const { return observations_[i]; }
  const std::vector<Observation>& observations() const {
    return observations_;
  }

  int64_t latest_timestamp() const;

  /// Zero-copy view of the m most recent observations, oldest first.
  /// Invalidated by any subsequent mutation of this TrainingSet.
  StatusOr<TrainingWindow> RecentWindow(size_t m) const;

  /// The m most recent feature rows, oldest of the window first.
  StatusOr<std::vector<Vector>> RecentFeatures(size_t m) const;

  /// The m most recent values of the given metric, aligned with
  /// RecentFeatures(m).
  StatusOr<Vector> RecentCosts(size_t m, size_t metric_index) const;

  /// Drops everything but the newest `keep` observations (history pruning;
  /// the "new training set" output of Figure 2).
  void TrimToNewest(size_t keep);

  /// Keeps only observations with timestamp >= cutoff.
  void EvictOlderThan(int64_t cutoff);

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> metric_names_;
  std::vector<Observation> observations_;
};

}  // namespace midas

#endif  // MIDAS_REGRESSION_TRAINING_SET_H_
