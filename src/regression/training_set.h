#ifndef MIDAS_REGRESSION_TRAINING_SET_H_
#define MIDAS_REGRESSION_TRAINING_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "linalg/matrix.h"

/// Debug/sanitizer builds verify that a TrainingWindow is not read after
/// its owning TrainingSet mutated — the release-mode symptom would be a
/// silently stale (or, after a buffer growth, dangling) view. The checks
/// are compiled out of plain release builds so the window accessors stay
/// free on the estimation hot path.
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define MIDAS_TRAINING_WINDOW_CHECKS 1
#else
#define MIDAS_TRAINING_WINDOW_CHECKS 0
#endif

namespace midas {

class TrainingSet;

/// \brief One historical measurement: the feature vector x (e.g., data
/// sizes, node counts — paper Example 2.1) and the observed value of every
/// cost metric (execution time, monetary cost, ...).
struct Observation {
  /// Logical time of the measurement; the store keeps observations ordered
  /// by ascending timestamp so "most recent window" is well defined.
  int64_t timestamp = 0;
  Vector features;
  Vector costs;
};

/// \brief Zero-copy view of the newest `size()` observations of a
/// TrainingSet, oldest of the window first (the same orientation as
/// RecentFeatures/RecentCosts, without materializing per-window copies).
///
/// Invalidated by any mutation of the underlying TrainingSet, exactly like
/// an iterator; windows are meant to be taken, consumed and dropped within
/// one estimation pass. Windows taken from a *frozen* set — an
/// EstimatorSnapshot's per-scope copy, which never mutates — stay valid
/// for the snapshot's whole lifetime. Debug and sanitizer builds enforce
/// the contract: every accessor checks the owning set's generation counter
/// and aborts loudly on use-after-mutation instead of reading stale
/// memory.
class TrainingWindow {
 public:
  TrainingWindow() = default;
  TrainingWindow(const Observation* data, size_t count)
      : data_(data), count_(count) {}
  /// Window bound to its owning set: accessors debug-assert that the set's
  /// generation still equals `generation` (i.e., no mutation since the
  /// window was taken).
  TrainingWindow(const Observation* data, size_t count,
                 const TrainingSet* owner, uint64_t generation)
      : data_(data), count_(count), owner_(owner), generation_(generation) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// i = 0 is the oldest observation of the window, i = size() - 1 the
  /// newest.
  const Observation& at(size_t i) const {
    CheckFresh();
    return data_[i];
  }
  const Vector& features(size_t i) const {
    CheckFresh();
    return data_[i].features;
  }
  double cost(size_t i, size_t metric) const {
    CheckFresh();
    return data_[i].costs[metric];
  }

  /// The newest m observations of this window as a sub-view (m <= size(),
  /// checked); inherits this window's owner binding.
  TrainingWindow Newest(size_t m) const;

  /// Materialized copies for consumers of the batch OLS interface (the
  /// rank-revealing fallback path); the hot path never calls these.
  std::vector<Vector> CopyFeatures() const;
  Vector CopyCosts(size_t metric) const;

 private:
  /// Defined inline below TrainingSet (needs its generation()).
  void CheckFresh() const;

  const Observation* data_ = nullptr;
  size_t count_ = 0;
  const TrainingSet* owner_ = nullptr;
  uint64_t generation_ = 0;
};

/// \brief Ordered store of multi-metric cost observations (Figure 2's
/// "training set").
///
/// Observations are appended in timestamp order (enforced); windows are
/// always taken from the *newest* end, which is what lets DREAM avoid
/// expired information.
///
/// Storage is a structurally shared append-only buffer: copying a
/// TrainingSet is O(1) — the copy shares the observation slots and
/// remembers only its own length — which is what lets SnapshotPublisher
/// freeze a scope per epoch without duplicating the history. A single
/// writer appending to the newest copy keeps filling the shared buffer's
/// slack in place (slots past a frozen copy's length are invisible to it),
/// and reallocates into a fresh buffer only on capacity exhaustion or when
/// a sibling copy already claimed the next slot, so frozen readers never
/// observe a mutation. Within one TrainingSet object the usual rules
/// apply: it is not safe to mutate the same object from two threads.
class TrainingSet {
 public:
  /// \param feature_names one per regression variable x_l (fixes L)
  /// \param metric_names one per cost metric c_n (fixes N)
  TrainingSet(std::vector<std::string> feature_names,
              std::vector<std::string> metric_names);

  size_t num_features() const { return feature_names_.size(); }
  size_t num_metrics() const { return metric_names_.size(); }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Mutation counter: bumped by every Add/Trim/Evict. TrainingWindow
  /// captures it at creation, and debug/sanitizer builds fail loudly when
  /// a window outlives the generation it was taken from.
  uint64_t generation() const { return generation_; }

  /// Appends an observation. Fails when dimensions mismatch or the
  /// timestamp is older than the latest stored one.
  Status Add(Observation obs);

  /// Convenience overload that stamps the observation with
  /// latest_timestamp + 1.
  Status Add(Vector features, Vector costs);

  const Observation& at(size_t i) const { return buffer_->slots[i]; }

  int64_t latest_timestamp() const;

  /// Zero-copy view of the m most recent observations, oldest first.
  /// Invalidated by any subsequent mutation of this TrainingSet.
  StatusOr<TrainingWindow> RecentWindow(size_t m) const;

  /// The m most recent feature rows, oldest of the window first.
  StatusOr<std::vector<Vector>> RecentFeatures(size_t m) const;

  /// The m most recent values of the given metric, aligned with
  /// RecentFeatures(m).
  StatusOr<Vector> RecentCosts(size_t m, size_t metric_index) const;

  /// Drops everything but the newest `keep` observations (history pruning;
  /// the "new training set" output of Figure 2).
  void TrimToNewest(size_t keep);

  /// Keeps only observations with timestamp >= cutoff.
  void EvictOlderThan(int64_t cutoff);

 private:
  /// Shared slot storage. `slots` is sized to capacity up front and never
  /// resized, so element addresses are stable for every copy sharing the
  /// buffer; `committed` is the high-water mark of initialized slots and
  /// arbitrates which of several copies may extend the buffer in place
  /// (the others fork a fresh buffer instead).
  struct Buffer {
    explicit Buffer(size_t capacity) : slots(capacity) {}
    std::vector<Observation> slots;
    std::atomic<size_t> committed{0};
  };

  /// Forks a fresh buffer holding this set's first `count_` slots with at
  /// least `min_capacity` total slots.
  void Reallocate(size_t min_capacity);

  std::vector<std::string> feature_names_;
  std::vector<std::string> metric_names_;
  std::shared_ptr<Buffer> buffer_;  // null until the first Add
  size_t count_ = 0;                // this copy's logical length
  uint64_t generation_ = 0;
};

inline void TrainingWindow::CheckFresh() const {
#if MIDAS_TRAINING_WINDOW_CHECKS
  MIDAS_CHECK(owner_ == nullptr || owner_->generation() == generation_)
      << "TrainingWindow used after its TrainingSet mutated (stale view)";
#endif
}

}  // namespace midas

#endif  // MIDAS_REGRESSION_TRAINING_SET_H_
