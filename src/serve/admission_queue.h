#ifndef MIDAS_SERVE_ADMISSION_QUEUE_H_
#define MIDAS_SERVE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace midas {

/// \brief AdmissionQueue counters for observability; all monotone except
/// depth. At namespace scope (not nested in the template) so service-level
/// stats structs can embed it without naming the queue's item type.
struct AdmissionStats {
  uint64_t accepted = 0;
  uint64_t rejected_capacity = 0;
  uint64_t rejected_tenant_cap = 0;
  uint64_t dispatched = 0;
  size_t depth = 0;      ///< currently queued
  size_t max_depth = 0;  ///< high-water mark of depth
};

/// \brief Bounded multi-producer multi-consumer admission queue with one
/// FIFO lane per tenant and deficit-round-robin (DRR) scheduling across
/// lanes.
///
/// Three properties the serving layer builds on:
///
///  1. **Per-tenant FIFO**: items of one tenant are dispatched in push
///     order, always.
///  2. **Per-tenant serialization**: at most ONE item of a tenant is
///     dispatched-but-unreleased at any time. The consumer calls
///     Release(tenant) when it is done; only then does the tenant's next
///     item become dispatchable. This is what lets the QueryService prove
///     its outcomes bit-identical to a serial replay — a tenant's query
///     n+1 pins its estimator snapshot only after query n's feedback was
///     published.
///  3. **DRR fairness**: lanes are visited in a round-robin ring; each
///     visit tops the lane's deficit up by `drr_quantum × weight` credits
///     and every dispatch spends one credit, so over time tenants receive
///     service proportional to their weight regardless of how fast they
///     push.
///
/// Backpressure is rejection, not blocking: Push fails with
/// ResourceExhausted when the queue is at capacity or the tenant's
/// in-flight cap (queued + dispatched-unreleased) is reached, so callers
/// can shed load instead of stalling their submitters.
///
/// Thread-safe throughout; Pop blocks until an item is dispatchable or the
/// queue is closed and drained.
template <typename T>
class AdmissionQueue {
 public:
  struct Options {
    /// Max queued (admitted, not yet dispatched) items across all tenants.
    size_t capacity = 256;
    /// Max queued + dispatched-unreleased items per tenant (0 = unlimited).
    size_t tenant_inflight_cap = 0;
    /// Credits a lane earns per round-robin visit, multiplied by its
    /// weight. One dispatch costs one credit.
    uint64_t drr_quantum = 1;
  };

  /// One dispatched item plus the lane it came from; the consumer must
  /// Release(tenant) after finishing it.
  struct Dispatched {
    std::string tenant;
    T item;
  };

  using Stats = AdmissionStats;

  explicit AdmissionQueue(Options options) : options_(options) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Sets the DRR weight for `tenant` (default 1). Takes effect on the
  /// lane's next round-robin visit.
  void SetTenantWeight(const std::string& tenant, uint64_t weight) {
    std::lock_guard<std::mutex> lock(mutex_);
    LaneFor(tenant).weight = weight == 0 ? 1 : weight;
  }

  /// Admits `item` into `tenant`'s lane, or rejects it:
  ///  - FailedPrecondition once Close() was called,
  ///  - ResourceExhausted when the queue is full or the tenant's
  ///    in-flight cap is reached.
  Status Push(const std::string& tenant, T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Status::FailedPrecondition("admission queue is closed");
    }
    if (depth_ >= options_.capacity) {
      ++stats_.rejected_capacity;
      return Status::ResourceExhausted("admission queue at capacity");
    }
    Lane& lane = LaneFor(tenant);
    if (options_.tenant_inflight_cap != 0) {
      const size_t inflight = lane.items.size() + (lane.dispatched ? 1 : 0);
      if (inflight >= options_.tenant_inflight_cap) {
        ++stats_.rejected_tenant_cap;
        return Status::ResourceExhausted("tenant in-flight cap reached: " +
                                         tenant);
      }
    }
    lane.items.push_back(std::move(item));
    ++depth_;
    ++stats_.accepted;
    if (depth_ > stats_.max_depth) stats_.max_depth = depth_;
    dispatchable_.notify_one();
    return Status::OK();
  }

  /// Blocks until some lane has a dispatchable head, pops it under the DRR
  /// discipline and marks the lane dispatched. Returns FailedPrecondition
  /// once the queue is closed AND fully drained (the consumer's signal to
  /// exit its loop).
  StatusOr<Dispatched> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      const size_t lanes = ring_.size();
      for (size_t step = 0; step < lanes; ++step) {
        const size_t index = (cursor_ + step) % lanes;
        Lane& lane = *ring_[index];
        if (lane.dispatched || lane.items.empty()) continue;
        if (lane.deficit == 0) {
          // This visit tops the lane up; a backlogged lane with a larger
          // weight earns proportionally more dispatches per ring pass.
          lane.deficit = options_.drr_quantum * lane.weight;
        }
        --lane.deficit;
        Dispatched out{lane.name, std::move(lane.items.front())};
        lane.items.pop_front();
        lane.dispatched = true;
        --depth_;
        ++stats_.dispatched;
        // Draining the last item after Close must wake peers parked in
        // Pop so they can observe closed-and-drained and exit.
        if (closed_ && depth_ == 0) dispatchable_.notify_all();
        // Stay on this lane while it has credit left (classic DRR); move
        // past it once its credit or backlog is spent.
        if (lane.deficit == 0 || lane.items.empty()) {
          cursor_ = (index + 1) % lanes;
        } else {
          cursor_ = index;
        }
        return out;
      }
      if (closed_ && depth_ == 0) {
        return Status::FailedPrecondition("admission queue closed and drained");
      }
      dispatchable_.wait(lock);
    }
  }

  /// Marks `tenant`'s dispatched item finished, making its next queued
  /// item dispatchable.
  void Release(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = lanes_.find(tenant);
    if (it == lanes_.end()) return;
    it->second.dispatched = false;
    if (!it->second.items.empty()) dispatchable_.notify_one();
    if (closed_ && depth_ == 0) dispatchable_.notify_all();
  }

  /// Stops admissions; already-queued items still dispatch (graceful
  /// drain). Wakes blocked consumers so they can observe the close.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    dispatchable_.notify_all();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.depth = depth_;
    return out;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
  }

 private:
  struct Lane {
    std::string name;
    std::deque<T> items;
    uint64_t weight = 1;
    uint64_t deficit = 0;
    bool dispatched = false;
  };

  /// Must hold mutex_. Creates the lane on first use and appends it to the
  /// round-robin ring (pointers into lanes_ stay valid: unordered_map
  /// never moves its nodes).
  Lane& LaneFor(const std::string& tenant) {
    auto it = lanes_.find(tenant);
    if (it == lanes_.end()) {
      it = lanes_.emplace(tenant, Lane{}).first;
      it->second.name = tenant;
      ring_.push_back(&it->second);
    }
    return it->second;
  }

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable dispatchable_;
  std::unordered_map<std::string, Lane> lanes_;
  std::vector<Lane*> ring_;  ///< lanes in first-seen order
  size_t cursor_ = 0;        ///< ring index the next Pop scan starts at
  size_t depth_ = 0;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace midas

#endif  // MIDAS_SERVE_ADMISSION_QUEUE_H_
