#include "serve/query_service.h"

#include <utility>

namespace midas {
namespace {

uint64_t SecondsToNanos(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(seconds * 1e9);
}

}  // namespace

QueryService::QueryService(MidasSystem* system, ServeOptions options)
    : system_(system),
      options_(options),
      queue_([&] {
        AdmissionQueue<Job>::Options q;
        q.capacity = options.queue_capacity;
        q.tenant_inflight_cap = options.tenant_inflight_cap;
        q.drr_quantum = options.drr_quantum == 0 ? 1 : options.drr_quantum;
        return q;
      }()) {
  const size_t slots = options_.slots == 0 ? 1 : options_.slots;
  metrics_.reserve(slots);
  slots_.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    metrics_.push_back(std::make_unique<SlotMetrics>());
  }
  for (size_t s = 0; s < slots; ++s) {
    slots_.emplace_back([this, s] { SlotLoop(s); });
  }
}

QueryService::~QueryService() { Shutdown(); }

StatusOr<std::future<QueryService::Result>> QueryService::Submit(
    const std::string& tenant, QueryRequest request) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("query service is shut down");
    }
  }
  Job job;
  job.request = std::move(request);
  job.enqueue_seconds = MonotonicSeconds();
  std::future<Result> future = job.promise.get_future();
  MIDAS_RETURN_IF_ERROR(queue_.Push(tenant, std::move(job)));
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    ++accepted_;
  }
  return future;
}

void QueryService::SetTenantWeight(const std::string& tenant,
                                   uint64_t weight) {
  queue_.SetTenantWeight(tenant, weight);
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  all_done_.wait(lock, [this] { return completed_ == accepted_; });
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.Close();
  for (std::thread& slot : slots_) {
    if (slot.joinable()) slot.join();
  }
}

QueryService::Result QueryService::Process(Job& job, Served& served) {
  // Pin the estimator snapshot at dispatch. The queue's per-tenant
  // serialization means the tenant's previous request (if any) already
  // published its feedback, so this tenant's scope window is exactly what
  // a serial replay would see.
  std::shared_ptr<const EstimatorSnapshot> snapshot =
      system_->modelling().Snapshot();
  served.admission_epoch = snapshot->epoch();
  MIDAS_ASSIGN_OR_RETURN(served.outcome,
                         system_->OptimizeQuery(snapshot, job.request));
  {
    // The write half: one request executes + records at a time, in the
    // order execute_mutex_ admits them — the order execution_seq records
    // and a serial replay must follow.
    std::lock_guard<std::mutex> lock(execute_mutex_);
    served.execution_seq = ++execution_seq_;
    MIDAS_ASSIGN_OR_RETURN(
        Scheduler::BatchWriteResult write,
        system_->scheduler().ExecuteAndRecordBatch(
            job.request.scope, {served.outcome.moqp.chosen_plan()}));
    served.outcome.actual = write.measurements.front();
    served.feedback_epoch = write.published_epoch;
    served.publish_seconds = write.publish_seconds;
  }
  return std::move(served);
}

void QueryService::SlotLoop(size_t slot) {
  SlotMetrics& metrics = *metrics_[slot];
  while (true) {
    StatusOr<AdmissionQueue<Job>::Dispatched> dispatched = queue_.Pop();
    if (!dispatched.ok()) break;  // closed and drained
    Job job = std::move(dispatched->item);
    const double start = MonotonicSeconds();
    Served served;
    served.queue_seconds = start - job.enqueue_seconds;
    Result result = Process(job, served);
    const double service_seconds = MonotonicSeconds() - start;
    if (result.ok()) result->service_seconds = service_seconds;
    {
      std::lock_guard<std::mutex> lock(metrics.mutex);
      if (result.ok()) {
        ++metrics.served;
      } else {
        ++metrics.failed;
      }
      metrics.queue_latency.Record(SecondsToNanos(served.queue_seconds));
      metrics.service_latency.Record(SecondsToNanos(service_seconds));
    }
    // Fulfil before Release: a tenant's next request cannot even dispatch
    // until Release, so per-tenant future completion keeps FIFO order.
    job.promise.set_value(std::move(result));
    queue_.Release(dispatched->tenant);
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      ++completed_;
      all_done_.notify_all();
    }
  }
}

ServeStats QueryService::stats() const {
  ServeStats out;
  out.admission = queue_.stats();
  for (const std::unique_ptr<SlotMetrics>& slot : metrics_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    out.served += slot->served;
    out.failed += slot->failed;
    out.queue_latency.MergeFrom(slot->queue_latency);
    out.service_latency.MergeFrom(slot->service_latency);
  }
  return out;
}

}  // namespace midas
