#ifndef MIDAS_SERVE_QUERY_SERVICE_H_
#define MIDAS_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/statistics.h"
#include "common/status.h"
#include "midas/midas.h"
#include "serve/admission_queue.h"

namespace midas {

/// \brief Knobs of the in-process federation service.
struct ServeOptions {
  /// Executor slots: worker threads running the read-only optimization
  /// half (enumerate → cost → Pareto) concurrently. Executions and
  /// feedback publication remain globally serialized regardless.
  size_t slots = 2;
  /// Bound on admitted-but-undispatched requests across all tenants;
  /// Submit rejects with ResourceExhausted beyond it.
  size_t queue_capacity = 256;
  /// Per-tenant bound on queued + dispatched-unreleased requests
  /// (0 = unlimited); Submit rejects with ResourceExhausted beyond it.
  size_t tenant_inflight_cap = 8;
  /// DRR credits a tenant lane earns per round-robin visit (× its weight).
  uint64_t drr_quantum = 1;
};

/// \brief Everything the service produced for one admitted request.
struct Served {
  /// The optimization result plus the executed plan's measurement — the
  /// same QueryOutcome MidasSystem::RunQuery returns.
  QueryOutcome outcome;
  /// Epoch of the estimator snapshot pinned when the request was
  /// dispatched to a slot (== outcome.moqp.snapshot_epoch).
  uint64_t admission_epoch = 0;
  /// Epoch this request's own feedback was published under.
  uint64_t feedback_epoch = 0;
  /// Global execution order (1-based): the position of this request's
  /// execute+record in the service's serialized feedback path. Replaying
  /// requests in this order through a fresh MidasSystem::RunQuery
  /// reproduces every outcome bit-for-bit (see class comment).
  uint64_t execution_seq = 0;
  /// Admission-to-dispatch wait.
  double queue_seconds = 0.0;
  /// Dispatch-to-completion time (optimize + execute + publish).
  double service_seconds = 0.0;
  /// Portion of service_seconds spent publishing the feedback snapshot.
  double publish_seconds = 0.0;
};

/// \brief Service-level counters and latency distributions.
struct ServeStats {
  AdmissionStats admission;
  uint64_t served = 0;  ///< completed successfully
  uint64_t failed = 0;  ///< dispatched but failed (optimize or execute)
  /// Admission-to-dispatch waits, in nanoseconds.
  LatencyRecorder queue_latency;
  /// Dispatch-to-completion times, in nanoseconds.
  LatencyRecorder service_latency;
};

/// \brief Long-lived in-process federation service: concurrent query
/// admission over snapshot-pinned estimator state.
///
/// Submitters enqueue QueryRequests into a bounded per-tenant-FIFO
/// admission queue (backpressure by rejection); a pool of executor slots
/// pops them under deficit-round-robin fairness, pins the current
/// estimator snapshot, and runs the read-only optimization half
/// (MidasSystem::OptimizeQuery) concurrently. The write half — simulator
/// execution and feedback publication via
/// Scheduler::ExecuteAndRecordBatch — is globally serialized under one
/// mutex, stamping each request with its global execution_seq.
///
/// **Replay equivalence.** Results are bit-identical to a serial
/// MidasSystem::RunQuery replay of the recorded execution order when each
/// tenant submits under its own history scope (tenant == request.scope):
///  - the queue dispatches at most one request per tenant at a time, and a
///    tenant's next request is dispatched (and its snapshot pinned) only
///    after the previous request's feedback was published — so at pin
///    time a tenant's scope window always contains exactly its own prior
///    feedback, as it would serially;
///  - predictions depend only on the request's own scope window, so
///    other tenants' feedback being present or absent in the pinned
///    snapshot cannot change the Pareto front;
///  - executions are serialized in execution_seq order against the shared
///    simulator, so measurements match a serial replay of that order.
///
/// Thread-safe: Submit may be called from any number of threads.
class QueryService {
 public:
  using Result = StatusOr<Served>;

  /// `system` must outlive the service. The service owns no estimator
  /// state of its own — it is a client of the system's SnapshotPublisher
  /// (reads) and Scheduler (writes).
  explicit QueryService(MidasSystem* system,
                        ServeOptions options = ServeOptions());

  /// Drains gracefully: closes admissions, finishes every accepted
  /// request, joins the slots.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` into `tenant`'s lane and returns a future for its
  /// result, or rejects immediately with ResourceExhausted (queue full /
  /// tenant cap) or FailedPrecondition (service shut down). For the
  /// bit-identical replay guarantee, use tenant == request.scope.
  StatusOr<std::future<Result>> Submit(const std::string& tenant,
                                       QueryRequest request);

  /// Sets `tenant`'s DRR weight (default 1): its lane earns
  /// drr_quantum × weight dispatches per round-robin pass when backlogged.
  void SetTenantWeight(const std::string& tenant, uint64_t weight);

  /// Blocks until every accepted request has completed. Admissions stay
  /// open; a steady submitter can keep Drain waiting indefinitely.
  void Drain();

  /// Closes admissions, completes queued requests, joins the slots.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Job {
    QueryRequest request;
    std::promise<Result> promise;
    double enqueue_seconds = 0.0;
  };

  /// Per-slot metrics; each slot writes only its own under its own mutex
  /// (LatencyRecorder is not thread-safe), stats() merges them.
  struct SlotMetrics {
    std::mutex mutex;
    uint64_t served = 0;
    uint64_t failed = 0;
    LatencyRecorder queue_latency;
    LatencyRecorder service_latency;
  };

  void SlotLoop(size_t slot);
  Result Process(Job& job, Served& served);

  MidasSystem* system_;
  const ServeOptions options_;
  AdmissionQueue<Job> queue_;
  std::vector<std::unique_ptr<SlotMetrics>> metrics_;
  std::vector<std::thread> slots_;

  /// Serializes simulator execution + feedback publication (the simulator
  /// advances a logical clock and shared variance streams; interleaving
  /// executions would make measurements order-dependent in a
  /// non-replayable way).
  std::mutex execute_mutex_;
  uint64_t execution_seq_ = 0;  ///< guarded by execute_mutex_

  mutable std::mutex lifecycle_mutex_;
  std::condition_variable all_done_;
  uint64_t accepted_ = 0;   ///< guarded by lifecycle_mutex_
  uint64_t completed_ = 0;  ///< guarded by lifecycle_mutex_
  bool shutdown_ = false;   ///< guarded by lifecycle_mutex_
};

}  // namespace midas

#endif  // MIDAS_SERVE_QUERY_SERVICE_H_
