#include "tpch/dbgen.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "tpch/tpch_schema.h"

namespace midas {
namespace tpch {

namespace {

// Small word pool in the spirit of dbgen's grammar-generated text.
constexpr const char* kWords[] = {
    "furiously", "quickly", "carefully", "blithely", "deposits", "requests",
    "accounts",  "theodolites", "packages", "pending", "express", "special",
    "regular",   "ironic", "final", "bold", "silent", "even", "unusual",
    "instructions"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kShipModes[] = {"AIR",  "FOB",   "MAIL", "RAIL",
                                      "REG AIR", "SHIP", "TRUCK"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "HOUSEHOLD", "MACHINERY"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kContainers[] = {"SM CASE", "SM BOX", "MED BOX",
                                       "MED BAG", "LG CASE", "LG BOX",
                                       "JUMBO PKG", "WRAP CASE"};

// dbgen date range: 1992-01-01 plus 0..2556 days. Writes the ISO-8601 form
// into `buf` (at least 40 bytes) and returns its length — the columnar path
// appends straight into the string arena with no temporary allocation.
size_t FormatDateInto(int64_t day_offset, char* buf, size_t buf_size) {
  // Simple proleptic conversion good enough for the 1992-1998 window.
  static constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  int year = 1992;
  int64_t remaining = day_offset;
  auto leap = [](int y) {
    return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  };
  while (remaining >= (leap(year) ? 366 : 365)) {
    remaining -= leap(year) ? 366 : 365;
    ++year;
  }
  int month = 0;
  while (true) {
    int dim = kDaysInMonth[month] + (month == 1 && leap(year) ? 1 : 0);
    if (remaining < dim) break;
    remaining -= dim;
    ++month;
  }
  const int written = std::snprintf(buf, buf_size, "%04d-%02d-%02d", year,
                                    month + 1, static_cast<int>(remaining) + 1);
  return written > 0 ? static_cast<size_t>(written) : 0;
}

std::string FormatDate(int64_t day_offset) {
  // Sized for the full int range so -Wformat-truncation holds under every
  // sanitizer's value-range analysis, not just -O2's.
  char buf[40];
  const size_t n = FormatDateInto(day_offset, buf, sizeof(buf));
  return std::string(buf, n);
}

bool IsPrimaryKey(const std::string& table, const std::string& column) {
  return (table == "region" && column == "r_regionkey") ||
         (table == "nation" && column == "n_nationkey") ||
         (table == "supplier" && column == "s_suppkey") ||
         (table == "customer" && column == "c_custkey") ||
         (table == "part" && column == "p_partkey") ||
         (table == "orders" && column == "o_orderkey");
}

// Longest entry in kWords, for one-shot reservations.
constexpr size_t kMaxWordLen = 12;  // "instructions"

/// Builds padded filler text into `out`, reusing its capacity. The old
/// per-cell `std::string` return re-grew a fresh buffer word by word for
/// every cell — at lineitem scale that was millions of small reallocations;
/// one reserve covers the worst-case overshoot before the final trim.
void MakeTextInto(Rng* rng, double width, std::string* out) {
  out->clear();
  const size_t target = static_cast<size_t>(width);
  out->reserve(target + kMaxWordLen + 1);
  while (out->size() < target) {
    if (!out->empty()) *out += ' ';
    *out += kWords[rng->Index(kNumWords)];
  }
  if (out->size() > target && target > 0) out->resize(target);
}

std::string MakeText(Rng* rng, double width) {
  std::string out;
  MakeTextInto(rng, width, &out);
  return out;
}

template <size_t N>
const char* Pick(Rng* rng, const char* const (&values)[N]) {
  return values[rng->Index(N)];
}

}  // namespace

DbGen::DbGen(double scale_factor, uint64_t seed)
    : scale_factor_(scale_factor), seed_(seed) {
  auto catalog = MakeCatalog(scale_factor > 0.0 ? scale_factor : 1.0);
  if (catalog.ok()) catalog_ = std::move(catalog).ValueOrDie();
}

DbGen::DbGen(Catalog catalog, uint64_t seed)
    : scale_factor_(1.0), seed_(seed), catalog_(std::move(catalog)) {}

StatusOr<const TableDef*> DbGen::FindTable(const std::string& table) const {
  if (scale_factor_ <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  return catalog_.Find(table);
}

StatusOr<uint64_t> DbGen::RowCount(const std::string& table) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  return def->row_count;
}

StatusOr<Row> DbGen::GenerateRow(const std::string& table,
                                 uint64_t index) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  if (index >= def->row_count) {
    return Status::OutOfRange("row index beyond table cardinality");
  }
  // Per-row deterministic stream: row i never depends on rows < i.
  Rng rng(seed_ ^ (std::hash<std::string>{}(table) + index * 0x9E3779B97F4A7C15ull));
  Row row;
  row.reserve(def->columns.size());
  for (const ColumnDef& col : def->columns) {
    if (IsPrimaryKey(table, col.name)) {
      row.emplace_back(static_cast<int64_t>(index + 1));
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt: {
        // Foreign keys & categorical ints: uniform over the NDV domain.
        const int64_t ndv = static_cast<int64_t>(
            std::max<uint64_t>(1, col.distinct_values));
        row.emplace_back(rng.UniformInt(1, ndv));
        break;
      }
      case ColumnType::kDouble: {
        row.emplace_back(std::round(rng.Uniform(1.0, 100000.0) * 100.0) /
                         100.0);
        break;
      }
      case ColumnType::kDate: {
        row.emplace_back(FormatDate(rng.UniformInt(0, 2556)));
        break;
      }
      case ColumnType::kString: {
        if (col.name == "l_shipmode") {
          row.emplace_back(Pick(&rng, kShipModes));
        } else if (col.name == "c_mktsegment") {
          row.emplace_back(Pick(&rng, kSegments));
        } else if (col.name == "o_orderpriority") {
          row.emplace_back(Pick(&rng, kPriorities));
        } else if (col.name == "p_container") {
          row.emplace_back(Pick(&rng, kContainers));
        } else if (col.name == "p_brand") {
          row.emplace_back("Brand#" +
                           std::to_string(rng.UniformInt(11, 55)));
        } else {
          row.emplace_back(MakeText(&rng, col.avg_width_bytes));
        }
        break;
      }
    }
  }
  return row;
}

StatusOr<exec::ColumnTable> DbGen::GenerateColumns(const std::string& table,
                                                   uint64_t begin,
                                                   uint64_t end) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  if (end == 0) end = def->row_count;
  if (begin > end || end > def->row_count) {
    return Status::OutOfRange("row range beyond table cardinality");
  }
  const uint64_t rows = end - begin;

  exec::ColumnTable out;
  out.rows = rows;
  out.columns.reserve(def->columns.size());
  for (const ColumnDef& col : def->columns) {
    out.schema.Append(exec::Field{
        col.name, col.type, std::max<uint64_t>(1, col.distinct_values)});
    exec::Column column(col.type);
    if (col.type == ColumnType::kString || col.type == ColumnType::kDate) {
      column.Reserve(static_cast<size_t>(rows),
                     static_cast<size_t>(static_cast<double>(rows) *
                                         (col.avg_width_bytes + 1.0)));
    } else {
      column.Reserve(static_cast<size_t>(rows));
    }
    out.columns.push_back(std::move(column));
  }

  // Same per-row deterministic streams as GenerateRow (cell-for-cell
  // identical draws), but every value lands directly in its column buffer.
  const size_t table_hash = std::hash<std::string>{}(table);
  std::string text;  // reused pad buffer — no per-cell allocation
  char buf[40];
  for (uint64_t index = begin; index < end; ++index) {
    Rng rng(seed_ ^ (table_hash + index * 0x9E3779B97F4A7C15ull));
    for (size_t c = 0; c < def->columns.size(); ++c) {
      const ColumnDef& col = def->columns[c];
      exec::Column& dst = out.columns[c];
      if (IsPrimaryKey(table, col.name)) {
        dst.AppendInt(static_cast<int64_t>(index + 1));
        continue;
      }
      switch (col.type) {
        case ColumnType::kInt: {
          const int64_t ndv = static_cast<int64_t>(
              std::max<uint64_t>(1, col.distinct_values));
          dst.AppendInt(rng.UniformInt(1, ndv));
          break;
        }
        case ColumnType::kDouble: {
          dst.AppendDouble(std::round(rng.Uniform(1.0, 100000.0) * 100.0) /
                           100.0);
          break;
        }
        case ColumnType::kDate: {
          const size_t n =
              FormatDateInto(rng.UniformInt(0, 2556), buf, sizeof(buf));
          dst.AppendString(std::string_view(buf, n));
          break;
        }
        case ColumnType::kString: {
          if (col.name == "l_shipmode") {
            dst.AppendString(Pick(&rng, kShipModes));
          } else if (col.name == "c_mktsegment") {
            dst.AppendString(Pick(&rng, kSegments));
          } else if (col.name == "o_orderpriority") {
            dst.AppendString(Pick(&rng, kPriorities));
          } else if (col.name == "p_container") {
            dst.AppendString(Pick(&rng, kContainers));
          } else if (col.name == "p_brand") {
            const int written =
                std::snprintf(buf, sizeof(buf), "Brand#%lld",
                              static_cast<long long>(rng.UniformInt(11, 55)));
            dst.AppendString(
                std::string_view(buf, static_cast<size_t>(written)));
          } else {
            MakeTextInto(&rng, col.avg_width_bytes, &text);
            dst.AppendString(text);
          }
          break;
        }
      }
    }
  }
  return out;
}

Status DbGen::Generate(
    const std::string& table,
    const std::function<bool(uint64_t, const Row&)>& sink) const {
  MIDAS_ASSIGN_OR_RETURN(uint64_t rows, RowCount(table));
  for (uint64_t i = 0; i < rows; ++i) {
    MIDAS_ASSIGN_OR_RETURN(Row row, GenerateRow(table, i));
    if (!sink(i, row)) break;
  }
  return Status::OK();
}

StatusOr<std::vector<Row>> DbGen::GenerateAll(const std::string& table,
                                              uint64_t limit) const {
  std::vector<Row> out;
  MIDAS_RETURN_IF_ERROR(
      Generate(table, [&](uint64_t, const Row& row) {
        out.push_back(row);
        return limit == 0 || out.size() < limit;
      }));
  return out;
}

std::string DbGen::FormatRow(const Row& row) {
  std::ostringstream os;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << '|';
    if (const auto* v = std::get_if<int64_t>(&row[i])) {
      os << *v;
    } else if (const auto* d = std::get_if<double>(&row[i])) {
      os << *d;
    } else {
      os << std::get<std::string>(row[i]);
    }
  }
  return os.str();
}

Status DbGen::WriteTbl(const std::string& table,
                       const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  MIDAS_RETURN_IF_ERROR(Generate(table, [&](uint64_t, const Row& row) {
    out << FormatRow(row) << "|\n";
    return static_cast<bool>(out);
  }));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace tpch
}  // namespace midas
