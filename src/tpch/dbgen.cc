#include "tpch/dbgen.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "tpch/tpch_schema.h"

namespace midas {
namespace tpch {

namespace {

// Small word pool in the spirit of dbgen's grammar-generated text.
constexpr const char* kWords[] = {
    "furiously", "quickly", "carefully", "blithely", "deposits", "requests",
    "accounts",  "theodolites", "packages", "pending", "express", "special",
    "regular",   "ironic", "final", "bold", "silent", "even", "unusual",
    "instructions"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kShipModes[] = {"AIR",  "FOB",   "MAIL", "RAIL",
                                      "REG AIR", "SHIP", "TRUCK"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "HOUSEHOLD", "MACHINERY"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kContainers[] = {"SM CASE", "SM BOX", "MED BOX",
                                       "MED BAG", "LG CASE", "LG BOX",
                                       "JUMBO PKG", "WRAP CASE"};

// dbgen date range: 1992-01-01 plus 0..2556 days.
std::string FormatDate(int64_t day_offset) {
  // Simple proleptic conversion good enough for the 1992-1998 window.
  static constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  int year = 1992;
  int64_t remaining = day_offset;
  auto leap = [](int y) {
    return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  };
  while (remaining >= (leap(year) ? 366 : 365)) {
    remaining -= leap(year) ? 366 : 365;
    ++year;
  }
  int month = 0;
  while (true) {
    int dim = kDaysInMonth[month] + (month == 1 && leap(year) ? 1 : 0);
    if (remaining < dim) break;
    remaining -= dim;
    ++month;
  }
  // Sized for the full int range so -Wformat-truncation holds under every
  // sanitizer's value-range analysis, not just -O2's.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month + 1,
                static_cast<int>(remaining) + 1);
  return buf;
}

bool IsPrimaryKey(const std::string& table, const std::string& column) {
  return (table == "region" && column == "r_regionkey") ||
         (table == "nation" && column == "n_nationkey") ||
         (table == "supplier" && column == "s_suppkey") ||
         (table == "customer" && column == "c_custkey") ||
         (table == "part" && column == "p_partkey") ||
         (table == "orders" && column == "o_orderkey");
}

std::string MakeText(Rng* rng, double width) {
  std::string out;
  const size_t target = static_cast<size_t>(width);
  while (out.size() < target) {
    if (!out.empty()) out += ' ';
    out += kWords[rng->Index(kNumWords)];
  }
  if (out.size() > target && target > 0) out.resize(target);
  return out;
}

template <size_t N>
std::string Pick(Rng* rng, const char* const (&values)[N]) {
  return values[rng->Index(N)];
}

}  // namespace

DbGen::DbGen(double scale_factor, uint64_t seed)
    : scale_factor_(scale_factor), seed_(seed) {
  auto catalog = MakeCatalog(scale_factor > 0.0 ? scale_factor : 1.0);
  if (catalog.ok()) catalog_ = std::move(catalog).ValueOrDie();
}

StatusOr<const TableDef*> DbGen::FindTable(const std::string& table) const {
  if (scale_factor_ <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  return catalog_.Find(table);
}

StatusOr<uint64_t> DbGen::RowCount(const std::string& table) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  return def->row_count;
}

StatusOr<Row> DbGen::GenerateRow(const std::string& table,
                                 uint64_t index) const {
  MIDAS_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  if (index >= def->row_count) {
    return Status::OutOfRange("row index beyond table cardinality");
  }
  // Per-row deterministic stream: row i never depends on rows < i.
  Rng rng(seed_ ^ (std::hash<std::string>{}(table) + index * 0x9E3779B97F4A7C15ull));
  Row row;
  row.reserve(def->columns.size());
  for (const ColumnDef& col : def->columns) {
    if (IsPrimaryKey(table, col.name)) {
      row.emplace_back(static_cast<int64_t>(index + 1));
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt: {
        // Foreign keys & categorical ints: uniform over the NDV domain.
        const int64_t ndv = static_cast<int64_t>(
            std::max<uint64_t>(1, col.distinct_values));
        row.emplace_back(rng.UniformInt(1, ndv));
        break;
      }
      case ColumnType::kDouble: {
        row.emplace_back(std::round(rng.Uniform(1.0, 100000.0) * 100.0) /
                         100.0);
        break;
      }
      case ColumnType::kDate: {
        row.emplace_back(FormatDate(rng.UniformInt(0, 2556)));
        break;
      }
      case ColumnType::kString: {
        if (col.name == "l_shipmode") {
          row.emplace_back(Pick(&rng, kShipModes));
        } else if (col.name == "c_mktsegment") {
          row.emplace_back(Pick(&rng, kSegments));
        } else if (col.name == "o_orderpriority") {
          row.emplace_back(Pick(&rng, kPriorities));
        } else if (col.name == "p_container") {
          row.emplace_back(Pick(&rng, kContainers));
        } else if (col.name == "p_brand") {
          row.emplace_back("Brand#" +
                           std::to_string(rng.UniformInt(11, 55)));
        } else {
          row.emplace_back(MakeText(&rng, col.avg_width_bytes));
        }
        break;
      }
    }
  }
  return row;
}

Status DbGen::Generate(
    const std::string& table,
    const std::function<bool(uint64_t, const Row&)>& sink) const {
  MIDAS_ASSIGN_OR_RETURN(uint64_t rows, RowCount(table));
  for (uint64_t i = 0; i < rows; ++i) {
    MIDAS_ASSIGN_OR_RETURN(Row row, GenerateRow(table, i));
    if (!sink(i, row)) break;
  }
  return Status::OK();
}

StatusOr<std::vector<Row>> DbGen::GenerateAll(const std::string& table,
                                              uint64_t limit) const {
  std::vector<Row> out;
  MIDAS_RETURN_IF_ERROR(
      Generate(table, [&](uint64_t, const Row& row) {
        out.push_back(row);
        return limit == 0 || out.size() < limit;
      }));
  return out;
}

std::string DbGen::FormatRow(const Row& row) {
  std::ostringstream os;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << '|';
    if (const auto* v = std::get_if<int64_t>(&row[i])) {
      os << *v;
    } else if (const auto* d = std::get_if<double>(&row[i])) {
      os << *d;
    } else {
      os << std::get<std::string>(row[i]);
    }
  }
  return os.str();
}

Status DbGen::WriteTbl(const std::string& table,
                       const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  MIDAS_RETURN_IF_ERROR(Generate(table, [&](uint64_t, const Row& row) {
    out << FormatRow(row) << "|\n";
    return static_cast<bool>(out);
  }));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace tpch
}  // namespace midas
