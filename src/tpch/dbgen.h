#ifndef MIDAS_TPCH_DBGEN_H_
#define MIDAS_TPCH_DBGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/random.h"
#include "exec/column.h"
#include "query/schema.h"

namespace midas {
namespace tpch {

/// A generated cell value.
using Value = std::variant<int64_t, double, std::string>;
/// A generated row, one Value per column of the table definition.
using Row = std::vector<Value>;

/// \brief Deterministic TPC-H-like data generator.
///
/// Synthesises rows matching the catalog's schema: sequential primary keys,
/// foreign keys uniform over the referenced domain, dates uniform over the
/// dbgen date range, strings drawn from a fixed word pool padded to the
/// declared width, and numeric columns uniform over plausible ranges. The
/// same (table, scale factor, seed) always produces identical rows, and
/// row i can be generated independently of rows < i.
class DbGen {
 public:
  explicit DbGen(double scale_factor, uint64_t seed = 2019);

  /// Generates over an arbitrary catalog (medical schemas, test tables)
  /// instead of the TPC-H one: row counts and value domains are taken from
  /// `catalog` as-is, with the same deterministic per-row streams.
  /// scale_factor() reports 1.0 for such a generator.
  DbGen(Catalog catalog, uint64_t seed);

  double scale_factor() const { return scale_factor_; }
  uint64_t seed() const { return seed_; }
  const Catalog& catalog() const { return catalog_; }

  /// Number of rows this generator will produce for `table`.
  StatusOr<uint64_t> RowCount(const std::string& table) const;

  /// Generates row `index` (0-based) of `table`.
  StatusOr<Row> GenerateRow(const std::string& table, uint64_t index) const;

  /// Generates rows [begin, end) of `table` directly into typed columns
  /// (end = 0 means the full table). Cell-for-cell identical to
  /// GenerateRow — same per-row streams — but writes values straight into
  /// contiguous column buffers and string arenas, with no per-cell variant
  /// or string allocation. This is the materialization path behind the
  /// vectorized execution engine's table cache.
  StatusOr<exec::ColumnTable> GenerateColumns(const std::string& table,
                                              uint64_t begin = 0,
                                              uint64_t end = 0) const;

  /// Streams all rows of `table` through `sink`, stopping early if `sink`
  /// returns false. Memory use is O(1) rows.
  Status Generate(const std::string& table,
                  const std::function<bool(uint64_t, const Row&)>& sink) const;

  /// Materialises up to `limit` rows (0 = all). Intended for tests and
  /// small scale factors.
  StatusOr<std::vector<Row>> GenerateAll(const std::string& table,
                                         uint64_t limit = 0) const;

  /// Writes `table` in dbgen's pipe-separated .tbl format.
  Status WriteTbl(const std::string& table, const std::string& path) const;

  /// Renders one row pipe-separated (dbgen .tbl line, no trailing newline).
  static std::string FormatRow(const Row& row);

 private:
  StatusOr<const TableDef*> FindTable(const std::string& table) const;

  double scale_factor_;
  uint64_t seed_;
  Catalog catalog_;
};

}  // namespace tpch
}  // namespace midas

#endif  // MIDAS_TPCH_DBGEN_H_
