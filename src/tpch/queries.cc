#include "tpch/queries.h"

#include <algorithm>

namespace midas {
namespace tpch {

std::vector<int> PaperQueryIds() { return {12, 13, 14, 17}; }

QueryParameters QueryParameters::Reference(int query_id) {
  QueryParameters p;
  switch (query_id) {
    case 12:
      // l_shipmode IN (2 of 7) AND commit < receipt AND ship < commit AND
      // receipt within one year of seven: (2/7)·(1/2)·(1/2)·(1/7).
      p.primary_selectivity = (2.0 / 7.0) * 0.5 * 0.5 * (1.0 / 7.0);
      break;
    case 13:
      // o_comment NOT LIKE '%special%requests%': nearly all orders qualify.
      p.primary_selectivity = 0.9852;
      break;
    case 14:
      // l_shipdate within one month of the 84-month history.
      p.primary_selectivity = 1.0 / 84.0;
      break;
    case 17:
      // p_brand = 'Brand#23' AND p_container = 'MED BOX': (1/25)·(1/40).
      p.primary_selectivity = (1.0 / 25.0) * (1.0 / 40.0);
      // l_quantity below 20% of the average for the part.
      p.secondary_selectivity = 0.2;
      break;
    default:
      break;
  }
  return p;
}

StatusOr<QueryParameters> QueryParameters::Jitter(int query_id, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  const std::vector<int> ids = PaperQueryIds();
  const bool known = std::find(ids.begin(), ids.end(), query_id) != ids.end();
  if (!known) {
    return Status::NotFound("not a paper query: " + std::to_string(query_id));
  }
  QueryParameters p = Reference(query_id);
  // qgen draws different months/brands/modes per stream; the effect on the
  // plan is a shifted predicate selectivity. ±50% around the reference.
  p.primary_selectivity *= rng->Uniform(0.5, 1.5);
  p.secondary_selectivity *= rng->Uniform(0.5, 1.5);
  p.primary_selectivity = std::clamp(p.primary_selectivity, 1e-6, 1.0);
  p.secondary_selectivity = std::clamp(p.secondary_selectivity, 1e-6, 1.0);
  // Date-range width drawn per instance: the scan prunes to between a
  // quarter and the whole of the fact table's partitions.
  p.fact_fraction = rng->Uniform(0.25, 1.0);
  return p;
}

namespace {

Predicate WithSelectivity(const std::string& column, CompareOp op,
                          double selectivity) {
  Predicate p;
  p.column = column;
  p.op = op;
  p.selectivity_override = selectivity;
  return p;
}

std::unique_ptr<PlanNode> MakePrunedScan(const std::string& table,
                                         double fraction) {
  auto scan = MakeScan(table);
  scan->scan_fraction = fraction;
  return scan;
}

}  // namespace

StatusOr<QueryPlan> MakeQuery(int query_id, const QueryParameters& params) {
  switch (query_id) {
    case 12: {
      // The receipt-date year predicate prunes lineitem partitions; the
      // ship-mode/commit-date conditions remain as a row filter.
      auto lineitem = MakeFilter(
          MakePrunedScan("lineitem", params.fact_fraction),
          {WithSelectivity("l_shipmode", CompareOp::kEq,
                           params.primary_selectivity)});
      auto join = MakeJoin(MakeScan("orders"), std::move(lineitem),
                           "o_orderkey", "l_orderkey");
      return QueryPlan(MakeAggregate(std::move(join), /*num_groups=*/2));
    }
    case 13: {
      auto orders = MakeFilter(
          MakePrunedScan("orders", params.fact_fraction),
          {WithSelectivity("o_comment", CompareOp::kLike,
                           params.primary_selectivity)});
      auto join = MakeJoin(MakeScan("customer"), std::move(orders),
                           "c_custkey", "o_custkey");
      // GROUP BY c_custkey, then by count: dominated by the per-customer
      // aggregation.
      return QueryPlan(
          MakeAggregate(std::move(join), /*num_groups=*/150000));
    }
    case 14: {
      // The one-month l_shipdate window is partition-prunable.
      auto lineitem = MakeFilter(
          MakePrunedScan("lineitem", params.fact_fraction),
          {WithSelectivity("l_shipdate", CompareOp::kBetween,
                           params.primary_selectivity)});
      auto join = MakeJoin(MakeScan("part"), std::move(lineitem), "p_partkey",
                           "l_partkey");
      return QueryPlan(MakeAggregate(std::move(join), /*num_groups=*/1));
    }
    case 17: {
      auto part = MakeFilter(
          MakeScan("part"),
          {WithSelectivity("p_brand", CompareOp::kEq,
                           params.primary_selectivity)});
      auto lineitem = MakeFilter(
          MakePrunedScan("lineitem", params.fact_fraction),
          {WithSelectivity("l_quantity", CompareOp::kLt,
                           params.secondary_selectivity)});
      auto join = MakeJoin(std::move(part), std::move(lineitem), "p_partkey",
                           "l_partkey");
      return QueryPlan(MakeAggregate(std::move(join), /*num_groups=*/1));
    }
    default:
      return Status::NotFound("not a paper query: " +
                              std::to_string(query_id));
  }
}

StatusOr<QueryPlan> MakeQuery(int query_id) {
  return MakeQuery(query_id, QueryParameters::Reference(query_id));
}

StatusOr<std::pair<std::string, std::string>> QueryTables(int query_id) {
  switch (query_id) {
    case 12:
      return std::make_pair(std::string("orders"), std::string("lineitem"));
    case 13:
      return std::make_pair(std::string("customer"), std::string("orders"));
    case 14:
      return std::make_pair(std::string("part"), std::string("lineitem"));
    case 17:
      return std::make_pair(std::string("part"), std::string("lineitem"));
    default:
      return Status::NotFound("not a paper query: " +
                              std::to_string(query_id));
  }
}

}  // namespace tpch
}  // namespace midas
