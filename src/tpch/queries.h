#ifndef MIDAS_TPCH_QUERIES_H_
#define MIDAS_TPCH_QUERIES_H_

#include <vector>

#include "common/random.h"
#include "query/plan.h"

namespace midas {
namespace tpch {

/// The queries the paper evaluates: the four TPC-H queries that join
/// exactly two tables (12, 13, 14, 17), each table living in a different
/// engine of the multi-engine environment.
std::vector<int> PaperQueryIds();

/// \brief Parameters of one query instance. TPC-H's qgen substitutes random
/// parameters into each template (the ship-mode pair, the report month, the
/// brand/container, ...); we model that by the resulting predicate
/// selectivities and let `Jitter` draw instance-specific values.
struct QueryParameters {
  /// Per-predicate selectivities; meaning depends on the query template.
  double primary_selectivity = 1.0;
  double secondary_selectivity = 1.0;
  /// Fraction of the fact table (lineitem, or orders for Q13) the scan
  /// actually reads: the date-range predicate of each template prunes
  /// whole partitions, so instances touch different data volumes.
  double fact_fraction = 1.0;

  /// Draws TPC-H-style parameter variation around the reference values.
  static QueryParameters Reference(int query_id);
  static StatusOr<QueryParameters> Jitter(int query_id, Rng* rng);
};

/// Builds the logical plan of a paper query with the given parameters.
/// Templates (selection σ, join ⋈, aggregation γ over tables in two
/// engines):
///   Q12: γ_shipmode( orders ⋈_orderkey σ(lineitem) )
///   Q13: γ_custkey( customer ⋈_custkey σ(orders) )
///   Q14: γ( part ⋈_partkey σ(lineitem) )
///   Q17: γ( σ(part) ⋈_partkey σ(lineitem) )
StatusOr<QueryPlan> MakeQuery(int query_id, const QueryParameters& params);

/// Reference-parameter convenience overload.
StatusOr<QueryPlan> MakeQuery(int query_id);

/// The two base tables of a paper query, left/probe side first.
StatusOr<std::pair<std::string, std::string>> QueryTables(int query_id);

}  // namespace tpch
}  // namespace midas

#endif  // MIDAS_TPCH_QUERIES_H_
