#include "tpch/table_provider.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace midas {
namespace tpch {

namespace {

/// FNV-1a over the catalog's structure. Mixed into the cache key so two
/// providers sharing one cache over *different* catalogs (same table names
/// and row caps, different schemas) can never alias entries.
uint64_t CatalogFingerprint(const Catalog& catalog) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  for (const TableDef& table : catalog.tables()) {
    mix(table.name.data(), table.name.size());
    mix(&table.row_count, sizeof(table.row_count));
    for (const ColumnDef& col : table.columns) {
      mix(col.name.data(), col.name.size());
      mix(&col.type, sizeof(col.type));
      mix(&col.distinct_values, sizeof(col.distinct_values));
      mix(&col.avg_width_bytes, sizeof(col.avg_width_bytes));
    }
  }
  return h;
}

}  // namespace

CachedTableProvider::CachedTableProvider(
    DbGen gen, std::shared_ptr<exec::TableCache> cache,
    uint64_t max_rows_per_table)
    : gen_(std::move(gen)),
      cache_(std::move(cache)),
      max_rows_per_table_(max_rows_per_table),
      catalog_fingerprint_(CatalogFingerprint(gen_.catalog())) {}

StatusOr<std::shared_ptr<const exec::ColumnTable>>
CachedTableProvider::GetTable(const std::string& name) {
  MIDAS_ASSIGN_OR_RETURN(uint64_t rows, gen_.RowCount(name));
  if (max_rows_per_table_ > 0) rows = std::min(rows, max_rows_per_table_);
  exec::TableCacheKey key;
  key.table = name;
  key.scale_bits = std::bit_cast<uint64_t>(gen_.scale_factor());
  key.seed = gen_.seed() ^ catalog_fingerprint_;
  key.rows = rows;
  const uint64_t end = rows;
  return cache_->GetOrMaterialize(
      key, [this, &name, end]() { return gen_.GenerateColumns(name, 0, end); });
}

}  // namespace tpch
}  // namespace midas
