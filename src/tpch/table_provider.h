#ifndef MIDAS_TPCH_TABLE_PROVIDER_H_
#define MIDAS_TPCH_TABLE_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "exec/engine.h"
#include "exec/table_cache.h"
#include "tpch/dbgen.h"

namespace midas {
namespace tpch {

/// \brief TableProvider that materializes base tables from a DbGen on
/// demand and memoizes them in a TableCache.
///
/// The cache key is (table, scale factor, seed, row cap) — exactly the
/// inputs DbGen is deterministic in — so concurrent queries over the same
/// generator share one materialization. The cache may be shared across
/// providers (and across simulators) to share the byte budget.
class CachedTableProvider : public exec::TableProvider {
 public:
  /// `max_rows_per_table` caps materialization (0 = full cardinality);
  /// keep it in sync with the LowerOptions cap so scans see every row they
  /// were lowered to read.
  CachedTableProvider(DbGen gen, std::shared_ptr<exec::TableCache> cache,
                      uint64_t max_rows_per_table = 0);

  StatusOr<std::shared_ptr<const exec::ColumnTable>> GetTable(
      const std::string& name) override;

  const exec::TableCache& cache() const { return *cache_; }

 private:
  DbGen gen_;
  std::shared_ptr<exec::TableCache> cache_;
  uint64_t max_rows_per_table_;
  uint64_t catalog_fingerprint_;
};

}  // namespace tpch
}  // namespace midas

#endif  // MIDAS_TPCH_TABLE_PROVIDER_H_
