#include "tpch/tpch_schema.h"

#include <cmath>

namespace midas {
namespace tpch {

namespace {

uint64_t Scale(uint64_t sf1_rows, double sf) {
  return static_cast<uint64_t>(std::llround(sf1_rows * sf));
}

uint64_t ClampNdv(uint64_t ndv, uint64_t rows) {
  return std::max<uint64_t>(1, std::min(ndv, rows));
}

ColumnDef Int(const std::string& name, uint64_t ndv) {
  return ColumnDef{name, ColumnType::kInt, 4.0, ndv};
}
ColumnDef Double(const std::string& name, uint64_t ndv) {
  return ColumnDef{name, ColumnType::kDouble, 8.0, ndv};
}
ColumnDef Str(const std::string& name, double width, uint64_t ndv) {
  return ColumnDef{name, ColumnType::kString, width, ndv};
}
ColumnDef Date(const std::string& name) {
  // 1992-01-01 .. 1998-12-31: 2,557 distinct dates in dbgen.
  return ColumnDef{name, ColumnType::kDate, 4.0, 2557};
}

}  // namespace

StatusOr<uint64_t> RowsAtScale(const std::string& table, double scale_factor) {
  if (scale_factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  if (table == "region") return kRegionRows;
  if (table == "nation") return kNationRows;
  if (table == "supplier") return Scale(kSupplierRowsSf1, scale_factor);
  if (table == "customer") return Scale(kCustomerRowsSf1, scale_factor);
  if (table == "part") return Scale(kPartRowsSf1, scale_factor);
  if (table == "partsupp") return Scale(kPartSuppRowsSf1, scale_factor);
  if (table == "orders") return Scale(kOrdersRowsSf1, scale_factor);
  if (table == "lineitem") return Scale(kLineitemRowsSf1, scale_factor);
  return Status::NotFound("unknown TPC-H table: " + table);
}

StatusOr<Catalog> MakeCatalog(double scale_factor) {
  if (scale_factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  Catalog catalog;

  auto add = [&](TableDef def) { return catalog.AddTable(std::move(def)); };

  {
    TableDef t;
    t.name = "region";
    t.row_count = kRegionRows;
    t.columns = {Int("r_regionkey", 5), Str("r_name", 12, 5),
                 Str("r_comment", 60, 5)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "nation";
    t.row_count = kNationRows;
    t.columns = {Int("n_nationkey", 25), Str("n_name", 16, 25),
                 Int("n_regionkey", 5), Str("n_comment", 75, 25)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "supplier";
    t.row_count = Scale(kSupplierRowsSf1, scale_factor);
    t.columns = {Int("s_suppkey", t.row_count),
                 Str("s_name", 18, t.row_count),
                 Str("s_address", 25, t.row_count),
                 Int("s_nationkey", 25),
                 Str("s_phone", 15, t.row_count),
                 Double("s_acctbal", ClampNdv(100000, t.row_count)),
                 Str("s_comment", 62, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "customer";
    t.row_count = Scale(kCustomerRowsSf1, scale_factor);
    t.columns = {Int("c_custkey", t.row_count),
                 Str("c_name", 18, t.row_count),
                 Str("c_address", 25, t.row_count),
                 Int("c_nationkey", 25),
                 Str("c_phone", 15, t.row_count),
                 Double("c_acctbal", ClampNdv(100000, t.row_count)),
                 Str("c_mktsegment", 10, 5),
                 Str("c_comment", 73, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "part";
    t.row_count = Scale(kPartRowsSf1, scale_factor);
    t.columns = {Int("p_partkey", t.row_count),
                 Str("p_name", 33, t.row_count),
                 Str("p_mfgr", 25, 5),
                 Str("p_brand", 10, 25),
                 Str("p_type", 21, 150),
                 Int("p_size", 50),
                 Str("p_container", 10, 40),
                 Double("p_retailprice", ClampNdv(20000, t.row_count)),
                 Str("p_comment", 15, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "partsupp";
    t.row_count = Scale(kPartSuppRowsSf1, scale_factor);
    t.columns = {Int("ps_partkey", Scale(kPartRowsSf1, scale_factor)),
                 Int("ps_suppkey", Scale(kSupplierRowsSf1, scale_factor)),
                 Int("ps_availqty", 10000),
                 Double("ps_supplycost", ClampNdv(100000, t.row_count)),
                 Str("ps_comment", 124, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "orders";
    t.row_count = Scale(kOrdersRowsSf1, scale_factor);
    t.columns = {Int("o_orderkey", t.row_count),
                 Int("o_custkey", Scale(kCustomerRowsSf1, scale_factor)),
                 Str("o_orderstatus", 1, 3),
                 Double("o_totalprice", ClampNdv(1000000, t.row_count)),
                 Date("o_orderdate"),
                 Str("o_orderpriority", 15, 5),
                 Str("o_clerk", 15, ClampNdv(1000, t.row_count)),
                 Int("o_shippriority", 1),
                 Str("o_comment", 49, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  {
    TableDef t;
    t.name = "lineitem";
    t.row_count = Scale(kLineitemRowsSf1, scale_factor);
    t.columns = {Int("l_orderkey", Scale(kOrdersRowsSf1, scale_factor)),
                 Int("l_partkey", Scale(kPartRowsSf1, scale_factor)),
                 Int("l_suppkey", Scale(kSupplierRowsSf1, scale_factor)),
                 Int("l_linenumber", 7),
                 Double("l_quantity", 50),
                 Double("l_extendedprice", ClampNdv(1000000, t.row_count)),
                 Double("l_discount", 11),
                 Double("l_tax", 9),
                 Str("l_returnflag", 1, 3),
                 Str("l_linestatus", 1, 2),
                 Date("l_shipdate"),
                 Date("l_commitdate"),
                 Date("l_receiptdate"),
                 Str("l_shipinstruct", 25, 4),
                 Str("l_shipmode", 10, 7),
                 Str("l_comment", 27, t.row_count)};
    MIDAS_RETURN_IF_ERROR(add(t));
  }
  return catalog;
}

}  // namespace tpch
}  // namespace midas
