#ifndef MIDAS_TPCH_TPCH_SCHEMA_H_
#define MIDAS_TPCH_TPCH_SCHEMA_H_

#include "query/schema.h"

namespace midas {
namespace tpch {

/// TPC-H base-table row counts at scale factor 1 (SF 1 = 1 GB).
inline constexpr uint64_t kRegionRows = 5;
inline constexpr uint64_t kNationRows = 25;
inline constexpr uint64_t kSupplierRowsSf1 = 10'000;
inline constexpr uint64_t kCustomerRowsSf1 = 150'000;
inline constexpr uint64_t kPartRowsSf1 = 200'000;
inline constexpr uint64_t kPartSuppRowsSf1 = 800'000;
inline constexpr uint64_t kOrdersRowsSf1 = 1'500'000;
inline constexpr uint64_t kLineitemRowsSf1 = 6'000'000;

/// The paper's two dataset sizes: "100MiB" is SF 0.1 and "1GiB" is SF 1.
inline constexpr double kScaleFactor100MiB = 0.1;
inline constexpr double kScaleFactor1GiB = 1.0;

/// \brief Builds the full eight-table TPC-H catalog at the given scale
/// factor: exact cardinalities, realistic column widths, and the NDV
/// statistics the selectivity estimator relies on.
StatusOr<Catalog> MakeCatalog(double scale_factor);

/// Row count of a table at a scale factor (NotFound for unknown names).
StatusOr<uint64_t> RowsAtScale(const std::string& table, double scale_factor);

}  // namespace tpch
}  // namespace midas

#endif  // MIDAS_TPCH_TPCH_SCHEMA_H_
