#include "tpch/workload.h"

#include "tpch/tpch_schema.h"

namespace midas {
namespace tpch {

Workload::Workload(WorkloadOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.query_ids.empty()) options_.query_ids = PaperQueryIds();
  auto catalog = MakeCatalog(options_.scale_factor);
  if (catalog.ok()) catalog_ = std::move(catalog).ValueOrDie();
}

StatusOr<WorkloadItem> Workload::Next() {
  if (options_.query_ids.empty()) {
    return Status::FailedPrecondition("workload has no queries");
  }
  const int qid = options_.query_ids[rng_.Index(options_.query_ids.size())];
  return NextForQuery(qid);
}

StatusOr<WorkloadItem> Workload::NextForQuery(int query_id) {
  WorkloadItem item;
  item.query_id = query_id;
  MIDAS_ASSIGN_OR_RETURN(item.params,
                         QueryParameters::Jitter(query_id, &rng_));
  MIDAS_ASSIGN_OR_RETURN(item.logical, MakeQuery(query_id, item.params));
  return item;
}

}  // namespace tpch
}  // namespace midas
