#ifndef MIDAS_TPCH_WORKLOAD_H_
#define MIDAS_TPCH_WORKLOAD_H_

#include <vector>

#include "common/random.h"
#include "query/schema.h"
#include "tpch/queries.h"
#include "tpch/tpch_schema.h"

namespace midas {
namespace tpch {

/// \brief One workload step: a paper query instantiated with drawn
/// parameters (what qgen would substitute into the template).
struct WorkloadItem {
  int query_id = 0;
  QueryParameters params;
  QueryPlan logical;
};

struct WorkloadOptions {
  /// 0.1 reproduces the paper's 100 MiB dataset, 1.0 the 1 GiB one.
  double scale_factor = kScaleFactor100MiB;
  uint64_t seed = 2019;
  /// Queries to draw from; defaults to the paper's {12, 13, 14, 17}.
  std::vector<int> query_ids;
};

/// \brief Random stream of paper-query instances over a TPC-H catalog —
/// the experiment driver for Tables 3 and 4.
class Workload {
 public:
  explicit Workload(WorkloadOptions options = WorkloadOptions());

  /// Catalog at the configured scale factor.
  const Catalog& catalog() const { return catalog_; }
  double scale_factor() const { return options_.scale_factor; }

  /// Draws the next instance of a uniformly chosen query.
  StatusOr<WorkloadItem> Next();

  /// Draws the next instance of a specific query.
  StatusOr<WorkloadItem> NextForQuery(int query_id);

 private:
  WorkloadOptions options_;
  Catalog catalog_;
  Rng rng_;
};

}  // namespace tpch
}  // namespace midas

#endif  // MIDAS_TPCH_WORKLOAD_H_
