#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter w({"m", "r2"});
  w.AddRow(std::vector<std::string>{"4", "0.757"});
  w.AddRow(std::vector<double>{5.0, 0.77});
  EXPECT_EQ(w.num_rows(), 2u);
  const std::string out = w.ToString();
  EXPECT_EQ(out, "m,r2\n4,0.757\n5,0.77\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter w({"name"});
  w.AddRow({std::string("has,comma")});
  w.AddRow({std::string("has\"quote")});
  const std::string out = w.ToString();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvWriterTest, PadsShortRows) {
  CsvWriter w({"a", "b"});
  w.AddRow({std::string("x")});
  EXPECT_EQ(w.ToString(), "a,b\nx,\n");
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter w({"k"});
  w.AddRow({std::string("v")});
  const std::string path = testing::TempDir() + "/midas_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k");
  std::getline(in, line);
  EXPECT_EQ(line, "v");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter w({"k"});
  EXPECT_FALSE(w.WriteToFile("/nonexistent-dir/x.csv").ok());
}

TEST(SplitCsvLineTest, PlainFields) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, QuotedFieldWithComma) {
  const auto fields = SplitCsvLine("\"x,y\",z");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "z");
}

TEST(SplitCsvLineTest, EscapedQuote) {
  const auto fields = SplitCsvLine("\"a\"\"b\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "a\"b");
}

TEST(SplitCsvLineTest, EmptyFields) {
  const auto fields = SplitCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
}

TEST(SplitCsvLineTest, RoundTripsWriterOutput) {
  CsvWriter w({"odd"});
  w.AddRow({std::string("a,b\"c")});
  const std::string out = w.ToString();
  // Second line is the data row (strip trailing newline).
  const size_t nl = out.find('\n');
  std::string row = out.substr(nl + 1);
  row.pop_back();
  const auto fields = SplitCsvLine(row);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "a,b\"c");
}

}  // namespace
}  // namespace midas
