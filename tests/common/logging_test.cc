#include "common/logging.h"

#include <sstream>

#include <gtest/gtest.h>

namespace midas {
namespace {

class CaptureStderr {
 public:
  CaptureStderr() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  SetLogLevel(LogLevel::kInfo);
  CaptureStderr capture;
  MIDAS_LOG(Info) << "hello-info";
  EXPECT_NE(capture.str().find("hello-info"), std::string::npos);
  EXPECT_NE(capture.str().find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  SetLogLevel(LogLevel::kError);
  CaptureStderr capture;
  MIDAS_LOG(Info) << "should-not-appear";
  MIDAS_LOG(Debug) << "nor-this";
  EXPECT_EQ(capture.str().find("should-not-appear"), std::string::npos);
  EXPECT_EQ(capture.str().find("nor-this"), std::string::npos);
}

TEST_F(LoggingTest, IncludesFileBasename) {
  SetLogLevel(LogLevel::kInfo);
  CaptureStderr capture;
  MIDAS_LOG(Warning) << "locate-me";
  EXPECT_NE(capture.str().find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  CaptureStderr capture;
  MIDAS_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(capture.str().empty());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ MIDAS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ MIDAS_LOG(Fatal) << "fatal message"; }, "fatal message");
}

}  // namespace
}  // namespace midas
