#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values hit
}

TEST(RngTest, GaussianMeanAndSpread) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

TEST(RngTest, ExponentialIsNonNegativeWithMeanOneOverLambda) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double e = rng.Exponential(2.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, IndexStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(5), 5u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, ForkIsIndependentOfParentStream) {
  Rng a(42);
  Rng fork = a.Fork();
  const double after_fork = a.Uniform();
  // Re-derive: forking then advancing fork must not change parent stream.
  Rng b(42);
  Rng fork_b = b.Fork();
  for (int i = 0; i < 10; ++i) fork_b.Uniform();
  EXPECT_DOUBLE_EQ(b.Uniform(), after_fork);
  (void)fork;
}

}  // namespace
}  // namespace midas
