#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(StatisticsTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}).ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(Mean({5.0}).ValueOrDie(), 5.0);
}

TEST(StatisticsTest, MeanOfEmptyFails) {
  EXPECT_FALSE(Mean({}).ok());
}

TEST(StatisticsTest, SampleVariance) {
  // var of {2, 4, 4, 4, 5, 5, 7, 9} (sample) = 32/7.
  auto v = Variance({2, 4, 4, 4, 5, 5, 7, 9});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, VarianceNeedsTwoValues) {
  EXPECT_FALSE(Variance({1.0}).ok());
}

TEST(StatisticsTest, StdDevIsSqrtOfVariance) {
  auto sd = StdDev({1.0, 3.0});
  ASSERT_TRUE(sd.ok());
  EXPECT_NEAR(*sd, std::sqrt(2.0), 1e-12);
}

TEST(StatisticsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}).ValueOrDie(), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}).ValueOrDie(), 3.0);
  EXPECT_FALSE(Min({}).ok());
  EXPECT_FALSE(Max({}).ok());
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}).ValueOrDie(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}).ValueOrDie(), 2.5);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).ValueOrDie(), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25).ValueOrDie(), 2.5);
}

TEST(StatisticsTest, QuantileRejectsBadQ) {
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(StatisticsTest, MeanRelativeErrorMatchesEq15) {
  // (|9-10|/10 + |22-20|/20) / 2 = (0.1 + 0.1) / 2 = 0.1.
  auto mre = MeanRelativeError({9.0, 22.0}, {10.0, 20.0});
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, 0.1, 1e-12);
}

TEST(StatisticsTest, MrePerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({5.0, 7.0}, {5.0, 7.0}).ValueOrDie(),
                   0.0);
}

TEST(StatisticsTest, MreRejectsZeroActual) {
  EXPECT_FALSE(MeanRelativeError({1.0}, {0.0}).ok());
}

TEST(StatisticsTest, MreRejectsSizeMismatch) {
  EXPECT_FALSE(MeanRelativeError({1.0}, {1.0, 2.0}).ok());
}

TEST(StatisticsTest, RootMeanSquaredError) {
  auto rmse = RootMeanSquaredError({1.0, 2.0}, {2.0, 4.0});
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(StatisticsTest, PearsonPerfectPositive) {
  auto r = PearsonCorrelation({1, 2, 3}, {2, 4, 6});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(StatisticsTest, PearsonPerfectNegative) {
  auto r = PearsonCorrelation({1, 2, 3}, {6, 4, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, -1.0, 1e-12);
}

TEST(StatisticsTest, PearsonConstantInputFails) {
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  const std::vector<double> data = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : data) rs.Add(x);
  EXPECT_EQ(rs.count(), data.size());
  EXPECT_NEAR(rs.mean(), Mean(data).ValueOrDie(), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(data).ValueOrDie(), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
}

TEST(LatencyRecorderTest, EmptyRecorderErrorsOnQuantile) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_FALSE(rec.ValueAtQuantile(0.5).ok());
  EXPECT_EQ(rec.min_nanos(), 0u);
  EXPECT_EQ(rec.max_nanos(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean_nanos(), 0.0);
}

TEST(LatencyRecorderTest, SmallValuesAreExact) {
  // Values below 2^kSubBucketBits land in width-1 buckets, so every
  // quantile of a small-valued sample is exact.
  LatencyRecorder rec;
  for (uint64_t v = 1; v <= 20; ++v) rec.Record(v);
  EXPECT_EQ(rec.count(), 20u);
  EXPECT_EQ(rec.min_nanos(), 1u);
  EXPECT_EQ(rec.max_nanos(), 20u);
  EXPECT_DOUBLE_EQ(rec.ValueAtQuantile(0.0).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(rec.ValueAtQuantile(0.5).ValueOrDie(), 10.0);
  EXPECT_DOUBLE_EQ(rec.ValueAtQuantile(1.0).ValueOrDie(), 20.0);
}

TEST(LatencyRecorderTest, QuantilesWithinBucketErrorOfExact) {
  // Log-normal-ish spread over nine decades; every reported quantile must
  // sit within the histogram's relative error of the exact nearest-rank
  // answer.
  Rng rng(7);
  std::vector<uint64_t> samples;
  LatencyRecorder rec;
  for (size_t i = 0; i < 20000; ++i) {
    const double log_ns = rng.Uniform(0.0, 9.0);
    const uint64_t v = static_cast<uint64_t>(std::pow(10.0, log_ns));
    samples.push_back(v);
    rec.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = static_cast<double>(samples[rank - 1]);
    const double reported = rec.ValueAtQuantile(q).ValueOrDie();
    // Half a sub-bucket of relative error, plus slack for the rank
    // falling on a bucket boundary.
    EXPECT_NEAR(reported, exact, exact / LatencyRecorder::kSubBuckets + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyRecorderTest, HugeValuesDoNotOverflow) {
  LatencyRecorder rec;
  const uint64_t huge = ~uint64_t{0};
  rec.Record(huge);
  rec.Record(1);
  EXPECT_EQ(rec.max_nanos(), huge);
  // q=1 clamps to the exact maximum.
  EXPECT_DOUBLE_EQ(rec.ValueAtQuantile(1.0).ValueOrDie(),
                   static_cast<double>(huge));
}

TEST(LatencyRecorderTest, MergeMatchesSingleRecorder) {
  Rng rng(11);
  LatencyRecorder all;
  LatencyRecorder parts[4];
  for (size_t i = 0; i < 4000; ++i) {
    const uint64_t v = 1 + rng.Index(1000000);
    all.Record(v);
    parts[i % 4].Record(v);
  }
  LatencyRecorder merged;
  for (const LatencyRecorder& part : parts) merged.MergeFrom(part);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.min_nanos(), all.min_nanos());
  EXPECT_EQ(merged.max_nanos(), all.max_nanos());
  EXPECT_DOUBLE_EQ(merged.mean_nanos(), all.mean_nanos());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.ValueAtQuantile(q).ValueOrDie(),
                     all.ValueAtQuantile(q).ValueOrDie());
  }
}

TEST(LatencyRecorderTest, ResetDropsEverything) {
  LatencyRecorder rec;
  rec.Record(42);
  rec.Reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_FALSE(rec.ValueAtQuantile(0.5).ok());
}

}  // namespace
}  // namespace midas
